"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments that lack the ``wheel`` package (``pip install -e .`` falls back
to the legacy ``setup.py develop`` code path there).
"""

from setuptools import setup

setup()
