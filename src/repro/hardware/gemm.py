"""GEMM efficiency model for tensor contractions on CPEs.

Contractions between tensors are implemented as (batched) complex matrix
multiplications (§5.1, following Sw_Qsim and the 2021 Gordon Bell work).
The paper's key observation:

* square-like matrices (``m, n, k`` all ≥ 16) reach more than 70 % of the
  peak on a CPE thanks to the 4×4 complex SIMD kernel,
* *narrow* multiplications — and in RQC simulation two of the three extents
  are very often < 16 — degenerate to a bandwidth-bound regime because
  ``Θ(MNK) ≈ Θ(MN + NK + MK)``.

:class:`GEMMModel` captures both regimes through a Roofline-style bound:
the time of a GEMM is the maximum of its compute time at the (shape-
dependent) achievable rate and its LDM-traffic time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .spec import COMPLEX64_BYTES, SW26010PRO, SunwaySpec

__all__ = ["GEMMShape", "GEMMEstimate", "GEMMModel"]


@dataclass(frozen=True)
class GEMMShape:
    """Shape of a complex matrix multiplication ``C[m, n] += A[m, k] B[k, n]``."""

    m: int
    n: int
    k: int

    @property
    def flops(self) -> float:
        """Real floating-point operations (8 per complex multiply-add)."""
        return 8.0 * self.m * self.n * self.k

    @property
    def elements_touched(self) -> float:
        """Operand plus result elements (the minimum traffic)."""
        return float(self.m * self.n + self.n * self.k + self.m * self.k)

    def bytes_touched(self, element_bytes: int = COMPLEX64_BYTES) -> float:
        """Bytes of operand/result traffic."""
        return self.elements_touched * element_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """flop per byte at single-precision complex."""
        return self.flops / self.bytes_touched()

    @property
    def is_narrow(self) -> bool:
        """The paper's narrow-GEMM criterion: at least two extents below 16."""
        return sum(1 for x in (self.m, self.n, self.k) if x < 16) >= 2


@dataclass(frozen=True)
class GEMMEstimate:
    """Predicted execution profile of one GEMM on one CPE."""

    shape: GEMMShape
    compute_seconds: float
    traffic_seconds: float
    achievable_fraction: float

    @property
    def seconds(self) -> float:
        """Predicted wall time (the binding term of the roofline)."""
        return max(self.compute_seconds, self.traffic_seconds)

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the CPE peak."""
        peak_time = self.compute_seconds * self.achievable_fraction
        if self.seconds == 0:
            return 0.0
        return peak_time / self.seconds

    @property
    def memory_bound(self) -> bool:
        """Whether LDM traffic dominates the kernel."""
        return self.traffic_seconds > self.compute_seconds


class GEMMModel:
    """Shape-aware GEMM performance model for a single CPE.

    Parameters
    ----------
    spec:
        Machine description.
    ldm_access_bandwidth:
        Bandwidth of LDM accesses feeding the SIMD pipes (bytes/s).  The LDM
        is SRAM-fast; the default of 4× the DMA rate per CPE keeps the model
        conservative while preserving the paper's qualitative behaviour
        (square GEMM compute-bound, narrow GEMM latency/traffic-limited).
    kernel_block:
        Register-block edge of the hand-written complex kernel (4×4 in §5.1).
    """

    def __init__(
        self,
        spec: SunwaySpec = SW26010PRO,
        ldm_access_bandwidth: Optional[float] = None,
        kernel_block: int = 4,
    ) -> None:
        self.spec = spec
        self.peak_flops = spec.peak_flops_per_cpe
        self.kernel_block = int(kernel_block)
        if ldm_access_bandwidth is None:
            ldm_access_bandwidth = 4.0 * spec.dma_bandwidth / spec.cpes_per_cg * spec.cpes_per_cg
            # i.e. 4x the per-CG DMA bandwidth shared by the CG's CPEs,
            # expressed per CPE below
            ldm_access_bandwidth = 4.0 * spec.dma_bandwidth / spec.cpes_per_cg
        self.ldm_access_bandwidth = float(ldm_access_bandwidth)

    # ------------------------------------------------------------------
    def achievable_fraction(self, shape: GEMMShape) -> float:
        """Fraction of peak the SIMD kernel can reach for this shape.

        Square-like shapes reach ``spec.gemm_peak_fraction`` (70 %); shapes
        with extents below the register block suffer padding/masking losses
        proportional to the wasted lanes.
        """
        fraction = self.spec.gemm_peak_fraction
        for extent in (shape.m, shape.n, shape.k):
            if extent < self.kernel_block:
                fraction *= extent / self.kernel_block
            elif extent < 16:
                fraction *= 0.85
        return max(fraction, 0.01)

    def estimate(self, shape: GEMMShape, element_bytes: int = COMPLEX64_BYTES) -> GEMMEstimate:
        """Predict the execution profile of one GEMM."""
        fraction = self.achievable_fraction(shape)
        compute_seconds = shape.flops / (self.peak_flops * fraction)
        traffic_seconds = shape.bytes_touched(element_bytes) / self.ldm_access_bandwidth
        return GEMMEstimate(
            shape=shape,
            compute_seconds=compute_seconds,
            traffic_seconds=traffic_seconds,
            achievable_fraction=fraction,
        )

    def seconds(self, shape: GEMMShape, element_bytes: int = COMPLEX64_BYTES) -> float:
        """Predicted wall time of one GEMM."""
        return self.estimate(shape, element_bytes).seconds

    # ------------------------------------------------------------------
    def contraction_shape(
        self,
        left_log2: float,
        right_log2: float,
        contracted_log2: float,
    ) -> GEMMShape:
        """Map a tensor contraction onto an equivalent GEMM shape.

        ``left_log2``/``right_log2`` are the log2 sizes of the two operand
        tensors and ``contracted_log2`` the log2 size of the summed index
        group; the equivalent GEMM has ``k = 2^contracted`` and
        ``m/n = operand size / k``.
        """
        k = 2.0**contracted_log2
        m = max(2.0 ** (left_log2 - contracted_log2), 1.0)
        n = max(2.0 ** (right_log2 - contracted_log2), 1.0)
        return GEMMShape(m=int(round(m)), n=int(round(n)), k=int(round(k)))
