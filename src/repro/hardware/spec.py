"""SW26010pro processor and new-Sunway-system specification.

The numbers below come straight from §2.2 and §6 of the paper (plus the
2021 Gordon Bell companion paper for the peak-rate bookkeeping):

* each processor chip holds 6 core groups (CGs),
* each CG has one management processing element (MPE) and an 8×8 grid of
  64 computing processing elements (CPEs) — 390 cores per node,
* each CPE owns a 256 KB local data memory (LDM),
* each CG owns 16 GB of main memory (the paper unites the six CGs into a
  96 GB cross dump to hold large tensors),
* DMA between LDM and main memory peaks at 51.2 GB/s per CG,
* RMA between CPEs of one CG peaks at over 800 GB/s,
* the arithmetic-intensity ridge point quoted in §6.2 is 42.3 flop/byte,
  which together with the DMA bandwidth pins the per-CG single-precision
  peak at ≈ 2.17 Tflop/s (≈ 13 Tflop/s per node, ≈ 14 Pflop/s per 1024
  nodes).

Everything here is a plain frozen dataclass so experiments can build
"what-if" variants (e.g. a fatter LDM) by ``dataclasses.replace``.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

__all__ = [
    "DeviceSpec",
    "GENERIC_GPU",
    "SunwaySpec",
    "SW26010PRO",
    "COMPLEX64_BYTES",
    "COMPLEX128_BYTES",
]

# bytes per element of the two precisions the paper mentions
COMPLEX64_BYTES = 8  # single-precision complex (the production runs)
COMPLEX128_BYTES = 16  # double-precision complex


@dataclass(frozen=True)
class SunwaySpec:
    """Machine description of one node of the new Sunway supercomputer.

    Attributes mirror §2.2; see the module docstring for the provenance of
    every number.  Derived quantities are exposed as properties so that a
    modified spec stays self-consistent.
    """

    # chip layout
    cgs_per_node: int = 6
    cpes_per_cg: int = 64
    mpes_per_cg: int = 1

    # memory sizes (bytes)
    ldm_bytes: int = 256 * 1024
    main_memory_per_cg_bytes: int = 16 * 1024**3

    # bandwidths (bytes / second)
    dma_bandwidth: float = 51.2e9  # LDM <-> main memory, per CG
    rma_bandwidth: float = 800.0e9  # CPE <-> CPE within a CG, aggregate
    io_bandwidth: float = 2.0e9  # node <-> parallel filesystem
    network_bandwidth: float = 16.0e9  # node <-> node interconnect

    # latency-equivalent bytes: the transfer size at which a DMA/RMA engine
    # reaches 50 % of its peak bandwidth (the paper reports >50 % of peak at
    # 512 B granularity and <0.1 % for element-wise access)
    dma_half_bandwidth_bytes: float = 512.0
    rma_half_bandwidth_bytes: float = 256.0

    # compute rate
    arithmetic_intensity_ridge: float = 42.3  # flop / byte (single precision)
    gemm_peak_fraction: float = 0.70  # achievable fraction of peak on square GEMM

    # ------------------------------------------------------------------
    @property
    def cores_per_node(self) -> int:
        """Total cores per node (the paper's 390)."""
        return self.cgs_per_node * (self.cpes_per_cg + self.mpes_per_cg)

    @property
    def cpes_per_node(self) -> int:
        """Computing cores per node."""
        return self.cgs_per_node * self.cpes_per_cg

    @property
    def main_memory_per_node_bytes(self) -> int:
        """Main memory of a node when the 6 CGs are united (96 GB)."""
        return self.cgs_per_node * self.main_memory_per_cg_bytes

    @property
    def peak_flops_per_cg(self) -> float:
        """Single-precision peak of one CG, from the ridge point and DMA rate."""
        return self.arithmetic_intensity_ridge * self.dma_bandwidth

    @property
    def peak_flops_per_cpe(self) -> float:
        """Single-precision peak of one CPE."""
        return self.peak_flops_per_cg / self.cpes_per_cg

    @property
    def peak_flops_per_node(self) -> float:
        """Single-precision peak of one node."""
        return self.peak_flops_per_cg * self.cgs_per_node

    # ------------------------------------------------------------------
    def ldm_capacity_elements(self, element_bytes: int = COMPLEX64_BYTES) -> int:
        """How many elements of the given width fit in one LDM."""
        return self.ldm_bytes // element_bytes

    def ldm_max_rank(self, element_bytes: int = COMPLEX64_BYTES) -> int:
        """Largest rank-``r`` (size ``2^r``) tensor that fits in one LDM.

        For single-precision complex this is the paper's rank-13 bound
        (2^13 × 8 B = 64 KB, leaving room for the second operand and the
        output of a contraction step).
        """
        return int(math.floor(math.log2(self.ldm_capacity_elements(element_bytes)) - 2))

    def main_memory_max_rank(
        self, element_bytes: int = COMPLEX64_BYTES, united: bool = True
    ) -> int:
        """Largest tensor rank that fits in main memory (per CG or per node)."""
        capacity = (
            self.main_memory_per_node_bytes if united else self.main_memory_per_cg_bytes
        )
        return int(math.floor(math.log2(capacity // element_bytes)))

    def peak_flops_system(self, num_nodes: int) -> float:
        """Aggregate single-precision peak of ``num_nodes`` nodes."""
        return self.peak_flops_per_node * float(num_nodes)

    def with_overrides(self, **kwargs: object) -> "SunwaySpec":
        """Return a modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]


#: The default machine model used throughout the package.
SW26010PRO = SunwaySpec()


@dataclass(frozen=True)
class DeviceSpec:
    """Description of an accelerator device behind a non-numpy array module.

    The array-module seam (:mod:`repro.execution.array_module`) lets the
    compiled plan run its kernels on a device (CUDA through CuPy or torch)
    while leaves, slicing, and accumulation stay host-side.  Before any
    calibration data for a ``"<backend>+<engine>+<module>"`` key exists,
    :class:`~repro.costs.model.AnalyticCostModel` prices that execution
    with the three numbers that dominate it:

    * ``hbm_bandwidth`` — device-memory bandwidth for the kernels'
      memory-bound regime,
    * ``device_flops`` — the device's peak flop rate for the compute-bound
      regime (``effective_flops`` applies the achievable GEMM fraction),
    * ``pcie_bandwidth`` — the host↔device staging rate paid per subtask
      for leaf uploads and the root download (the seam's host-staging
      contract keeps everything else resident).

    The defaults sketch a generic data-center GPU (≈ A100-class: 1.555
    TB/s HBM2e, 19.5 Tflop/s single precision, PCIe 4.0 x16 ≈ 25 GB/s
    effective).  Like :class:`SunwaySpec`, it is a frozen dataclass so
    what-if variants come from :meth:`with_overrides`.
    """

    name: str = "generic-gpu"

    # memory system (bytes / second)
    hbm_bandwidth: float = 1.555e12  # device memory <-> compute
    pcie_bandwidth: float = 25.0e9  # host <-> device staging

    # compute rate
    device_flops: float = 19.5e12  # single-precision peak, flop / s
    gemm_peak_fraction: float = 0.75  # achievable fraction on dense GEMM

    @property
    def effective_flops(self) -> float:
        """Achievable GEMM flop rate (peak scaled by the GEMM fraction)."""
        return self.device_flops * self.gemm_peak_fraction

    def staging_seconds(self, transfer_bytes: float) -> float:
        """Seconds to move ``transfer_bytes`` across the host↔device link."""
        if transfer_bytes <= 0.0:
            return 0.0
        return float(transfer_bytes) / self.pcie_bandwidth

    def with_overrides(self, **kwargs: object) -> "DeviceSpec":
        """Return a modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return dataclasses.replace(self, **kwargs)  # type: ignore[arg-type]


#: The default device model for non-numpy array modules.
GENERIC_GPU = DeviceSpec()
