"""DMA / RMA transfer cost models.

§5.3.2 of the paper turns on a bandwidth-versus-granularity effect: after
secondary slicing, the sub-tensors a CPE needs are scattered in main memory
with small contiguous runs, and "the bandwidth of DMA can only achieve less
than 0.1 % of the peak performance" for element-wise access, while a
guaranteed granularity of 512 B recovers "more than 50 % of the peak".  The
fix is cooperative access: 64 CPEs fetch contiguous blocks and exchange the
pieces over RMA (peak 800 GB/s per CG), plus an extra permutation to keep
RMA granularity high.

This module models those effects analytically:

* :class:`DMAEngine` — effective bandwidth as a function of the contiguous
  transfer granularity, using a latency-equivalent-bytes model calibrated to
  the two operating points quoted in the paper;
* :class:`RMAEngine` — same model for the intra-CG mesh;
* :func:`cooperative_transfer_time` — the cost of the paper's
  "DMA-contiguous + RMA shuffle" strategy, compared against naive strided
  DMA by :func:`naive_strided_transfer_time`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from .spec import SW26010PRO, SunwaySpec

__all__ = [
    "DMAEngine",
    "RMAEngine",
    "TransferBreakdown",
    "naive_strided_transfer_time",
    "cooperative_transfer_time",
]


@dataclass(frozen=True)
class TransferBreakdown:
    """Cost breakdown of moving one tile between main memory and LDMs.

    Attributes
    ----------
    dma_seconds:
        Time spent on DMA between main memory and LDM.
    rma_seconds:
        Time spent redistributing data between CPEs over RMA.
    total_seconds:
        Sum of the two (the engines are used back-to-back).
    dma_granularity_bytes:
        Contiguous bytes per DMA transaction achieved by the strategy.
    effective_bandwidth:
        Realised aggregate bandwidth (bytes moved / total time).
    """

    dma_seconds: float
    rma_seconds: float
    dma_granularity_bytes: float
    bytes_moved: float

    @property
    def total_seconds(self) -> float:
        """Total transfer time."""
        return self.dma_seconds + self.rma_seconds

    @property
    def effective_bandwidth(self) -> float:
        """Realised bandwidth over the whole transfer."""
        if self.total_seconds == 0:
            return math.inf
        return self.bytes_moved / self.total_seconds


class DMAEngine:
    """Granularity-aware DMA bandwidth model (main memory ↔ LDM, per CG).

    The effective bandwidth follows the classic latency/bandwidth form
    ``BW_eff = BW_peak * g / (g + g_half)`` where ``g`` is the contiguous
    granularity of each transaction and ``g_half`` the granularity at which
    half the peak is reached.  With the default ``g_half = 512 B`` the model
    reproduces the paper's two anchor points: ≈ 50 % of peak at 512 B and
    ≈ 0.15 % of peak for a single 8-byte element.
    """

    def __init__(self, spec: SunwaySpec = SW26010PRO) -> None:
        self.spec = spec
        self.peak_bandwidth = spec.dma_bandwidth
        self.half_bandwidth_bytes = spec.dma_half_bandwidth_bytes

    def efficiency(self, granularity_bytes: float) -> float:
        """Fraction of peak bandwidth achieved at the given granularity."""
        if granularity_bytes <= 0:
            return 0.0
        return granularity_bytes / (granularity_bytes + self.half_bandwidth_bytes)

    def effective_bandwidth(self, granularity_bytes: float) -> float:
        """Effective bandwidth (bytes/s) at the given granularity."""
        return self.peak_bandwidth * self.efficiency(granularity_bytes)

    def transfer_time(self, num_bytes: float, granularity_bytes: float) -> float:
        """Seconds to move ``num_bytes`` with the given transaction granularity."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.effective_bandwidth(granularity_bytes)
        if bandwidth <= 0:
            return math.inf
        return num_bytes / bandwidth


class RMAEngine:
    """Granularity-aware RMA bandwidth model (CPE ↔ CPE within one CG)."""

    def __init__(self, spec: SunwaySpec = SW26010PRO) -> None:
        self.spec = spec
        self.peak_bandwidth = spec.rma_bandwidth
        self.half_bandwidth_bytes = spec.rma_half_bandwidth_bytes

    def efficiency(self, granularity_bytes: float) -> float:
        """Fraction of peak bandwidth achieved at the given granularity."""
        if granularity_bytes <= 0:
            return 0.0
        return granularity_bytes / (granularity_bytes + self.half_bandwidth_bytes)

    def effective_bandwidth(self, granularity_bytes: float) -> float:
        """Effective bandwidth (bytes/s) at the given granularity."""
        return self.peak_bandwidth * self.efficiency(granularity_bytes)

    def transfer_time(self, num_bytes: float, granularity_bytes: float) -> float:
        """Seconds to exchange ``num_bytes`` between CPEs at the given granularity."""
        if num_bytes <= 0:
            return 0.0
        bandwidth = self.effective_bandwidth(granularity_bytes)
        if bandwidth <= 0:
            return math.inf
        return num_bytes / bandwidth


def naive_strided_transfer_time(
    num_bytes: float,
    contiguous_run_bytes: float,
    spec: SunwaySpec = SW26010PRO,
) -> TransferBreakdown:
    """Cost of the naive strategy: each CPE DMAs its own scattered sub-tensor.

    ``contiguous_run_bytes`` is the length of each contiguous run in main
    memory (for a tensor whose trailing ``k`` indices are sliced away it is
    ``element_bytes``; for a fully contiguous fetch it is the whole tile).
    """
    dma = DMAEngine(spec)
    return TransferBreakdown(
        dma_seconds=dma.transfer_time(num_bytes, contiguous_run_bytes),
        rma_seconds=0.0,
        dma_granularity_bytes=contiguous_run_bytes,
        bytes_moved=num_bytes,
    )


def cooperative_transfer_time(
    num_bytes: float,
    spec: SunwaySpec = SW26010PRO,
    guaranteed_granularity_bytes: float = 512.0,
    rma_granularity_bytes: float = 2048.0,
    rearranged_fraction: float = 1.0,
) -> TransferBreakdown:
    """Cost of the paper's cooperative strategy (§5.3.2).

    The 64 CPEs of a CG fetch the union of their sub-tensors as contiguous
    blocks (guaranteeing at least ``guaranteed_granularity_bytes`` per DMA
    transaction — 512 B in the paper), then redistribute the elements to
    their owners over RMA.  ``rearranged_fraction`` is the fraction of the
    data that actually has to move between CPEs (1.0 is the conservative
    upper bound).
    """
    dma = DMAEngine(spec)
    rma = RMAEngine(spec)
    dma_seconds = dma.transfer_time(num_bytes, guaranteed_granularity_bytes)
    rma_seconds = rma.transfer_time(num_bytes * rearranged_fraction, rma_granularity_bytes)
    return TransferBreakdown(
        dma_seconds=dma_seconds,
        rma_seconds=rma_seconds,
        dma_granularity_bytes=guaranteed_granularity_bytes,
        bytes_moved=num_bytes,
    )
