"""Analytical performance model of the SW26010pro / new Sunway system."""

from .spec import COMPLEX64_BYTES, COMPLEX128_BYTES, SW26010PRO, SunwaySpec
from .memory import MemoryHierarchy, StorageLevel, sunway_hierarchy
from .dma import (
    DMAEngine,
    RMAEngine,
    TransferBreakdown,
    cooperative_transfer_time,
    naive_strided_transfer_time,
)
from .gemm import GEMMEstimate, GEMMModel, GEMMShape
from .roofline import RooflineModel, RooflinePoint

__all__ = [
    "COMPLEX64_BYTES",
    "COMPLEX128_BYTES",
    "SW26010PRO",
    "SunwaySpec",
    "MemoryHierarchy",
    "StorageLevel",
    "sunway_hierarchy",
    "DMAEngine",
    "RMAEngine",
    "TransferBreakdown",
    "cooperative_transfer_time",
    "naive_strided_transfer_time",
    "GEMMEstimate",
    "GEMMModel",
    "GEMMShape",
    "RooflineModel",
    "RooflinePoint",
]
