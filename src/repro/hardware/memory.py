"""Multi-level storage hierarchy model.

§3.3 of the paper frames the slice-or-stack decision on "each two adjacent
manually controllable levels on a multi-level storage system": hard disk ↔
main memory (process level) and main memory ↔ LDM (thread level).  This
module models such a hierarchy as an ordered list of :class:`StorageLevel`
objects, each with a capacity and a bandwidth to the level above it, plus
helpers for the capacity/rank arithmetic the planning layers need.

The hierarchy is deliberately architecture-agnostic ("all we need is a
multi-level storage system"); :func:`sunway_hierarchy` builds the concrete
three-level Sunway instance from a :class:`~repro.hardware.spec.SunwaySpec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .spec import COMPLEX64_BYTES, SW26010PRO, SunwaySpec

__all__ = ["StorageLevel", "MemoryHierarchy", "sunway_hierarchy"]


@dataclass(frozen=True)
class StorageLevel:
    """One level of the storage hierarchy.

    Attributes
    ----------
    name:
        Human-readable name (``"disk"``, ``"main_memory"``, ``"ldm"``).
    capacity_bytes:
        Usable capacity of the level (per the unit that owns it: node for
        disk/main memory, CPE for LDM).  ``math.inf`` for unbounded levels.
    bandwidth_to_upper:
        Bandwidth (bytes/s) for moving data between this level and the next
        *faster* level (e.g. disk→main memory IO bandwidth, main→LDM DMA).
        ``None`` for the innermost level.
    """

    name: str
    capacity_bytes: float
    bandwidth_to_upper: Optional[float] = None

    def capacity_elements(self, element_bytes: int = COMPLEX64_BYTES) -> float:
        """Capacity in elements of the given width."""
        return self.capacity_bytes / element_bytes

    def max_rank(self, element_bytes: int = COMPLEX64_BYTES, reserve_factor: float = 1.0) -> int:
        """Largest rank-``r`` (``2^r``-element) tensor the level can hold.

        ``reserve_factor`` > 1 reserves room for additional operands (e.g. a
        contraction needs both inputs and the output resident).
        """
        usable = self.capacity_elements(element_bytes) / reserve_factor
        if math.isinf(usable):
            return 64
        if usable < 1:
            return 0
        return int(math.floor(math.log2(usable)))


class MemoryHierarchy:
    """An ordered multi-level storage hierarchy (slowest/biggest level first)."""

    def __init__(self, levels: Sequence[StorageLevel]) -> None:
        if not levels:
            raise ValueError("a hierarchy needs at least one level")
        names = [lvl.name for lvl in levels]
        if len(set(names)) != len(names):
            raise ValueError("level names must be unique")
        self._levels: Tuple[StorageLevel, ...] = tuple(levels)

    # ------------------------------------------------------------------
    @property
    def levels(self) -> Tuple[StorageLevel, ...]:
        """All levels, slowest first."""
        return self._levels

    def __iter__(self) -> Iterator[StorageLevel]:
        return iter(self._levels)

    def __len__(self) -> int:
        return len(self._levels)

    def level(self, name: str) -> StorageLevel:
        """Look a level up by name."""
        for lvl in self._levels:
            if lvl.name == name:
                return lvl
        raise KeyError(f"no storage level named {name!r}")

    def boundaries(self) -> List[Tuple[StorageLevel, StorageLevel]]:
        """Adjacent (outer, inner) level pairs — the slicing/stacking boundaries."""
        return list(zip(self._levels[:-1], self._levels[1:]))

    def inner_of(self, name: str) -> Optional[StorageLevel]:
        """The level just inside (faster than) ``name``, if any."""
        for outer, inner in self.boundaries():
            if outer.name == name:
                return inner
        return None

    # ------------------------------------------------------------------
    def max_rank_per_level(
        self, element_bytes: int = COMPLEX64_BYTES, reserve_factor: float = 1.0
    ) -> Dict[str, int]:
        """Largest tensor rank each level can hold."""
        return {
            lvl.name: lvl.max_rank(element_bytes, reserve_factor) for lvl in self._levels
        }

    def target_rank_for(
        self, name: str, element_bytes: int = COMPLEX64_BYTES, reserve_factor: float = 4.0
    ) -> int:
        """Slicing target rank so a contraction's working set fits in ``name``.

        ``reserve_factor=4`` reserves room for the two operands, the result
        and scratch — the convention used by the paper's rank-30 (main
        memory) and rank-13 (LDM) targets.
        """
        return self.level(name).max_rank(element_bytes, reserve_factor)


def sunway_hierarchy(
    spec: SunwaySpec = SW26010PRO,
    disk_capacity_bytes: float = 1024.0 * 1024**4,
    united_main_memory: bool = True,
) -> MemoryHierarchy:
    """The three-level Sunway hierarchy: disk → main memory → LDM.

    Parameters
    ----------
    spec:
        Machine description.
    disk_capacity_bytes:
        Capacity of the parallel filesystem visible to one node (1 PiB by
        default — effectively unbounded, as in the paper's rank-53 example).
    united_main_memory:
        Whether the 6 CGs' memories are united into one 96 GB pool (the
        paper's configuration) or kept per-CG (16 GB).
    """
    main_capacity = (
        spec.main_memory_per_node_bytes if united_main_memory else spec.main_memory_per_cg_bytes
    )
    return MemoryHierarchy(
        [
            StorageLevel(
                name="disk",
                capacity_bytes=float(disk_capacity_bytes),
                bandwidth_to_upper=spec.io_bandwidth,
            ),
            StorageLevel(
                name="main_memory",
                capacity_bytes=float(main_capacity),
                bandwidth_to_upper=spec.dma_bandwidth,
            ),
            StorageLevel(
                name="ldm",
                capacity_bytes=float(spec.ldm_bytes),
                bandwidth_to_upper=None,
            ),
        ]
    )
