"""Roofline performance model (Williams et al.), specialised for SW26010pro.

Fig. 13 of the paper plots the thread-level kernels on the Roofline of one
core group: before fusion the contraction kernels sit at an arithmetic
intensity of 1.2–2.6 flop/byte (deep in the bandwidth-bound region of the
42.3 flop/byte ridge point); after secondary slicing their intensity rises
by 10×–40×, and in some cases crosses the ridge into the compute-bound
region.  This module provides the attainable-performance curve, ridge-point
arithmetic and helpers for generating the figure's data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .spec import SW26010PRO, SunwaySpec

__all__ = ["RooflinePoint", "RooflineModel"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline.

    Attributes
    ----------
    label:
        Kernel name (e.g. ``"step-by-step"``, ``"fused n=10"``).
    arithmetic_intensity:
        flop / byte of memory traffic through the modelled level.
    achieved_flops:
        Measured/modelled sustained flop rate.
    """

    label: str
    arithmetic_intensity: float
    achieved_flops: float

    def bound_fraction(self, model: "RooflineModel") -> float:
        """Achieved fraction of the roofline bound at this intensity."""
        bound = model.attainable_flops(self.arithmetic_intensity)
        return self.achieved_flops / bound if bound > 0 else 0.0


class RooflineModel:
    """Attainable performance as a function of arithmetic intensity.

    Parameters
    ----------
    peak_flops:
        Peak compute rate of the modelled unit (defaults to one CG).
    memory_bandwidth:
        Bandwidth of the level feeding it (defaults to the CG's DMA rate).
    """

    def __init__(
        self,
        peak_flops: float | None = None,
        memory_bandwidth: float | None = None,
        spec: SunwaySpec = SW26010PRO,
    ) -> None:
        self.spec = spec
        self.peak_flops = float(peak_flops if peak_flops is not None else spec.peak_flops_per_cg)
        self.memory_bandwidth = float(
            memory_bandwidth if memory_bandwidth is not None else spec.dma_bandwidth
        )

    # ------------------------------------------------------------------
    @property
    def ridge_point(self) -> float:
        """Arithmetic intensity at which the kernel becomes compute bound."""
        return self.peak_flops / self.memory_bandwidth

    def attainable_flops(self, arithmetic_intensity: float) -> float:
        """min(peak, AI × bandwidth) — the roofline bound."""
        if arithmetic_intensity <= 0:
            return 0.0
        return min(self.peak_flops, arithmetic_intensity * self.memory_bandwidth)

    def is_compute_bound(self, arithmetic_intensity: float) -> bool:
        """Whether a kernel at this intensity is limited by compute."""
        return arithmetic_intensity >= self.ridge_point

    def bound_time(self, flops: float, bytes_moved: float) -> float:
        """Lower-bound execution time of a kernel with the given totals."""
        return max(flops / self.peak_flops, bytes_moved / self.memory_bandwidth)

    # ------------------------------------------------------------------
    def curve(
        self, intensities: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(AI, attainable flops) samples of the roofline for plotting."""
        return [(ai, self.attainable_flops(ai)) for ai in intensities]

    def classify(self, point: RooflinePoint) -> Dict[str, float]:
        """Summarise where a kernel sits relative to the roofline."""
        bound = self.attainable_flops(point.arithmetic_intensity)
        return {
            "arithmetic_intensity": point.arithmetic_intensity,
            "achieved_flops": point.achieved_flops,
            "attainable_flops": bound,
            "ridge_point": self.ridge_point,
            "compute_bound": float(self.is_compute_bound(point.arithmetic_intensity)),
            "fraction_of_bound": point.achieved_flops / bound if bound else 0.0,
            "fraction_of_peak": point.achieved_flops / self.peak_flops,
        }
