"""Complexity summaries of contraction trees and slicing decisions.

Thin analysis layer used by the examples and the benchmark harness to turn
planning artefacts into the numbers the paper reports (log10 complexity,
overhead, subtask counts, stem statistics).
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, List, Optional, Sequence

from ..core.slicing import SlicingCostModel, SlicingResult
from ..core.stem import Stem, extract_stem, stem_profile
from ..tensornet.contraction_tree import ContractionTree

__all__ = [
    "tree_summary",
    "slicing_summary",
    "stem_summary",
    "compare_slicers",
]


def tree_summary(tree: ContractionTree) -> Dict[str, float]:
    """Headline complexity metrics of a contraction tree."""
    return {
        "num_leaves": float(tree.num_leaves),
        "num_contractions": float(len(tree.internal_nodes())),
        "log10_flops": tree.log10_total_cost(),
        "log2_flops": tree.log10_total_cost() / math.log10(2.0),
        "max_rank": float(tree.max_rank()),
        "max_intermediate_log2_size": tree.max_intermediate_log2_size(),
        "arithmetic_intensity": tree.arithmetic_intensity(),
    }


def slicing_summary(result: SlicingResult) -> Dict[str, float]:
    """Flat-dict view of a slicing decision."""
    return {
        "num_sliced": float(result.num_sliced),
        "num_subtasks": result.num_subtasks,
        "overhead": result.overhead,
        "log10_total_cost": result.log10_total_cost,
        "max_rank": float(result.max_rank),
        "satisfies_target": float(result.satisfies_target),
        "target_rank": float(result.target_rank),
    }


def stem_summary(stem: Stem) -> Dict[str, float]:
    """Headline stem statistics (length, cost share, peak rank)."""
    return {
        "length": float(stem.length),
        "cost_fraction": stem.cost_fraction(),
        "max_rank": float(stem.max_rank()),
        "num_candidate_edges": float(len(stem.edges())),
    }


def compare_slicers(
    tree: ContractionTree,
    results: Dict[str, SlicingResult],
) -> List[Dict[str, float]]:
    """Side-by-side comparison rows for several slicing strategies on one tree."""
    rows: List[Dict[str, float]] = []
    for name, result in results.items():
        row = {"method": name}  # type: ignore[dict-item]
        row.update(slicing_summary(result))
        rows.append(row)  # type: ignore[arg-type]
    return rows
