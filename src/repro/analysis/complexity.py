"""Complexity summaries of contraction trees and slicing decisions.

Thin analysis layer used by the examples and the benchmark harness to turn
planning artefacts into the numbers the paper reports (log10 complexity,
overhead, subtask counts, stem statistics).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, AbstractSet, Dict, List, Optional, Sequence

from ..core.slicing import SlicingCostModel, SlicingResult
from ..core.stem import Stem, extract_stem, stem_profile
from ..tensornet.contraction_tree import ContractionTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs.model import CostModel
    from ..execution.plan import PlanStats

__all__ = [
    "tree_summary",
    "slicing_summary",
    "stem_summary",
    "compare_slicers",
    "cost_model_summary",
    "predicted_vs_measured",
]


def tree_summary(tree: ContractionTree) -> Dict[str, float]:
    """Headline complexity metrics of a contraction tree."""
    return {
        "num_leaves": float(tree.num_leaves),
        "num_contractions": float(len(tree.internal_nodes())),
        "log10_flops": tree.log10_total_cost(),
        "log2_flops": tree.log10_total_cost() / math.log10(2.0),
        "max_rank": float(tree.max_rank()),
        "max_intermediate_log2_size": tree.max_intermediate_log2_size(),
        "arithmetic_intensity": tree.arithmetic_intensity(),
    }


def slicing_summary(result: SlicingResult) -> Dict[str, float]:
    """Flat-dict view of a slicing decision."""
    return {
        "num_sliced": float(result.num_sliced),
        "num_subtasks": result.num_subtasks,
        "overhead": result.overhead,
        "log10_total_cost": result.log10_total_cost,
        "max_rank": float(result.max_rank),
        "satisfies_target": float(result.satisfies_target),
        "target_rank": float(result.target_rank),
    }


def stem_summary(stem: Stem) -> Dict[str, float]:
    """Headline stem statistics (length, cost share, peak rank)."""
    return {
        "length": float(stem.length),
        "cost_fraction": stem.cost_fraction(),
        "max_rank": float(stem.max_rank()),
        "num_candidate_edges": float(len(stem.edges())),
    }


def compare_slicers(
    tree: ContractionTree,
    results: Dict[str, SlicingResult],
) -> List[Dict[str, float]]:
    """Side-by-side comparison rows for several slicing strategies on one tree."""
    rows: List[Dict[str, float]] = []
    for name, result in results.items():
        row = {"method": name}  # type: ignore[dict-item]
        row.update(slicing_summary(result))
        rows.append(row)  # type: ignore[arg-type]
    return rows


def cost_model_summary(
    cost_model: "CostModel",
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    backends: Optional[Sequence[str]] = None,
) -> List[Dict[str, float]]:
    """Per-backend predicted subtask/total seconds of one workload.

    One row per backend (default: the single default prediction), the
    tabular form of the unified cost model's view of a tree + slicing
    pair.
    """
    sliced = frozenset(sliced)
    names: Sequence[Optional[str]] = list(backends) if backends else [None]
    rows: List[Dict[str, float]] = []
    for name in names:
        subtask = cost_model.subtask_seconds(tree, sliced, backend=name)
        rows.append(
            {
                "backend": name or "default",  # type: ignore[dict-item]
                "subtask_seconds": subtask,
                "total_seconds": cost_model.total_seconds(tree, sliced, backend=name),
                "subtask_flops": cost_model.subtask_work_flops(tree, sliced),
            }
        )
    return rows


def predicted_vs_measured(
    cost_model: "CostModel",
    stats: "PlanStats",
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Predicted subtask seconds against a run's measured wall times.

    ``ratio`` is measured over predicted — 1.0 means the model nailed it.
    Raises ``ValueError`` when the stats carry no timing samples, or when
    they include batched sweeps (one of those samples covers a whole
    sweep of subtasks, so comparing it to a per-subtask prediction would
    inflate the ratio by the batch width).
    """
    if not stats.subtask_seconds:
        raise ValueError("stats carry no subtask timings; run the workload first")
    if getattr(stats, "batched_executions", 0):
        raise ValueError(
            "stats include batched sweeps; compare against non-batched runs"
        )
    predicted = cost_model.subtask_seconds(tree, frozenset(sliced), backend=backend)
    measured = stats.mean_subtask_seconds
    return {
        "predicted_subtask_seconds": predicted,
        "measured_subtask_seconds": measured,
        "measured_samples": float(
            getattr(stats, "timed_subtasks", 0) or len(stats.subtask_seconds)
        ),
        "ratio": measured / predicted if predicted else math.inf,
    }
