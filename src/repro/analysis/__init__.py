"""Analysis and reporting helpers used by the examples and benchmark harness."""

from .complexity import compare_slicers, slicing_summary, stem_summary, tree_summary
from .report import format_kv, format_series, format_table, summarize_distribution

__all__ = [
    "compare_slicers",
    "slicing_summary",
    "stem_summary",
    "tree_summary",
    "format_kv",
    "format_series",
    "format_table",
    "summarize_distribution",
]
