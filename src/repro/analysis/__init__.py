"""Analysis and reporting helpers used by the examples and benchmark harness."""

from .complexity import (
    compare_slicers,
    cost_model_summary,
    predicted_vs_measured,
    slicing_summary,
    stem_summary,
    tree_summary,
)
from .report import format_kv, format_series, format_table, summarize_distribution

__all__ = [
    "compare_slicers",
    "cost_model_summary",
    "predicted_vs_measured",
    "slicing_summary",
    "stem_summary",
    "tree_summary",
    "format_kv",
    "format_series",
    "format_table",
    "summarize_distribution",
]
