"""Plain-text table / series formatting for the benchmark harness.

The benchmark scripts print the same rows and series that the paper's
figures show; these helpers keep that formatting in one place so the output
of ``pytest benchmarks/ --benchmark-only`` reads like the paper's tables.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_kv", "summarize_distribution"]


def _format_cell(value: object, precision: int = 4) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or 0 < abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_cell(row.get(col, ""), precision) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
    return "\n".join(lines)


def format_series(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    x_label: str = "x",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render aligned (x, y1, y2, ...) series — the textual form of a figure."""
    rows = []
    for i, xv in enumerate(x):
        row: Dict[str, object] = {x_label: xv}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else math.nan
        rows.append(row)
    return format_table(rows, columns=[x_label, *series.keys()], title=title, precision=precision)


def format_kv(values: Mapping[str, object], title: Optional[str] = None, precision: int = 4) -> str:
    """Render a flat mapping as aligned ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(k) for k in values), default=0)
    for key, value in values.items():
        lines.append(f"  {key.ljust(width)} : {_format_cell(value, precision)}")
    return "\n".join(lines)


def summarize_distribution(values: Sequence[float]) -> Dict[str, float]:
    """Min / median / mean / max / fraction-below-one summary of a sample."""
    if not values:
        return {"count": 0.0}
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    median = ordered[mid] if n % 2 == 1 else 0.5 * (ordered[mid - 1] + ordered[mid])
    return {
        "count": float(n),
        "min": float(ordered[0]),
        "median": float(median),
        "mean": float(sum(ordered) / n),
        "max": float(ordered[-1]),
    }
