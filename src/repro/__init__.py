"""repro — Lifetime-based optimization for sliced tensor-network quantum circuit simulation.

A faithful Python reproduction of "Lifetime-based Optimization for
Simulating Quantum Circuits on a New Sunway Supercomputer" (PPoPP 2023):
quantum-circuit and tensor-network substrates, contraction-path search,
lifetime-based slicing (slice finder + SA refiner), the slice-or-stack
discriminant, secondary slicing with fused thread-level execution, an
analytical SW26010pro performance model, and the benchmark harness that
regenerates every figure of the paper's evaluation.

Quick start
-----------
>>> from repro import SimulationPlanner
>>> from repro.circuits import grid_circuit
>>> planner = SimulationPlanner(target_rank=20, ldm_rank=10, seed=0)
>>> plan = planner.plan_circuit(grid_circuit(4, 4, cycles=8, seed=1))
>>> plan.slicing.overhead  # doctest: +SKIP
1.03
"""

from . import analysis, circuits, core, costs, execution, hardware, paths, tensornet
from .pipeline import SimulationPlan, SimulationPlanner

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "circuits",
    "core",
    "costs",
    "execution",
    "hardware",
    "paths",
    "tensornet",
    "SimulationPlan",
    "SimulationPlanner",
    "__version__",
]
