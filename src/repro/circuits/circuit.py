"""Quantum circuit intermediate representation.

A :class:`Circuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
operations on ``num_qubits`` qubits.  The representation is deliberately
minimal — the TNC simulator never needs classical control flow — but it keeps
enough structure (moments, per-qubit wire history) for the circuit→tensor
network converter and the state-vector reference simulator to stay simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .gates import Gate, GateDefinitionError

__all__ = ["Circuit", "Moment", "CircuitError"]


class CircuitError(ValueError):
    """Raised for structurally invalid circuit operations."""


@dataclass(frozen=True)
class Moment:
    """A set of gates that act on disjoint qubits and can run concurrently."""

    gates: Tuple[Gate, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for gate in self.gates:
            for q in gate.qubits:
                if q in seen:
                    raise CircuitError(
                        f"moment has overlapping gates on qubit {q}"
                    )
                seen.add(q)

    @property
    def qubits(self) -> frozenset[int]:
        """All qubits touched by this moment."""
        return frozenset(q for g in self.gates for q in g.qubits)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)


class Circuit:
    """An ordered sequence of gates on a fixed qubit register.

    Parameters
    ----------
    num_qubits:
        Size of the qubit register.  Qubit indices run ``0..num_qubits-1``.
    gates:
        Optional initial gate sequence.

    Examples
    --------
    >>> from repro.circuits import Circuit, Gate
    >>> c = Circuit(2)
    >>> c.add_gate(Gate("h", (0,)))
    >>> c.add_gate(Gate("cx", (0, 1)))
    >>> c.num_gates
    2
    """

    def __init__(self, num_qubits: int, gates: Iterable[Gate] = ()) -> None:
        if num_qubits <= 0:
            raise CircuitError("num_qubits must be positive")
        self._num_qubits = int(num_qubits)
        self._gates: List[Gate] = []
        for gate in gates:
            self.add_gate(gate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(self, gate: Gate) -> "Circuit":
        """Append ``gate``; returns ``self`` for chaining."""
        for q in gate.qubits:
            if not 0 <= q < self._num_qubits:
                raise CircuitError(
                    f"qubit {q} out of range for {self._num_qubits}-qubit circuit"
                )
        self._gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: Sequence[float] = ()) -> "Circuit":
        """Convenience wrapper: ``circuit.add("cz", 0, 1)``."""
        return self.add_gate(Gate(name, tuple(qubits), tuple(params)))

    def extend(self, gates: Iterable[Gate]) -> "Circuit":
        """Append every gate of ``gates``."""
        for gate in gates:
            self.add_gate(gate)
        return self

    def copy(self) -> "Circuit":
        """Shallow copy (gates are immutable)."""
        return Circuit(self._num_qubits, self._gates)

    def inverse(self) -> "Circuit":
        """Return the adjoint circuit (gates reversed and daggered)."""
        inv = Circuit(self._num_qubits)
        for gate in reversed(self._gates):
            inv.add_gate(gate.dagger())
        return inv

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Register size."""
        return self._num_qubits

    @property
    def num_gates(self) -> int:
        """Total number of gates."""
        return len(self._gates)

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """Immutable view of the gate sequence."""
        return tuple(self._gates)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates (the entangling cost of the circuit)."""
        return sum(1 for g in self._gates if g.num_qubits == 2)

    def depth(self) -> int:
        """Circuit depth: number of moments after greedy left-alignment."""
        return len(self.moments())

    def qubits_used(self) -> frozenset[int]:
        """The set of qubits touched by at least one gate."""
        return frozenset(q for g in self._gates for q in g.qubits)

    def moments(self) -> List[Moment]:
        """Greedily pack gates into moments preserving per-qubit order."""
        frontier: Dict[int, int] = {}
        buckets: List[List[Gate]] = []
        for gate in self._gates:
            level = max((frontier.get(q, 0) for q in gate.qubits), default=0)
            while len(buckets) <= level:
                buckets.append([])
            buckets[level].append(gate)
            for q in gate.qubits:
                frontier[q] = level + 1
        return [Moment(tuple(b)) for b in buckets if b]

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names."""
        counts: Dict[str, int] = {}
        for gate in self._gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def interaction_graph(self) -> Dict[Tuple[int, int], int]:
        """Count of two-qubit interactions per qubit pair (sorted pairs)."""
        counts: Dict[Tuple[int, int], int] = {}
        for gate in self._gates:
            if gate.num_qubits == 2:
                pair = tuple(sorted(gate.qubits))  # type: ignore[assignment]
                counts[pair] = counts.get(pair, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index: int) -> Gate:
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Circuit):
            return NotImplemented
        return (
            self._num_qubits == other._num_qubits and self._gates == other._gates
        )

    def __add__(self, other: "Circuit") -> "Circuit":
        if not isinstance(other, Circuit):
            return NotImplemented
        if other.num_qubits != self.num_qubits:
            raise CircuitError("cannot concatenate circuits of different width")
        combined = self.copy()
        combined.extend(other.gates)
        return combined

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit(num_qubits={self._num_qubits}, num_gates={len(self._gates)}, "
            f"depth={self.depth()})"
        )

    # ------------------------------------------------------------------
    # Dense unitary (small circuits only; used by tests)
    # ------------------------------------------------------------------
    def unitary(self, max_qubits: int = 12) -> np.ndarray:
        """Return the full ``2^n x 2^n`` unitary of the circuit.

        Only intended for correctness checks on small circuits; refuses to
        build matrices beyond ``max_qubits`` qubits.
        """
        if self._num_qubits > max_qubits:
            raise CircuitError(
                f"refusing to build a dense unitary on {self._num_qubits} qubits"
            )
        dim = 2**self._num_qubits
        u = np.eye(dim, dtype=np.complex128)
        for gate in self._gates:
            u = _apply_gate_to_matrix(u, gate, self._num_qubits)
        return u


def _apply_gate_to_matrix(u: np.ndarray, gate: Gate, num_qubits: int) -> np.ndarray:
    """Left-multiply ``u`` by the full-register embedding of ``gate``."""
    tensor = u.reshape((2,) * num_qubits + (u.shape[1],))
    g = gate.tensor()
    if gate.num_qubits == 1:
        (q,) = gate.qubits
        tensor = np.tensordot(g, tensor, axes=([1], [q]))
        tensor = np.moveaxis(tensor, 0, q)
    else:
        q0, q1 = gate.qubits
        tensor = np.tensordot(g, tensor, axes=([2, 3], [q0, q1]))
        tensor = np.moveaxis(tensor, (0, 1), (q0, q1))
    return tensor.reshape(u.shape)
