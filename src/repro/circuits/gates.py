"""Quantum gate library.

The tensor-network contraction (TNC) simulator treats every gate as a small
complex tensor.  A one-qubit gate is a ``(2, 2)`` matrix, a two-qubit gate a
``(2, 2, 2, 2)`` tensor whose axes are ordered ``(out_0, out_1, in_0, in_1)``.
The gate set implemented here covers everything that appears in
Sycamore-style random quantum circuits (RQCs) — ``sqrt(X)``, ``sqrt(Y)``,
``sqrt(W)``, ``fSim`` and ``iSWAP``-like couplers — together with the
textbook Clifford+T set used by the examples and the correctness tests.

All matrices are returned as fresh ``numpy.ndarray`` objects of dtype
``complex128`` so callers may mutate them freely.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

__all__ = [
    "Gate",
    "GateDefinitionError",
    "gate_matrix",
    "gate_tensor",
    "available_gates",
    "register_gate",
    "is_diagonal_gate",
    "I",
    "X",
    "Y",
    "Z",
    "H",
    "S",
    "SDG",
    "T",
    "TDG",
    "SX",
    "SY",
    "SW",
    "RX",
    "RY",
    "RZ",
    "U3",
    "CZ",
    "CX",
    "CNOT",
    "SWAP",
    "ISWAP",
    "SQRT_ISWAP",
    "FSIM",
    "CPHASE",
]


class GateDefinitionError(ValueError):
    """Raised when a gate name is unknown or its parameters are invalid."""


# ---------------------------------------------------------------------------
# Primitive matrices
# ---------------------------------------------------------------------------

_SQRT2_INV = 1.0 / math.sqrt(2.0)


def I() -> np.ndarray:
    """Identity."""
    return np.eye(2, dtype=np.complex128)


def X() -> np.ndarray:
    """Pauli-X."""
    return np.array([[0, 1], [1, 0]], dtype=np.complex128)


def Y() -> np.ndarray:
    """Pauli-Y."""
    return np.array([[0, -1j], [1j, 0]], dtype=np.complex128)


def Z() -> np.ndarray:
    """Pauli-Z."""
    return np.array([[1, 0], [0, -1]], dtype=np.complex128)


def H() -> np.ndarray:
    """Hadamard."""
    return np.array([[1, 1], [1, -1]], dtype=np.complex128) * _SQRT2_INV


def S() -> np.ndarray:
    """Phase gate ``diag(1, i)``."""
    return np.array([[1, 0], [0, 1j]], dtype=np.complex128)


def SDG() -> np.ndarray:
    """Inverse phase gate ``diag(1, -i)``."""
    return np.array([[1, 0], [0, -1j]], dtype=np.complex128)


def T() -> np.ndarray:
    """T gate ``diag(1, e^{i pi/4})``."""
    return np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=np.complex128)


def TDG() -> np.ndarray:
    """Inverse T gate."""
    return np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=np.complex128)


def SX() -> np.ndarray:
    """Square root of X (used in Sycamore single-qubit layers)."""
    return 0.5 * np.array(
        [[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=np.complex128
    )


def SY() -> np.ndarray:
    """Square root of Y (used in Sycamore single-qubit layers)."""
    return 0.5 * np.array(
        [[1 + 1j, -1 - 1j], [1 + 1j, 1 + 1j]], dtype=np.complex128
    )


def SW() -> np.ndarray:
    """Square root of W where ``W = (X + Y) / sqrt(2)`` (Sycamore)."""
    return 0.5 * np.array(
        [
            [1 + 1j, -math.sqrt(2) * 1j],
            [math.sqrt(2), 1 + 1j],
        ],
        dtype=np.complex128,
    ) * cmath.exp(-1j * math.pi / 4)


def RX(theta: float) -> np.ndarray:
    """Rotation about X by angle ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=np.complex128)


def RY(theta: float) -> np.ndarray:
    """Rotation about Y by angle ``theta``."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=np.complex128)


def RZ(theta: float) -> np.ndarray:
    """Rotation about Z by angle ``theta``."""
    return np.array(
        [[cmath.exp(-1j * theta / 2), 0], [0, cmath.exp(1j * theta / 2)]],
        dtype=np.complex128,
    )


def U3(theta: float, phi: float, lam: float) -> np.ndarray:
    """General single-qubit unitary with three Euler angles."""
    c, s = math.cos(theta / 2.0), math.sin(theta / 2.0)
    return np.array(
        [
            [c, -cmath.exp(1j * lam) * s],
            [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
        ],
        dtype=np.complex128,
    )


# ---------------------------------------------------------------------------
# Two-qubit gates (returned as 4x4 matrices; axis order |q0 q1>)
# ---------------------------------------------------------------------------


def CZ() -> np.ndarray:
    """Controlled-Z."""
    m = np.eye(4, dtype=np.complex128)
    m[3, 3] = -1.0
    return m


def CX() -> np.ndarray:
    """Controlled-X with qubit 0 as control."""
    m = np.eye(4, dtype=np.complex128)
    m[2, 2] = m[3, 3] = 0.0
    m[2, 3] = m[3, 2] = 1.0
    return m


def CNOT() -> np.ndarray:
    """Alias of :func:`CX`."""
    return CX()


def SWAP() -> np.ndarray:
    """Swap the two qubits."""
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = m[3, 3] = 1.0
    m[1, 2] = m[2, 1] = 1.0
    return m


def ISWAP() -> np.ndarray:
    """iSWAP: swap with an ``i`` phase on the exchanged states."""
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = m[3, 3] = 1.0
    m[1, 2] = m[2, 1] = 1j
    return m


def SQRT_ISWAP() -> np.ndarray:
    """Square root of iSWAP."""
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = m[3, 3] = 1.0
    m[1, 1] = m[2, 2] = _SQRT2_INV
    m[1, 2] = m[2, 1] = 1j * _SQRT2_INV
    return m


def FSIM(theta: float, phi: float) -> np.ndarray:
    """Google fSim gate.

    ``fSim(theta, phi)`` performs a partial iSWAP by angle ``theta`` and a
    controlled phase ``phi`` on the ``|11>`` state.  Sycamore uses
    ``theta ~= pi/2`` and ``phi ~= pi/6``.
    """
    c, s = math.cos(theta), math.sin(theta)
    m = np.zeros((4, 4), dtype=np.complex128)
    m[0, 0] = 1.0
    m[1, 1] = c
    m[1, 2] = -1j * s
    m[2, 1] = -1j * s
    m[2, 2] = c
    m[3, 3] = cmath.exp(-1j * phi)
    return m


def CPHASE(phi: float) -> np.ndarray:
    """Controlled phase gate ``diag(1, 1, 1, e^{i phi})``."""
    m = np.eye(4, dtype=np.complex128)
    m[3, 3] = cmath.exp(1j * phi)
    return m


# ---------------------------------------------------------------------------
# Gate registry
# ---------------------------------------------------------------------------

_GATE_BUILDERS: Dict[str, Tuple[Callable[..., np.ndarray], int, int]] = {
    # name: (builder, num_qubits, num_params)
    "i": (I, 1, 0),
    "id": (I, 1, 0),
    "x": (X, 1, 0),
    "y": (Y, 1, 0),
    "z": (Z, 1, 0),
    "h": (H, 1, 0),
    "s": (S, 1, 0),
    "sdg": (SDG, 1, 0),
    "t": (T, 1, 0),
    "tdg": (TDG, 1, 0),
    "sx": (SX, 1, 0),
    "sy": (SY, 1, 0),
    "sw": (SW, 1, 0),
    "rx": (RX, 1, 1),
    "ry": (RY, 1, 1),
    "rz": (RZ, 1, 1),
    "u3": (U3, 1, 3),
    "cz": (CZ, 2, 0),
    "cx": (CX, 2, 0),
    "cnot": (CNOT, 2, 0),
    "swap": (SWAP, 2, 0),
    "iswap": (ISWAP, 2, 0),
    "sqrt_iswap": (SQRT_ISWAP, 2, 0),
    "fsim": (FSIM, 2, 2),
    "cphase": (CPHASE, 2, 1),
}

# Gates whose matrix is diagonal in the computational basis.  Diagonal
# two-qubit gates produce rank-2 tensors in the tensor network (a single
# shared edge with a weight-2 "copy" structure) and are absorbed by the
# simplification pass, so the converter wants to know about them.
_DIAGONAL_GATES = frozenset({"i", "id", "z", "s", "sdg", "t", "tdg", "rz", "cz", "cphase"})


def available_gates() -> Tuple[str, ...]:
    """Return the names of all registered gates, sorted."""
    return tuple(sorted(_GATE_BUILDERS))


def register_gate(
    name: str,
    builder: Callable[..., np.ndarray],
    num_qubits: int,
    num_params: int = 0,
    diagonal: bool = False,
) -> None:
    """Register a custom gate builder.

    Parameters
    ----------
    name:
        Lower-case gate name used by :class:`Gate` instances.
    builder:
        Callable returning the ``(2**n, 2**n)`` unitary matrix.
    num_qubits:
        Number of qubits the gate acts on (1 or 2).
    num_params:
        Number of float parameters the builder expects.
    diagonal:
        Whether the matrix is diagonal in the computational basis.
    """
    if num_qubits not in (1, 2):
        raise GateDefinitionError("only 1- and 2-qubit gates are supported")
    key = name.lower()
    _GATE_BUILDERS[key] = (builder, num_qubits, num_params)
    if diagonal:
        global _DIAGONAL_GATES
        _DIAGONAL_GATES = frozenset(_DIAGONAL_GATES | {key})


def is_diagonal_gate(name: str) -> bool:
    """Return True when ``name`` denotes a diagonal gate."""
    return name.lower() in _DIAGONAL_GATES


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the unitary matrix of a named gate.

    One-qubit gates give ``(2, 2)`` matrices, two-qubit gates ``(4, 4)``.
    """
    key = name.lower()
    try:
        builder, _, num_params = _GATE_BUILDERS[key]
    except KeyError as exc:
        raise GateDefinitionError(f"unknown gate {name!r}") from exc
    if len(params) != num_params:
        raise GateDefinitionError(
            f"gate {name!r} expects {num_params} parameter(s), got {len(params)}"
        )
    return builder(*params)


def gate_tensor(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Return the gate as a tensor suitable for a tensor network.

    One-qubit gates are returned as ``(2, 2)`` arrays ``[out, in]``; two-qubit
    gates as ``(2, 2, 2, 2)`` arrays ``[out0, out1, in0, in1]``.
    """
    matrix = gate_matrix(name, params)
    if matrix.shape == (2, 2):
        return matrix
    return matrix.reshape(2, 2, 2, 2)


def gate_num_qubits(name: str) -> int:
    """Number of qubits the named gate acts on."""
    key = name.lower()
    try:
        return _GATE_BUILDERS[key][1]
    except KeyError as exc:
        raise GateDefinitionError(f"unknown gate {name!r}") from exc


# ---------------------------------------------------------------------------
# Gate instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Gate:
    """A gate applied to specific qubits of a circuit.

    Attributes
    ----------
    name:
        Registered gate name (case-insensitive).
    qubits:
        Tuple of target qubit indices, length 1 or 2.
    params:
        Float parameters forwarded to the gate builder.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        expected = gate_num_qubits(self.name)
        if len(self.qubits) != expected:
            raise GateDefinitionError(
                f"gate {self.name!r} acts on {expected} qubit(s), "
                f"got targets {self.qubits}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise GateDefinitionError(f"duplicate qubits in {self.qubits}")
        # ensure params are hashable floats
        object.__setattr__(self, "params", tuple(float(p) for p in self.params))
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))

    @property
    def num_qubits(self) -> int:
        """Number of qubits this gate acts on."""
        return len(self.qubits)

    @property
    def is_diagonal(self) -> bool:
        """Whether the gate matrix is diagonal in the computational basis."""
        return is_diagonal_gate(self.name)

    def matrix(self) -> np.ndarray:
        """The gate's unitary matrix."""
        return gate_matrix(self.name, self.params)

    def tensor(self) -> np.ndarray:
        """The gate as a rank-2 or rank-4 tensor."""
        return gate_tensor(self.name, self.params)

    def dagger(self) -> "Gate":
        """Return a gate whose matrix is the adjoint of this one.

        Parameterised rotations negate their parameters; the remaining gates
        map onto their registered inverses when one exists, otherwise a
        custom adjoint gate is registered on the fly.
        """
        name = self.name.lower()
        inverses = {
            "s": "sdg",
            "sdg": "s",
            "t": "tdg",
            "tdg": "t",
        }
        if name in inverses:
            return Gate(inverses[name], self.qubits)
        if name in ("rx", "ry", "rz", "cphase"):
            return Gate(name, self.qubits, tuple(-p for p in self.params))
        if name in ("i", "id", "x", "y", "z", "h", "cz", "cx", "cnot", "swap"):
            return Gate(name, self.qubits, self.params)
        if name == "fsim":
            theta, phi = self.params
            return Gate("fsim", self.qubits, (-theta, -phi))
        # generic fallback: register the adjoint matrix under a derived name
        adj = self.matrix().conj().T
        adj_name = f"{name}_dag_{abs(hash((self.name, self.params))) % 10_000_000}"
        if adj_name not in _GATE_BUILDERS:
            register_gate(adj_name, lambda m=adj: m.copy(), self.num_qubits, 0)
        return Gate(adj_name, self.qubits)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.params:
            params = ", ".join(f"{p:.4g}" for p in self.params)
            return f"Gate({self.name}({params}) @ {list(self.qubits)})"
        return f"Gate({self.name} @ {list(self.qubits)})"
