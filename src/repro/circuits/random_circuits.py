"""Random quantum circuit (RQC) generators.

The paper evaluates on the Sycamore-53 random circuits of Arute et al.
(Nature 2019).  The actual Sycamore instances are proprietary amplitude
benchmarks, so this module generates *structurally faithful* substitutes:

* :func:`sycamore_circuit` — a 53-qubit circuit on the Sycamore coupling map
  (a diagonal grid with one defective site) that alternates random
  single-qubit gates from ``{sqrt(X), sqrt(Y), sqrt(W)}`` with fSim couplers
  activated in the published ABCDCDAB pattern.
* :func:`grid_circuit` — the same construction on an arbitrary ``rows x
  cols`` rectangular lattice, used for laptop-scale experiments where 53
  qubits would be too large to verify numerically.
* :func:`random_brickwork_circuit` — a generic 1-D brickwork RQC used by the
  property tests.

What matters to the lifetime/slicing machinery is the *graph structure* of
the induced tensor network (2-D, shallow, highly entangled); these
generators produce exactly that class of graphs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .circuit import Circuit
from .gates import Gate

__all__ = [
    "GridSpec",
    "sycamore_coupling_map",
    "sycamore_circuit",
    "grid_coupling_map",
    "grid_circuit",
    "random_brickwork_circuit",
    "SYCAMORE_FSIM_THETA",
    "SYCAMORE_FSIM_PHI",
]

# Calibrated Sycamore fSim angles (average over the device; Arute et al. 2019)
SYCAMORE_FSIM_THETA = math.pi / 2.0
SYCAMORE_FSIM_PHI = math.pi / 6.0

_SINGLE_QUBIT_POOL = ("sx", "sy", "sw")


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a rectangular qubit grid.

    Attributes
    ----------
    rows, cols:
        Grid dimensions.
    missing:
        Sites excluded from the device (e.g. Sycamore's one broken qubit).
    """

    rows: int
    cols: int
    missing: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_qubits(self) -> int:
        """Number of active qubits."""
        return self.rows * self.cols - len(self.missing)

    def site_index(self) -> Dict[Tuple[int, int], int]:
        """Map from (row, col) to a dense qubit index, skipping missing sites."""
        mapping: Dict[Tuple[int, int], int] = {}
        idx = 0
        missing = set(self.missing)
        for r in range(self.rows):
            for c in range(self.cols):
                if (r, c) in missing:
                    continue
                mapping[(r, c)] = idx
                idx += 1
        return mapping


def grid_coupling_map(spec: GridSpec) -> Dict[str, List[Tuple[int, int]]]:
    """Nearest-neighbour couplers of a rectangular grid, grouped into the
    four Sycamore activation patterns A/B/C/D.

    Pattern definitions follow the supplementary material of Arute et al.:
    vertical couplers split into two interleaved sets (A, B) and horizontal
    couplers into two interleaved sets (C, D), so that each pattern is a
    perfect matching on the grid.
    """
    index = spec.site_index()
    patterns: Dict[str, List[Tuple[int, int]]] = {"A": [], "B": [], "C": [], "D": []}
    for (r, c), q in index.items():
        down = (r + 1, c)
        right = (r, c + 1)
        if down in index:
            key = "A" if (r + c) % 2 == 0 else "B"
            patterns[key].append((q, index[down]))
        if right in index:
            key = "C" if (r + c) % 2 == 0 else "D"
            patterns[key].append((q, index[right]))
    return patterns


def sycamore_coupling_map() -> Tuple[GridSpec, Dict[str, List[Tuple[int, int]]]]:
    """The 53-qubit Sycamore layout as a 2-D grid with one missing site.

    The physical chip is a diagonal lattice of 54 transmons with one
    inoperable qubit; topologically it is equivalent to a nearest-neighbour
    grid of 6 x 9 sites with one site removed, which is what we build here.
    """
    spec = GridSpec(rows=6, cols=9, missing=((5, 8),))
    return spec, grid_coupling_map(spec)


def _random_single_qubit_layer(
    num_qubits: int,
    rng: np.random.Generator,
    previous: Optional[np.ndarray],
) -> Tuple[List[Gate], np.ndarray]:
    """One layer of random single-qubit gates.

    Sycamore circuits never repeat the same single-qubit gate on a qubit in
    consecutive cycles; the ``previous`` array carries the last choice per
    qubit so that the constraint can be enforced.
    """
    choices = np.arange(len(_SINGLE_QUBIT_POOL))
    layer: List[Gate] = []
    current = np.empty(num_qubits, dtype=np.int64)
    for q in range(num_qubits):
        allowed = choices
        if previous is not None:
            allowed = choices[choices != previous[q]]
        pick = int(rng.choice(allowed))
        current[q] = pick
        layer.append(Gate(_SINGLE_QUBIT_POOL[pick], (q,)))
    return layer, current


def grid_circuit(
    rows: int,
    cols: int,
    cycles: int,
    seed: int = 0,
    missing: Sequence[Tuple[int, int]] = (),
    fsim_theta: float = SYCAMORE_FSIM_THETA,
    fsim_phi: float = SYCAMORE_FSIM_PHI,
    pattern_order: Sequence[str] = ("A", "B", "C", "D", "C", "D", "A", "B"),
) -> Circuit:
    """Generate a Sycamore-style RQC on an ``rows x cols`` grid.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.
    cycles:
        Number of cycles ``m``; each cycle is one random single-qubit layer
        followed by one fSim coupler layer.  The paper's main workload uses
        ``m = 20``.
    seed:
        PRNG seed (the circuit is fully deterministic given the seed).
    missing:
        Grid sites to exclude.
    fsim_theta, fsim_phi:
        Coupler angles.
    pattern_order:
        Coupler activation sequence, cycled.  Default is the published
        Sycamore supremacy sequence ABCDCDAB.
    """
    if cycles < 0:
        raise ValueError("cycles must be non-negative")
    spec = GridSpec(rows=rows, cols=cols, missing=tuple(missing))
    patterns = grid_coupling_map(spec)
    num_qubits = spec.num_qubits
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)

    previous: Optional[np.ndarray] = None
    for cycle in range(cycles):
        layer, previous = _random_single_qubit_layer(num_qubits, rng, previous)
        circuit.extend(layer)
        pattern = pattern_order[cycle % len(pattern_order)]
        for q0, q1 in patterns[pattern]:
            circuit.add_gate(Gate("fsim", (q0, q1), (fsim_theta, fsim_phi)))
    # final single-qubit layer before measurement, as in the real circuits
    if cycles > 0:
        layer, _ = _random_single_qubit_layer(num_qubits, rng, previous)
        circuit.extend(layer)
    return circuit


def sycamore_circuit(cycles: int = 20, seed: int = 0) -> Circuit:
    """A 53-qubit Sycamore-style random circuit with ``cycles`` cycles."""
    spec, _ = sycamore_coupling_map()
    return grid_circuit(
        rows=spec.rows,
        cols=spec.cols,
        cycles=cycles,
        seed=seed,
        missing=spec.missing,
    )


def random_brickwork_circuit(
    num_qubits: int,
    depth: int,
    seed: int = 0,
    two_qubit_gate: str = "cz",
) -> Circuit:
    """A 1-D brickwork random circuit (generic RQC for tests).

    Each layer applies Haar-ish random single-qubit rotations (``u3`` with
    uniform angles) to every qubit, followed by the chosen two-qubit gate on
    alternating neighbouring pairs.
    """
    if num_qubits < 1:
        raise ValueError("num_qubits must be positive")
    rng = np.random.default_rng(seed)
    circuit = Circuit(num_qubits)
    for layer in range(depth):
        for q in range(num_qubits):
            theta, phi, lam = rng.uniform(0.0, 2.0 * math.pi, size=3)
            circuit.add_gate(Gate("u3", (q,), (theta, phi, lam)))
        start = layer % 2
        for q in range(start, num_qubits - 1, 2):
            circuit.add_gate(Gate(two_qubit_gate, (q, q + 1)))
    return circuit
