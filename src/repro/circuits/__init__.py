"""Quantum-circuit substrate: gates, circuit IR, RQC generators, reference simulator."""

from .gates import (
    Gate,
    GateDefinitionError,
    available_gates,
    gate_matrix,
    gate_tensor,
    is_diagonal_gate,
    register_gate,
)
from .circuit import Circuit, CircuitError, Moment
from .random_circuits import (
    GridSpec,
    grid_circuit,
    grid_coupling_map,
    random_brickwork_circuit,
    sycamore_circuit,
    sycamore_coupling_map,
)
from .statevector import (
    StateVectorSimulator,
    amplitude,
    sample_bitstrings,
    simulate_statevector,
)

__all__ = [
    "Gate",
    "GateDefinitionError",
    "available_gates",
    "gate_matrix",
    "gate_tensor",
    "is_diagonal_gate",
    "register_gate",
    "Circuit",
    "CircuitError",
    "Moment",
    "GridSpec",
    "grid_circuit",
    "grid_coupling_map",
    "random_brickwork_circuit",
    "sycamore_circuit",
    "sycamore_coupling_map",
    "StateVectorSimulator",
    "amplitude",
    "sample_bitstrings",
    "simulate_statevector",
]
