"""Dense state-vector reference simulator.

This is the ground-truth simulator used to verify the tensor-network
contraction engine on small circuits (Section 5 of DESIGN.md).  It is the
"traditional state vector method" the paper contrasts against: memory grows
as ``2**n`` so it is only usable below ~28 qubits, but within that range it
produces exact amplitudes to compare against.

Implementation notes (following the HPC guides in this session): the state is
kept as an ``n``-dimensional view of a contiguous complex array and gates are
applied with ``tensordot`` + ``moveaxis`` so no Python-level loops run over
amplitudes, and no copies larger than the state itself are made.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from .circuit import Circuit, CircuitError
from .gates import Gate

__all__ = ["StateVectorSimulator", "simulate_statevector", "amplitude", "sample_bitstrings"]

_DEFAULT_MAX_QUBITS = 26


class StateVectorSimulator:
    """Exact dense simulator for circuits of up to ``max_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Register width.
    max_qubits:
        Safety bound; building a state beyond it raises :class:`CircuitError`.
    dtype:
        Complex dtype of the state (``complex128`` by default; the paper's
        production runs use single precision, which is available as
        ``complex64``).
    """

    def __init__(
        self,
        num_qubits: int,
        max_qubits: int = _DEFAULT_MAX_QUBITS,
        dtype: np.dtype = np.complex128,
    ) -> None:
        if num_qubits > max_qubits:
            raise CircuitError(
                f"state vector of {num_qubits} qubits exceeds the "
                f"{max_qubits}-qubit safety bound"
            )
        self._num_qubits = num_qubits
        self._dtype = np.dtype(dtype)
        self._state = np.zeros((2,) * num_qubits, dtype=self._dtype)
        self._state[(0,) * num_qubits] = 1.0

    # ------------------------------------------------------------------
    @property
    def num_qubits(self) -> int:
        """Register width."""
        return self._num_qubits

    @property
    def state(self) -> np.ndarray:
        """The state as an ``n``-dimensional ``(2, ..., 2)`` array (a view)."""
        return self._state

    def state_vector(self) -> np.ndarray:
        """The state flattened to a length ``2**n`` vector (a copy)."""
        return self._state.reshape(-1).copy()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Reset to ``|0...0>``."""
        self._state.fill(0.0)
        self._state[(0,) * self._num_qubits] = 1.0

    def apply_gate(self, gate: Gate) -> None:
        """Apply a single gate in place."""
        tensor = np.asarray(gate.tensor(), dtype=self._dtype)
        if gate.num_qubits == 1:
            (q,) = gate.qubits
            self._state = np.tensordot(tensor, self._state, axes=([1], [q]))
            self._state = np.moveaxis(self._state, 0, q)
        elif gate.num_qubits == 2:
            q0, q1 = gate.qubits
            self._state = np.tensordot(tensor, self._state, axes=([2, 3], [q0, q1]))
            self._state = np.moveaxis(self._state, (0, 1), (q0, q1))
        else:  # pragma: no cover - the gate library only has 1/2 qubit gates
            raise CircuitError("only 1- and 2-qubit gates are supported")

    def run(self, circuit: Circuit) -> "StateVectorSimulator":
        """Apply every gate of ``circuit``; returns ``self``."""
        if circuit.num_qubits != self._num_qubits:
            raise CircuitError("circuit width does not match simulator width")
        for gate in circuit:
            self.apply_gate(gate)
        return self

    # ------------------------------------------------------------------
    def amplitude(self, bitstring: Sequence[int]) -> complex:
        """Amplitude ``<bitstring|psi>``."""
        if len(bitstring) != self._num_qubits:
            raise CircuitError("bitstring length does not match register width")
        idx = tuple(int(b) for b in bitstring)
        for b in idx:
            if b not in (0, 1):
                raise CircuitError("bitstring entries must be 0 or 1")
        return complex(self._state[idx])

    def probabilities(self) -> np.ndarray:
        """Probability of every computational basis state, length ``2**n``."""
        flat = self._state.reshape(-1)
        return (flat.real**2 + flat.imag**2).astype(np.float64)

    def norm(self) -> float:
        """2-norm of the state (should be 1 for unitary circuits)."""
        return float(np.sqrt(np.sum(np.abs(self._state) ** 2)))

    def sample(self, num_samples: int, seed: Optional[int] = None) -> np.ndarray:
        """Sample bitstrings from the output distribution.

        Returns an array of shape ``(num_samples, num_qubits)``.
        """
        rng = np.random.default_rng(seed)
        probs = self.probabilities()
        probs = probs / probs.sum()
        draws = rng.choice(probs.size, size=num_samples, p=probs)
        bits = ((draws[:, None] >> np.arange(self._num_qubits - 1, -1, -1)) & 1).astype(
            np.int8
        )
        return bits


def simulate_statevector(circuit: Circuit, dtype: np.dtype = np.complex128) -> np.ndarray:
    """Run ``circuit`` from ``|0...0>`` and return the final state vector."""
    sim = StateVectorSimulator(circuit.num_qubits, dtype=dtype)
    sim.run(circuit)
    return sim.state_vector()


def amplitude(circuit: Circuit, bitstring: Sequence[int]) -> complex:
    """Amplitude of ``bitstring`` in the output state of ``circuit``."""
    sim = StateVectorSimulator(circuit.num_qubits)
    sim.run(circuit)
    return sim.amplitude(bitstring)


def sample_bitstrings(
    circuit: Circuit, num_samples: int, seed: Optional[int] = None
) -> np.ndarray:
    """Sample measurement outcomes from ``circuit``'s output distribution."""
    sim = StateVectorSimulator(circuit.num_qubits)
    sim.run(circuit)
    return sim.sample(num_samples, seed=seed)
