"""Cost-model-ranked fusion-group selection for the fused executor.

The fused execution mode (:mod:`repro.execution.fusion`) partitions the
stem into groups bounded by a working-set rank cap — the CPU analogue of
the paper's LDM budget.  The cap fixes the group boundaries and therefore
the trade the §5 design makes: a larger cap fuses longer sub-paths (fewer
stem-tensor round-trips, fewer per-group dispatch events) at the price of
a larger resident working set.

This module ranks candidate caps with the unified cost model:

* :func:`predicted_fused_seconds` prices one cap with the roofline
  machinery of :class:`~repro.costs.model.AnalyticCostModel` — interior
  steps of a fused group drop the stem tensor's load *and* store from
  their memory traffic (only the absorbed branch still moves), which is
  exactly the §5.2 arithmetic-intensity gain;
* :func:`rank_fusion_caps` scores a candidate set and, when a
  :class:`~repro.costs.calibration.CalibratedCostModel` is supplied, adds
  its fitted per-step overhead once per *group* (the measured dispatch
  cost of each boundary) so a calibrated model can veto configurations
  whose groups are too short to amortize;
* :func:`select_fusion_cap` returns the best cap — what
  ``SlicedExecutor(..., fused="auto")`` calls.
"""

from __future__ import annotations

from typing import AbstractSet, List, Optional, Sequence, Tuple

from ..core.secondary import SecondarySlicer
from ..core.stem import extract_stem
from ..hardware.spec import SW26010PRO
from ..tensornet.contraction_tree import ContractionTree
from .model import AnalyticCostModel, CostModel

__all__ = ["predicted_fused_seconds", "rank_fusion_caps", "select_fusion_cap"]


def predicted_fused_seconds(
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    cap: Optional[int] = None,
    analytic: Optional[AnalyticCostModel] = None,
    per_group_overhead: float = 0.0,
) -> float:
    """Roofline seconds of one subtask's stem under a fusion cap.

    Each stem step's compute time comes from the analytic model's
    roofline; its memory traffic counts the absorbed branch always, but
    the running stem tensor only at group boundaries (loaded by the first
    step of a group, stored by the last) — interior steps keep it in
    scratch.  ``per_group_overhead`` seconds are added per fused group
    (the dispatch/boundary cost a calibrated model measures).
    ``cap=None`` prices the machine spec's LDM rank.
    """
    analytic = analytic if analytic is not None else AnalyticCostModel()
    sliced = frozenset(sliced)
    stem = extract_stem(tree)
    if not stem.steps:
        return 0.0
    plan = SecondarySlicer(ldm_rank=cap).plan(stem, process_sliced=sliced)
    element_bytes = analytic.element_bytes

    def elements(index_set) -> float:
        # real index sizes, not a dim-2 assumption — consistent with the
        # flops term and with AnalyticCostModel.subtask_seconds
        return 2.0 ** sum(tree.log2_index_size(ix) for ix in index_set)

    start_ix = frozenset(tree.node_indices(stem.start_node)) - sliced
    total = 0.0
    for group in plan.groups:
        for position in range(group.start, group.stop):
            step = stem.steps[position]
            flops = 8.0 * 2.0 ** tree.node_log2_flops(step.node, sliced)
            traffic = elements(step.branch_indices - sliced)
            if position == group.start:
                previous = (
                    start_ix
                    if position == 0
                    else stem.steps[position - 1].result_indices - sliced
                )
                traffic += elements(previous)
            if position == group.stop - 1:
                traffic += elements(step.result_indices - sliced)
            total += analytic._roofline_seconds(flops, element_bytes * traffic)
        total += per_group_overhead
    return total


def _analytic_of(cost_model: Optional[CostModel]) -> AnalyticCostModel:
    """The analytic model backing ``cost_model``'s roofline terms.

    A calibrated model's configured analytic *fallback* carries the
    user's hardware description (element bytes, peak, bandwidth), so the
    cap ranking prices traffic with it rather than a fresh default.
    """
    if isinstance(cost_model, AnalyticCostModel):
        return cost_model
    fallback = getattr(cost_model, "fallback", None)
    if isinstance(fallback, AnalyticCostModel):
        return fallback
    return AnalyticCostModel()


def _per_group_overhead(
    cost_model: Optional[CostModel],
    backend: Optional[str],
    tape_engine: Optional[str] = None,
    array_module: Optional[str] = None,
) -> float:
    """The calibrated per-step dispatch overhead, when one is fitted.

    The lookup is engine- and module-aware: with a non-numpy
    ``array_module`` the full ``"<backend>+<engine>+<module>"``
    coefficients are preferred, then (numpy or unfitted modules) with
    ``tape_engine="native"`` the ``"<backend>+native"`` coefficients
    (the JIT walker's per-step dispatch is far cheaper than the Python
    walker's, so one global overhead would mis-rank caps for whichever
    engine it wasn't fitted on), falling back to the plain backend key
    when no qualified calibration exists.
    """
    coefficients = getattr(cost_model, "coefficients", None)
    if not coefficients:
        return 0.0
    name = backend if backend is not None else getattr(cost_model, "default_backend", None)
    if name is None:
        return 0.0
    candidates = []
    if array_module and array_module != "numpy":
        candidates.append(f"{name}+{tape_engine or 'python'}+{array_module}")
    if tape_engine and tape_engine != "python":
        candidates.append(f"{name}+{tape_engine}")
    candidates.append(name)
    for key in candidates:
        fitted = coefficients.get(key)
        if fitted is not None:
            return float(fitted.seconds_per_step)
    return 0.0


def rank_fusion_caps(
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    candidates: Optional[Sequence[int]] = None,
    cost_model: Optional[CostModel] = None,
    backend: Optional[str] = None,
    tape_engine: Optional[str] = None,
    array_module: Optional[str] = None,
) -> List[Tuple[int, float]]:
    """Candidate caps sorted by predicted fused seconds (best first).

    The default candidate set spans the spec's LDM rank and the stem's
    own (sliced) peak rank plus two tighter settings — enough spread to
    expose the round-trips-versus-working-set trade without an exhaustive
    sweep.  Ties break toward the larger cap (longer groups, fewer
    boundaries).
    """
    sliced = frozenset(sliced)
    stem = extract_stem(tree)
    if stem.length < 2:
        return []
    ranks = [len(frozenset(tree.node_indices(stem.start_node)) - sliced)]
    ranks += [len(step.result_indices - sliced) for step in stem.steps]
    peak_rank = max(max(ranks), 1)
    if candidates is None:
        candidates = sorted(
            {
                peak_rank,
                max(peak_rank - 1, 1),
                max(peak_rank - 2, 1),
                SW26010PRO.ldm_max_rank(),
            }
        )
    analytic = _analytic_of(cost_model)
    overhead = _per_group_overhead(cost_model, backend, tape_engine, array_module)
    scored = [
        (
            cap,
            predicted_fused_seconds(
                tree, sliced, cap, analytic=analytic, per_group_overhead=overhead
            ),
        )
        for cap in candidates
    ]
    return sorted(scored, key=lambda pair: (pair[1], -pair[0]))


def select_fusion_cap(
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    candidates: Optional[Sequence[int]] = None,
    cost_model: Optional[CostModel] = None,
    backend: Optional[str] = None,
    tape_engine: Optional[str] = None,
    array_module: Optional[str] = None,
) -> Optional[int]:
    """The cost-model-ranked working-set cap, or ``None`` when nothing fuses.

    This is what ``SlicedExecutor(..., fused="auto")`` consumes: ``None``
    (a stem shorter than two steps) keeps the plan step-by-step.
    ``tape_engine`` keys the calibrated per-step overhead lookup (see
    :func:`_per_group_overhead`) so the ranking charges the dispatch cost
    of the engine that will actually walk the tape.
    """
    ranked = rank_fusion_caps(
        tree,
        sliced,
        candidates=candidates,
        cost_model=cost_model,
        backend=backend,
        tape_engine=tape_engine,
        array_module=array_module,
    )
    if not ranked:
        return None
    return ranked[0][0]
