"""Lifetime-aware selection of the auto batch group.

Keeping a sliced index live as a batch axis (instead of enumerating its
values) converts ``w(e)`` subtasks into one BLAS-batched sweep — but the
axis is then carried from its leaves all the way to the root, raising the
rank of every intermediate on that path by one.  The group selector below
closes the loop with the slice finder: it admits the largest group of
sliced indices (by swept subtask count) whose live axes keep every
intermediate at or under the memory target, using exactly the lifetime
machinery (:func:`repro.core.lifetime.slice_dependent_nodes`) the slicer
used to push those ranks down in the first place.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Tuple

from ..core.lifetime import slice_dependent_nodes
from ..tensornet.contraction_tree import ContractionTree

__all__ = ["batched_peak_rank", "select_batch_group"]


def _batch_extra_ranks(
    tree: ContractionTree,
    sliced: AbstractSet[str],
    batch: AbstractSet[str],
) -> Dict[int, int]:
    """Per-internal-node count of live batch axes under group ``batch``.

    A batch axis is live at every node whose subtree touches a leaf
    carrying it — the slice-dependent set of that single index — because
    batched execution carries the axis through to the root instead of
    summing it out.
    """
    extra = {node: 0 for node in tree.internal_nodes()}
    for ix in batch:
        for node in slice_dependent_nodes(tree, {ix}):
            if node in extra:
                extra[node] += 1
    return extra


def batched_peak_rank(
    tree: ContractionTree, sliced: AbstractSet[str], batch: AbstractSet[str]
) -> int:
    """Peak intermediate rank when ``batch ⊆ sliced`` stays live as batch axes."""
    sliced = frozenset(sliced)
    extra = _batch_extra_ranks(tree, sliced, batch)
    return max(
        sum(1 for ix in tree.node_indices(node) if ix not in sliced) + extra[node]
        for node in tree.internal_nodes()
    )


def select_batch_group(
    tree: ContractionTree,
    sliced: AbstractSet[str],
    memory_target_rank: int,
) -> Tuple[str, ...]:
    """The largest batch group that keeps intermediates under the target.

    Greedy by swept width: candidates are considered largest dimension
    first (ties by name, so the choice is deterministic) and admitted when
    every intermediate their live axis touches stays at or under
    ``memory_target_rank`` given the axes already admitted.  Intermediates
    already above the target with *no* batch axes are the base slicing's
    doing, not the batcher's; they never block admission of an axis that
    does not touch them.

    Returns the admitted group in admission order (these become the
    leading batch axes of the result).  An empty tuple means no index can
    be kept live within the target — callers should fall back to plain
    enumeration.
    """
    sliced = frozenset(sliced)
    if not sliced:
        return ()
    target = int(memory_target_rank)
    base_rank = {
        node: sum(1 for ix in tree.node_indices(node) if ix not in sliced)
        for node in tree.internal_nodes()
    }
    live = {ix: slice_dependent_nodes(tree, {ix}) for ix in sliced}
    extra = {node: 0 for node in base_rank}
    group = []
    for ix in sorted(sliced, key=lambda ix: (-tree.index_size(ix), ix)):
        touched = [node for node in live[ix] if node in base_rank]
        if all(base_rank[node] + extra[node] + 1 <= target for node in touched):
            group.append(ix)
            for node in touched:
                extra[node] += 1
    return tuple(group)
