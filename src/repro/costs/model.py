"""The unified cost model the planning layers share.

Every planning stage of the paper reasons about cost — path search ranks
candidate trees, the slice finder trades memory against recomputation, the
batch-group selector trades rank against BLAS batching, and the §6.2
projections turn per-subtask time into machine-scale wall time.  Before
this module each of those layers carried its own estimator (raw flop
counts in :mod:`repro.paths.optimizer`, lifetime heuristics in
:mod:`repro.core.slice_finder`, a size tie-break in
:mod:`repro.execution.sliced`, homogeneous subtask times in
:mod:`repro.execution.scaling`).  :class:`CostModel` is the one interface
they now consume:

* :meth:`CostModel.subtask_seconds` — predicted wall time of one slicing
  subtask (one full execution of the compiled plan) on a given execution
  backend;
* :meth:`CostModel.tree_cost` — the scalar the tree search minimizes
  (predicted seconds of the unsliced contraction);
* :meth:`CostModel.select_batch_group` — the lifetime-aware auto
  batch-group choice: the largest group of sliced indices whose live batch
  axes keep every intermediate under the memory target.

:class:`AnalyticCostModel` implements the protocol from first principles:
per contraction step it takes the flops and the memory traffic implied by
the contraction tree and applies the roofline of
:class:`~repro.hardware.spec.SunwaySpec` (compute-bound above the ridge
point, bandwidth-bound below).  It needs no measurements and is the
default whenever no calibration data exists.
:class:`~repro.costs.calibration.CalibratedCostModel` fits the same
interface to per-backend timings measured by the execution backends.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Optional, Tuple

from ..hardware.spec import (
    COMPLEX64_BYTES,
    GENERIC_GPU,
    SW26010PRO,
    DeviceSpec,
    SunwaySpec,
)
from ..tensornet.contraction_tree import ContractionTree
from .batching import select_batch_group

__all__ = ["AnalyticCostModel", "CostModel", "CostModelError"]


class CostModelError(ValueError):
    """Raised when a cost model cannot produce the requested prediction."""


class CostModel:
    """Protocol for predicted-time models over contraction trees.

    Subclasses implement :meth:`subtask_seconds`; every other prediction
    derives from it.  Predictions are in seconds so they compose directly
    with :class:`~repro.execution.scaling.ProcessScheduler` and the
    measured timings of :class:`~repro.execution.plan.PlanStats`.

    Parameters
    ----------
    memory_target_rank:
        Optional memory target used by :meth:`select_batch_group`; when
        set, ``batch_indices="auto"`` on the sliced executor becomes
        lifetime-aware group selection against this bound.
    """

    def __init__(self, memory_target_rank: Optional[int] = None) -> None:
        self.memory_target_rank = (
            int(memory_target_rank) if memory_target_rank is not None else None
        )

    # ------------------------------------------------------------------
    def subtask_seconds(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
    ) -> float:
        """Predicted wall time of one subtask under ``sliced`` on ``backend``."""
        raise NotImplementedError

    def tree_cost(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
    ) -> float:
        """The scalar the tree search minimizes: per-subtask predicted seconds."""
        return self.subtask_seconds(tree, sliced, backend=backend)

    def total_seconds(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
    ) -> float:
        """Predicted serial time over all ``prod w(e)`` subtasks."""
        return tree.num_subtasks(sliced) * self.subtask_seconds(
            tree, sliced, backend=backend
        )

    def timeout_budget(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
        subtasks: int = 1,
        safety: float = 20.0,
        floor: float = 1.0,
    ) -> float:
        """Wall-time budget before ``subtasks`` subtasks count as stuck.

        ``safety`` times the predicted seconds, floored at ``floor`` — the
        bridge between the calibrated predictions and the per-chunk
        timeouts of :class:`~repro.execution.resilience.FaultPolicy` (see
        :meth:`FaultPolicy.derived_from
        <repro.execution.resilience.FaultPolicy.derived_from>`).  Raises
        :exc:`CostModelError` when the prediction itself is unavailable or
        non-finite, so callers can fall back to running timeout-free.
        """
        if safety <= 0:
            raise ValueError("safety multiplier must be positive")
        if subtasks < 1:
            raise ValueError("subtasks must be >= 1")
        seconds = self.subtask_seconds(tree, sliced, backend=backend)
        if not math.isfinite(seconds) or seconds < 0:
            raise CostModelError(
                f"predicted subtask seconds are unusable for a timeout "
                f"budget: {seconds!r}"
            )
        return max(float(floor), safety * subtasks * seconds)

    def select_batch_group(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str],
        memory_target_rank: Optional[int] = None,
    ) -> Tuple[str, ...]:
        """Lifetime-aware auto batch group under this model's memory target.

        See :func:`repro.costs.batching.select_batch_group`; the target
        defaults to the model's own ``memory_target_rank``.
        """
        target = (
            memory_target_rank
            if memory_target_rank is not None
            else self.memory_target_rank
        )
        if target is None:
            raise CostModelError(
                "select_batch_group needs a memory target; pass "
                "memory_target_rank= here or on the model"
            )
        return select_batch_group(tree, sliced, target)

    @staticmethod
    def subtask_flops(
        tree: ContractionTree, sliced: AbstractSet[str] = frozenset()
    ) -> float:
        """Real flops of one subtask (8 per complex multiply-add, Eq. 1)."""
        return 8.0 * tree.contraction_cost(frozenset(sliced))

    @staticmethod
    def dependent_subtask_flops(
        tree: ContractionTree, sliced: AbstractSet[str] = frozenset()
    ) -> float:
        """Real flops of the *slice-dependent* work of one subtask.

        With the invariant cache warm (the executors' steady state, and
        what the per-subtask wall-time samples measure), each subtask
        recontracts only the nodes in the slice-dependent set; the
        invariant remainder was computed once up front.  An empty slicing
        set means the single subtask runs everything, so the full Eq. 1
        cost is returned.
        """
        sliced = frozenset(sliced)
        if not sliced:
            return CostModel.subtask_flops(tree)
        from ..core.lifetime import slice_dependent_nodes

        dependent = slice_dependent_nodes(tree, sliced)
        return 8.0 * sum(
            2.0 ** tree.node_log2_flops(node, sliced)
            for node in tree.internal_nodes()
            if node in dependent
        )

    @staticmethod
    def dependent_step_count(
        tree: ContractionTree, sliced: AbstractSet[str] = frozenset()
    ) -> int:
        """Pair contractions per subtask on the cache-warm path."""
        sliced = frozenset(sliced)
        if not sliced:
            return len(tree.internal_nodes())
        from ..core.lifetime import slice_dependent_nodes

        dependent = slice_dependent_nodes(tree, sliced)
        return sum(1 for node in tree.internal_nodes() if node in dependent)

    def subtask_work_flops(
        self, tree: ContractionTree, sliced: AbstractSet[str] = frozenset()
    ) -> float:
        """Flops of the work this model's :meth:`subtask_seconds` covers.

        Sustained-rate bookkeeping must divide flops by the time of the
        *same* work: the analytic model times a full uncached subtask
        (Eq. 1 flops), while the calibrated model times the cache-warm
        dependent portion — each overrides accordingly.
        """
        return self.subtask_flops(tree, sliced)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(memory_target_rank={self.memory_target_rank})"


class AnalyticCostModel(CostModel):
    """Roofline-based predictions derived from the machine spec alone.

    Each contraction step reads both operands and writes its output; its
    time is modelled as the roofline maximum of the compute time (flops
    over the achievable GEMM rate) and the memory time (traffic over the
    DMA bandwidth), the same split §5.1 uses to argue TNC is bandwidth
    bound for narrow GEMMs.  The backend argument is normally accepted for
    interface uniformity only — the analytic model describes the hardware,
    not the scheduling substrate.  The one exception is a *module-qualified*
    backend name (``"<backend>+<engine>+<module>"`` with a non-numpy third
    component, the key shape :mod:`repro.costs.calibration` produces for
    device array modules): those subtasks are priced against
    ``device_spec``'s roofline plus the per-subtask host↔device staging
    the seam's host-staging contract implies (every leaf uploaded, the
    root downloaded — see :mod:`repro.execution.array_module`), so device
    execution has a sensible prediction before any calibration exists.

    Parameters
    ----------
    spec:
        Machine description supplying the peak rate and bandwidth.
    element_bytes:
        Bytes per tensor element (single-precision complex by default).
    memory_target_rank:
        Optional memory target for :meth:`CostModel.select_batch_group`.
    device_spec:
        Accelerator description used when the backend name is qualified
        with a non-numpy array module (defaults to
        :data:`~repro.hardware.spec.GENERIC_GPU`).
    """

    def __init__(
        self,
        spec: SunwaySpec = SW26010PRO,
        element_bytes: int = COMPLEX64_BYTES,
        memory_target_rank: Optional[int] = None,
        device_spec: Optional[DeviceSpec] = None,
    ) -> None:
        super().__init__(memory_target_rank)
        self.spec = spec
        self.element_bytes = int(element_bytes)
        self.device_spec = device_spec if device_spec is not None else GENERIC_GPU

    # ------------------------------------------------------------------
    @property
    def peak_flops(self) -> float:
        """Achievable compute rate of one node (peak × GEMM efficiency)."""
        return self.spec.peak_flops_per_node * self.spec.gemm_peak_fraction

    @property
    def memory_bandwidth(self) -> float:
        """Aggregate DMA bandwidth of one node."""
        return self.spec.dma_bandwidth * self.spec.cgs_per_node

    def _roofline_seconds(self, flops: float, traffic_bytes: float) -> float:
        """Roofline maximum of compute time and memory time."""
        return max(flops / self.peak_flops, traffic_bytes / self.memory_bandwidth)

    def _device_roofline_seconds(self, flops: float, traffic_bytes: float) -> float:
        """Roofline maximum on the accelerator described by ``device_spec``."""
        return max(
            flops / self.device_spec.effective_flops,
            traffic_bytes / self.device_spec.hbm_bandwidth,
        )

    @staticmethod
    def _module_of_backend(backend: Optional[str]) -> Optional[str]:
        """The non-numpy array module a qualified backend name carries.

        Calibration keys grow ``"+<engine>+<module>"`` components for
        device modules (see :class:`~repro.costs.calibration
        .CalibrationRecord`); a plain or engine-qualified name, or a
        numpy-qualified one, means host execution and returns ``None``.
        """
        if not backend:
            return None
        parts = backend.split("+")
        if len(parts) > 2 and parts[2] and parts[2] != "numpy":
            return parts[2]
        return None

    def staging_seconds(
        self, tree: ContractionTree, sliced: AbstractSet[str] = frozenset()
    ) -> float:
        """Per-subtask host↔device staging time under the seam's contract.

        Every leaf tensor is uploaded (``from_host`` in ``_load_leaf``)
        and the root is downloaded (``to_host``) once per subtask; all
        intermediates stay device-resident.
        """
        sliced = frozenset(sliced)
        elements = 2.0 ** tree.node_log2_size(tree.root, sliced)
        for leaf in tree.leaves_under(tree.root):
            elements += 2.0 ** tree.node_log2_size(leaf, sliced)
        return self.device_spec.staging_seconds(self.element_bytes * elements)

    def step_seconds(self, log2_flops: float, log2_traffic_elements: float) -> float:
        """Roofline time of one contraction step.

        Parameters
        ----------
        log2_flops:
            log2 of the step's scalar multiply-adds (Eq. 1 term).
        log2_traffic_elements:
            log2 of the elements moved (both operands plus the output).
        """
        return self._roofline_seconds(
            8.0 * 2.0**log2_flops, self.element_bytes * 2.0**log2_traffic_elements
        )

    def subtask_seconds(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
    ) -> float:
        sliced = frozenset(sliced)
        on_device = self._module_of_backend(backend) is not None
        step_seconds = (
            self._device_roofline_seconds if on_device else self._roofline_seconds
        )
        total = 0.0
        for node in tree.internal_nodes():
            a, b = tree.children(node)  # type: ignore[misc]
            traffic = (
                2.0 ** tree.node_log2_size(a, sliced)
                + 2.0 ** tree.node_log2_size(b, sliced)
                + 2.0 ** tree.node_log2_size(node, sliced)
            )
            total += step_seconds(
                8.0 * 2.0 ** tree.node_log2_flops(node, sliced),
                self.element_bytes * traffic,
            )
        if on_device:
            total += self.staging_seconds(tree, sliced)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AnalyticCostModel(peak={self.peak_flops:.3g} flop/s, "
            f"bw={self.memory_bandwidth:.3g} B/s, "
            f"memory_target_rank={self.memory_target_rank})"
        )
