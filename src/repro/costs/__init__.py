"""Unified calibrated cost model shared by every planning layer.

One interface — :class:`CostModel` — now feeds the stages that used to
carry independent estimators:

* the path search (:class:`~repro.paths.optimizer.HyperOptimizer`) scores
  candidate trees with :meth:`CostModel.tree_cost`;
* the sliced executor's ``batch_indices="auto"`` becomes lifetime-aware
  group selection (:func:`select_batch_group`) against the model's memory
  target;
* the fused executor's ``fused="auto"`` ranks candidate working-set caps
  by predicted seconds (:func:`select_fusion_cap`), with a calibrated
  model's per-step overhead charged per fused group;
* the §6.2 scaling projections
  (:class:`~repro.execution.scaling.ProcessScheduler`,
  :func:`~repro.execution.scaling.strong_scaling` /
  :func:`~repro.execution.scaling.weak_scaling`,
  :class:`~repro.execution.scaling.HeadlineProjection`) derive per-backend
  subtask seconds from the model instead of assuming homogeneous times;
* :class:`~repro.pipeline.SimulationPlanner` threads one model through
  all of the above and reports predicted-vs-measured cost per stage.

Two implementations: :class:`AnalyticCostModel` (roofline over the
machine spec; no measurements needed) and :class:`CalibratedCostModel`
(per-backend coefficients fitted from the wall times the execution
backends record into :class:`~repro.execution.plan.PlanStats`, persisted
through the bench JSON).  Supplying no model anywhere keeps every default
bit-identical to the uncalibrated behaviour.
"""

from .batching import batched_peak_rank, select_batch_group
from .calibration import (
    BackendCoefficients,
    CalibratedCostModel,
    CalibrationRecord,
    calibration_payload,
)
from .fusion import predicted_fused_seconds, rank_fusion_caps, select_fusion_cap
from .model import AnalyticCostModel, CostModel, CostModelError

__all__ = [
    "AnalyticCostModel",
    "BackendCoefficients",
    "CalibratedCostModel",
    "CalibrationRecord",
    "CostModel",
    "CostModelError",
    "batched_peak_rank",
    "calibration_payload",
    "predicted_fused_seconds",
    "rank_fusion_caps",
    "select_batch_group",
    "select_fusion_cap",
]
