"""Measurement-calibrated cost model.

The execution backends instrument every real run: each
:meth:`~repro.execution.plan.CompiledPlan.execute` call stamps its wall
time into :class:`~repro.execution.plan.PlanStats` (``subtask_seconds``
per subtask, ``stage_seconds`` per stage), and worker-local stats are
merged back into the caller's.  This module turns those measurements into
a :class:`~repro.costs.model.CostModel`:

* :class:`CalibrationRecord` packages one backend's timing samples for
  one workload (per-subtask seconds plus the workload's flops and step
  count) — built directly from a :class:`PlanStats`
  (:meth:`CalibrationRecord.from_stats`) or parsed from the benchmark
  JSON;
* :class:`CalibratedCostModel` fits per-backend coefficients
  ``seconds ≈ seconds_per_flop · flops + seconds_per_step · steps``
  (a two-term linear model: a throughput term for the GEMM work and an
  overhead term for per-step dispatch) and predicts subtask seconds for
  any tree/slicing pair on any measured backend;
* :func:`calibration_payload` / :meth:`CalibratedCostModel.from_bench_json`
  round-trip the measurements through
  ``benchmarks/results/BENCH_exec_plan.json`` so CI runs produce a real
  calibration input and the §6.2 projections become self-calibrating.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    AbstractSet,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from .model import CostModel, CostModelError

__all__ = [
    "BackendCoefficients",
    "CalibratedCostModel",
    "CalibrationRecord",
    "calibration_payload",
]

#: Cap on per-subtask samples kept in the bench JSON (full stats can hold
#: thousands; the fit needs far fewer).
MAX_SAMPLES_PERSISTED = 64


@dataclass(frozen=True)
class CalibrationRecord:
    """Timing samples of one backend on one workload.

    Attributes
    ----------
    backend:
        Backend name (``"serial"``, ``"threads"``, ``"process-pool"`` —
        the :attr:`~repro.execution.backend.ExecutionBackend.name` of the
        substrate that produced the timings).
    subtask_flops:
        Real flops of the work each timing sample covers.  The samples
        measure the cache-warm path (invariant intermediates precomputed,
        only slice-dependent nodes recontracted), so this is the
        *dependent* per-subtask cost
        (:meth:`~repro.costs.model.CostModel.dependent_subtask_flops`),
        not the full Eq. 1 cost — pairing full-tree flops with
        cache-warm seconds would bias the fitted throughput by the
        workload's invariant fraction.
    num_steps:
        Pair contractions per cache-warm subtask.
    seconds:
        Measured per-subtask wall times.
    tape_engine:
        Which tape interpreter produced the samples — ``"python"`` (the
        default, also covering non-fused runs) or ``"native"`` (the
        numba-JIT program of :mod:`repro.execution.tape`).  Engines have
        very different per-step dispatch costs, so each fits its own
        coefficient key (see :attr:`key`) instead of polluting one
        global per-step overhead.
    array_module:
        The execution substrate that produced the samples (``"numpy"``
        the default, ``"torch"``, ``"cupy"``, ...).  Non-numpy modules
        stage leaves/roots across the host boundary *inside* the timed
        per-subtask window (leaf loads happen after ``execute`` starts
        its timer), so their fitted coefficients absorb the transfer
        seconds — which is exactly why each module fits its own
        ``"<backend>+<engine>+<module>"`` key instead of polluting the
        host coefficients.
    comms_seconds_per_subtask:
        Mean per-subtask communication overhead measured by the
        distributed coordinator (chunk round-trip wall time not covered
        by the workers' own compute samples: serialization, transfer,
        dispatch).  Zero for the in-process backends, where nothing
        crosses a wire — their samples already cover all costs.
    payload_bytes_per_subtask:
        Mean steady-state bytes shipped per subtask (chunk frames out
        plus contribution frames back; one-time broadcasts excluded).
        Diagnostic companion of the comms term — lets scaling analyses
        relate overhead seconds to wire bytes.
    """

    backend: str
    subtask_flops: float
    num_steps: int
    seconds: Tuple[float, ...]
    tape_engine: str = "python"
    array_module: str = "numpy"
    comms_seconds_per_subtask: float = 0.0
    payload_bytes_per_subtask: float = 0.0

    def __post_init__(self) -> None:
        if not self.seconds:
            raise CostModelError("a calibration record needs at least one sample")
        if self.subtask_flops <= 0:
            raise CostModelError("subtask_flops must be positive")

    @property
    def mean_seconds(self) -> float:
        """Mean measured subtask time."""
        return float(np.mean(self.seconds))

    @property
    def key(self) -> str:
        """The coefficient key these samples fit.

        The plain backend name for the Python walker on numpy (keeping
        every pre-tape calibration artifact valid),
        ``"<backend>+<engine>"`` for the native engine — e.g.
        ``"serial+native"`` — and the full
        ``"<backend>+<engine>+<module>"`` for non-numpy substrates —
        e.g. ``"serial+python+torch"``.
        """
        if self.array_module not in ("numpy", "", None):
            engine = self.tape_engine or "python"
            return f"{self.backend}+{engine}+{self.array_module}"
        if self.tape_engine in ("python", "", None):
            return self.backend
        return f"{self.backend}+{self.tape_engine}"

    @classmethod
    def from_stats(
        cls,
        stats: "PlanStats",  # noqa: F821 - import cycle; duck-typed
        tree: ContractionTree,
        sliced: AbstractSet[str],
        backend: str,
    ) -> "CalibrationRecord":
        """Build a record from the stats of a real run.

        ``tree``/``sliced`` must describe the workload the stats were
        collected on (they supply the flops and step count the samples are
        regressed against).  Batched-sweep stats are rejected: one of
        their samples covers many subtasks, so they are not per-subtask
        measurements.

        The flops/steps pairing follows what the samples measured: a
        cache-warm run (``stats.cache_hits > 0`` — every subtask was
        served frontier intermediates) timed only the slice-dependent
        work, while an uncached run (``cache_invariant=False``) timed the
        full Eq. 1 work; mislabelling either would bias the fitted
        throughput by the workload's invariant fraction.
        """
        if not stats.subtask_seconds:
            raise CostModelError(
                "stats carry no subtask timings; run the workload first"
            )
        if getattr(stats, "batched_executions", 0):
            raise CostModelError(
                "stats include batched sweeps; calibrate from non-batched runs"
            )
        if stats.cache_hits > 0:
            subtask_flops = CostModel.dependent_subtask_flops(tree, sliced)
            num_steps = CostModel.dependent_step_count(tree, sliced)
        else:
            subtask_flops = CostModel.subtask_flops(tree, sliced)
            num_steps = len(tree.internal_nodes())
        timed = getattr(stats, "timed_subtasks", 0) or len(stats.subtask_seconds)
        comms_seconds = float(getattr(stats, "comms_seconds", 0.0))
        comms_bytes = float(getattr(stats, "comms_bytes", 0))
        return cls(
            backend=backend,
            subtask_flops=subtask_flops,
            num_steps=num_steps,
            seconds=tuple(stats.subtask_seconds),
            tape_engine=getattr(stats, "tape_engine", None) or "python",
            array_module=getattr(stats, "array_module", None) or "numpy",
            comms_seconds_per_subtask=comms_seconds / timed if timed else 0.0,
            payload_bytes_per_subtask=comms_bytes / timed if timed else 0.0,
        )


@dataclass(frozen=True)
class BackendCoefficients:
    """Fitted per-backend coefficients of the linear model.

    Two regressed terms (throughput per flop, dispatch per step) plus an
    additive per-subtask *communication* constant measured — not fitted —
    from the distributed coordinator's round-trip accounting.  The
    constant is 0.0 for in-process backends, keeping their predictions
    exactly the pre-distributed two-term values.
    """

    seconds_per_flop: float
    seconds_per_step: float
    samples: int
    comms_seconds_per_subtask: float = 0.0
    payload_bytes_per_subtask: float = 0.0

    def predict(self, flops: float, num_steps: int) -> float:
        """Predicted subtask seconds at ``flops`` / ``num_steps``."""
        return (
            self.seconds_per_flop * flops
            + self.seconds_per_step * num_steps
            + self.comms_seconds_per_subtask
        )


def _fit_backend(records: List[CalibrationRecord]) -> BackendCoefficients:
    """Least-squares fit of one backend's samples, never negative.

    With a single workload the two regressors are collinear, so the fit
    degenerates to a through-origin throughput estimate (all of the time
    is attributed to the flops term); with two or more distinct workloads
    the per-step overhead becomes identifiable.
    """
    rows: List[Tuple[float, float]] = []
    times: List[float] = []
    for record in records:
        for sample in record.seconds:
            rows.append((record.subtask_flops, float(record.num_steps)))
            times.append(sample)
    a = np.asarray(rows, dtype=np.float64)
    y = np.asarray(times, dtype=np.float64)
    # the comms terms are measured constants, not regressors: average them
    # across records weighted by how many samples each contributed
    comms_seconds = float(
        sum(r.comms_seconds_per_subtask * len(r.seconds) for r in records) / len(times)
    )
    payload_bytes = float(
        sum(r.payload_bytes_per_subtask * len(r.seconds) for r in records) / len(times)
    )
    if len({row for row in rows}) >= 2:
        coefficients, *_ = np.linalg.lstsq(a, y, rcond=None)
        per_flop, per_step = (float(c) for c in coefficients)
        if per_flop >= 0 and per_step >= 0:
            return BackendCoefficients(
                per_flop, per_step, len(times), comms_seconds, payload_bytes
            )
    # degenerate (or sign-flipped) fit: attribute everything to throughput
    per_flop = float(np.sum(y * a[:, 0]) / np.sum(a[:, 0] ** 2))
    return BackendCoefficients(
        max(per_flop, 0.0), 0.0, len(times), comms_seconds, payload_bytes
    )


class CalibratedCostModel(CostModel):
    """Per-backend subtask-time predictions fitted from measured runs.

    Parameters
    ----------
    coefficients:
        Backend name → fitted :class:`BackendCoefficients`.
    default_backend:
        Backend assumed when a prediction names none; defaults to the
        first fitted backend (insertion order).
    fallback:
        Optional model consulted for backends with no measurements (an
        :class:`~repro.costs.model.AnalyticCostModel`, typically).
        Without one, predicting for an unmeasured backend raises
        :class:`~repro.costs.model.CostModelError`.
    memory_target_rank:
        Optional memory target for the lifetime-aware auto batch group.
    """

    def __init__(
        self,
        coefficients: Mapping[str, BackendCoefficients],
        default_backend: Optional[str] = None,
        fallback: Optional[CostModel] = None,
        memory_target_rank: Optional[int] = None,
    ) -> None:
        super().__init__(memory_target_rank)
        if not coefficients:
            raise CostModelError("a calibrated model needs at least one backend")
        self.coefficients: Dict[str, BackendCoefficients] = dict(coefficients)
        if default_backend is None:
            default_backend = next(iter(self.coefficients))
        if default_backend not in self.coefficients:
            raise CostModelError(
                f"default backend {default_backend!r} has no fitted coefficients"
            )
        self.default_backend = default_backend
        self.fallback = fallback

    # ------------------------------------------------------------------
    @property
    def backends(self) -> Tuple[str, ...]:
        """Backends with fitted coefficients."""
        return tuple(self.coefficients)

    def subtask_seconds(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
    ) -> float:
        """Predicted cache-warm per-subtask seconds on ``backend``.

        The coefficients were regressed against slice-dependent work (the
        measured samples exclude the one-off invariant warm-up), so the
        prediction applies the same dependent-only flops/steps of the
        target workload — a tree whose subtasks are mostly cache-served
        is predicted cheap even if its full Eq. 1 cost is large.
        """
        name = backend if backend is not None else self.default_backend
        fitted = self.coefficients.get(name)
        # progressive fallback for qualified keys: drop trailing
        # components ("backend+engine+module" → "backend+engine" →
        # "backend") until a fitted key matches — the plain backend
        # coefficients are the closest measured substitute
        probe = name
        while fitted is None and "+" in probe:
            probe = probe.rpartition("+")[0]
            fitted = self.coefficients.get(probe)
        if fitted is None:
            if self.fallback is not None:
                return self.fallback.subtask_seconds(tree, sliced, backend=backend)
            raise CostModelError(
                f"no calibration for backend {name!r} "
                f"(measured: {sorted(self.coefficients)}) and no fallback model"
            )
        sliced = frozenset(sliced)
        return fitted.predict(
            self.dependent_subtask_flops(tree, sliced),
            self.dependent_step_count(tree, sliced),
        )

    def subtask_work_flops(
        self, tree: ContractionTree, sliced: AbstractSet[str] = frozenset()
    ) -> float:
        """The dependent (cache-warm) flops this model's seconds cover."""
        return self.dependent_subtask_flops(tree, sliced)

    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        records: Iterable[CalibrationRecord],
        default_backend: Optional[str] = None,
        fallback: Optional[CostModel] = None,
        memory_target_rank: Optional[int] = None,
    ) -> "CalibratedCostModel":
        """Fit per-backend coefficients from calibration records.

        Records are grouped by :attr:`CalibrationRecord.key`, so samples
        from the native tape engine fit a separate
        ``"<backend>+native"`` coefficient set instead of being averaged
        into the Python walker's.
        """
        by_backend: Dict[str, List[CalibrationRecord]] = {}
        for record in records:
            by_backend.setdefault(record.key, []).append(record)
        if not by_backend:
            raise CostModelError("no calibration records to fit")
        coefficients = {
            name: _fit_backend(backend_records)
            for name, backend_records in by_backend.items()
        }
        return cls(
            coefficients,
            default_backend=default_backend,
            fallback=fallback,
            memory_target_rank=memory_target_rank,
        )

    @classmethod
    def from_bench_json(
        cls,
        source: Union[str, Path, Mapping],
        default_backend: Optional[str] = None,
        fallback: Optional[CostModel] = None,
        memory_target_rank: Optional[int] = None,
    ) -> "CalibratedCostModel":
        """Fit from the ``calibration`` section of the bench JSON.

        ``source`` is a path to ``BENCH_exec_plan.json`` (or any mapping
        with the same shape); the section is written by
        :func:`calibration_payload` from the quick-bench run in CI.
        """
        if isinstance(source, (str, Path)):
            payload = json.loads(Path(source).read_text())
        else:
            payload = dict(source)
        calibration = payload.get("calibration", payload)
        backends = calibration.get("backends")
        if not backends:
            raise CostModelError("no 'calibration' backends in the bench JSON")
        subtask_flops = float(calibration["subtask_flops"])
        num_steps = int(calibration["num_steps"])
        records = []
        for name, entry in backends.items():
            if not entry.get("subtask_seconds"):
                continue
            # keys may be engine- and module-qualified ("serial+native",
            # "serial+python+torch"); the entry's own tape_engine /
            # array_module fields win when both are present
            parts = name.split("+")
            base = parts[0]
            key_engine = parts[1] if len(parts) > 1 else ""
            key_module = parts[2] if len(parts) > 2 else ""
            records.append(
                CalibrationRecord(
                    backend=base,
                    subtask_flops=subtask_flops,
                    num_steps=num_steps,
                    seconds=tuple(entry["subtask_seconds"]),
                    tape_engine=entry.get("tape_engine") or key_engine or "python",
                    array_module=entry.get("array_module") or key_module or "numpy",
                    comms_seconds_per_subtask=float(
                        entry.get("comms_seconds_per_subtask", 0.0)
                    ),
                    payload_bytes_per_subtask=float(
                        entry.get("payload_bytes_per_subtask", 0.0)
                    ),
                )
            )
        return cls.fit(
            records,
            default_backend=default_backend,
            fallback=fallback,
            memory_target_rank=memory_target_rank,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CalibratedCostModel(backends={sorted(self.coefficients)}, "
            f"default={self.default_backend!r})"
        )


def calibration_payload(
    stats_by_backend: Mapping[str, "PlanStats"],  # noqa: F821 - duck-typed
    tree: ContractionTree,
    sliced: AbstractSet[str],
) -> Dict:
    """JSON-serializable calibration section for the bench results file.

    One entry per backend: the (truncated) per-subtask samples plus the
    per-stage wall times, alongside the workload's *dependent* (cache-warm)
    flops and step count — the work the samples actually cover, and
    exactly what :meth:`CalibratedCostModel.from_bench_json` consumes.
    Batched-sweep stats are skipped for the same reason
    :meth:`CalibrationRecord.from_stats` rejects them, and so are
    uncached runs (their samples time the full Eq. 1 work, which the
    section's single dependent-flops label cannot represent).
    """
    dependent_flops = CostModel.dependent_subtask_flops(tree, sliced)
    full_flops = CostModel.subtask_flops(tree, sliced)
    backends: Dict[str, Dict] = {}
    for name, stats in stats_by_backend.items():
        samples = list(stats.subtask_seconds)
        if not samples or getattr(stats, "batched_executions", 0):
            continue
        if stats.cache_hits == 0 and dependent_flops != full_flops:
            # uncached run on a workload with an invariant fraction:
            # mislabelled samples would bias the fit
            continue
        timed = getattr(stats, "timed_subtasks", 0) or len(samples)
        comms_seconds = float(getattr(stats, "comms_seconds", 0.0))
        comms_bytes = float(getattr(stats, "comms_bytes", 0))
        backends[name] = {
            "subtask_seconds": samples[:MAX_SAMPLES_PERSISTED],
            # exact aggregates — the sample list itself is bounded
            "subtask_seconds_mean": float(stats.mean_subtask_seconds),
            "subtask_seconds_count": int(timed),
            "stage_seconds": dict(stats.stage_seconds),
            "tape_engine": getattr(stats, "tape_engine", None) or "python",
            "array_module": getattr(stats, "array_module", None) or "numpy",
            "comms_seconds_per_subtask": comms_seconds / timed if timed else 0.0,
            "payload_bytes_per_subtask": comms_bytes / timed if timed else 0.0,
        }
    return {
        "subtask_flops": dependent_flops,
        "num_steps": CostModel.dependent_step_count(tree, sliced),
        "backends": backends,
    }
