"""cotengra-style greedy slicing baseline.

cotengra's built-in ``SliceFinder`` repeatedly chooses the single dimension
whose slicing causes the smallest increase of the total contraction cost,
until the memory demand is satisfied.  The paper uses this strategy as its
baseline in Fig. 10 (slicing-set size and overhead comparison over 400
contraction paths).  This module reimplements it faithfully on top of the
shared :class:`~repro.core.slicing.SlicingCostModel`:

* at every step the candidate edges are the unsliced indices carried by the
  currently-largest intermediates (slicing anything else cannot reduce the
  peak memory),
* among those, the edge minimising the resulting total cost (equivalently,
  the overhead) is chosen — a purely greedy, one-step-lookahead rule that
  is exactly the local-minimum-prone behaviour Theorem 1 improves on,
* optionally, a limited number of restarts with randomised tie-breaking
  emulate cotengra's repeated trials.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from .slicing import SlicingCostModel, SlicingResult

__all__ = ["GreedySliceBaseline", "cotengra_style_slices"]


class GreedySliceBaseline:
    """Greedy ("cotengra-style") slicing-set search.

    Parameters
    ----------
    target_rank:
        Target maximum intermediate rank ``t``.
    restarts:
        Number of randomised restarts; the best (lowest-cost) run wins.
        With ``restarts=1`` the search is fully deterministic.
    temperature:
        Relative amount of noise added to the per-candidate scores on
        restarts beyond the first, emulating cotengra's trial randomness.
    seed:
        PRNG seed.
    """

    def __init__(
        self,
        target_rank: int,
        restarts: int = 1,
        temperature: float = 0.02,
        seed: Optional[int] = None,
    ) -> None:
        if target_rank < 1:
            raise ValueError("target_rank must be at least 1")
        if restarts < 1:
            raise ValueError("restarts must be at least 1")
        self.target_rank = int(target_rank)
        self.restarts = int(restarts)
        self.temperature = float(temperature)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def find(
        self,
        tree: ContractionTree,
        cost_model: Optional[SlicingCostModel] = None,
    ) -> SlicingResult:
        """Run the greedy search and return the best slicing found."""
        if cost_model is None:
            cost_model = SlicingCostModel(tree)
        best: Optional[FrozenSet[str]] = None
        best_cost = math.inf
        for restart in range(self.restarts):
            noisy = restart > 0
            sliced = self._single_run(cost_model, noisy)
            cost = cost_model.total_cost(sliced)
            if cost < best_cost:
                best_cost = cost
                best = sliced
        assert best is not None
        return cost_model.result(best, self.target_rank, method="greedy-baseline")

    # ------------------------------------------------------------------
    def _single_run(self, model: SlicingCostModel, noisy: bool) -> FrozenSet[str]:
        sliced: Set[str] = set()
        guard = 0
        max_steps = len(model.indices)
        while not model.satisfies_target(sliced, self.target_rank):
            guard += 1
            if guard > max_steps:  # pragma: no cover - defensive
                break
            candidates = self._candidates(model, sliced)
            if not candidates:  # pragma: no cover - defensive
                break
            best_edge: Optional[str] = None
            best_score = math.inf
            for edge in candidates:
                score = model.total_cost(sliced | {edge})
                if noisy and self.temperature > 0:
                    score *= 1.0 + self.temperature * self._rng.standard_normal()
                if score < best_score:
                    best_score = score
                    best_edge = edge
            assert best_edge is not None
            sliced.add(best_edge)
        return frozenset(sliced)

    def _candidates(self, model: SlicingCostModel, sliced: Set[str]) -> List[str]:
        """Unsliced edges carried by the currently-largest intermediates."""
        max_rank = model.max_rank(sliced)
        out: Set[str] = set()
        for node in model.nodes:
            if model.node_result_rank(node, sliced) == max_rank:
                out.update(
                    ix for ix in model.tree.node_indices(node) if ix not in sliced
                )
        return sorted(out)


def cotengra_style_slices(
    tree: ContractionTree,
    target_rank: int,
    restarts: int = 1,
    seed: Optional[int] = None,
) -> SlicingResult:
    """One-shot greedy-baseline slicing for ``tree``."""
    return GreedySliceBaseline(
        target_rank=target_rank, restarts=restarts, seed=seed
    ).find(tree)
