"""Stem extraction.

The paper (following Huang et al.'s observation) defines the *stem* as the
most computationally intensive path of the contraction tree: a chain of
contractions in which one big tensor sequentially absorbs smaller ones, and
which carries ~99 % of the total flops for Sycamore-class networks.  All the
slicing machinery operates on the stem:

* branches (the cheap subtrees hanging off the stem) are *pre-contracted*
  and thereafter treated as single effective tensors,
* after this preconditioning the stem itself is a new (caterpillar-shaped)
  contraction tree, on which lifetimes are computed and Algorithm 1 runs.

:class:`Stem` captures the ordered list of stem steps plus the mapping back
to the original tree, and can re-express itself as a
:class:`~repro.tensornet.contraction_tree.ContractionTree` for reuse of the
cost model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..tensornet.contraction_tree import ContractionTree

__all__ = ["Stem", "StemStep", "extract_stem", "stem_profile", "stem_slot_schedule"]


@dataclass(frozen=True)
class StemStep:
    """One contraction along the stem.

    Attributes
    ----------
    node:
        Internal node id (in the original tree) performing this step.
    stem_child:
        Child lying on the stem (the running big tensor absorbed so far).
    branch_child:
        The other child — the pre-contracted branch absorbed at this step.
    result_indices:
        Index set of the step's result tensor (the "stem tensor").
    branch_indices:
        Index set of the absorbed branch.
    log2_flops:
        log2 cost of this contraction (Eq. 1 term, unsliced).
    """

    node: int
    stem_child: int
    branch_child: int
    result_indices: FrozenSet[str]
    branch_indices: FrozenSet[str]
    log2_flops: float

    @property
    def rank(self) -> int:
        """Rank of the stem tensor produced by this step."""
        return len(self.result_indices)


@dataclass(frozen=True)
class Stem:
    """The stem of a contraction tree.

    Attributes
    ----------
    tree:
        The original contraction tree.
    steps:
        Stem steps in execution order (bottom of the tree first, root last).
    start_node:
        The node (leaf or internal) at which the stem path begins; its tensor
        is the initial "running" stem tensor.
    """

    tree: ContractionTree
    steps: Tuple[StemStep, ...]
    start_node: int

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of contractions on the stem."""
        return len(self.steps)

    @property
    def nodes(self) -> Tuple[int, ...]:
        """Original-tree node ids of the stem contractions, in order."""
        return tuple(step.node for step in self.steps)

    @property
    def stem_tensor_indices(self) -> Tuple[FrozenSet[str], ...]:
        """Index sets of the successive stem tensors (the list ``M`` of Alg. 1)."""
        return tuple(step.result_indices for step in self.steps)

    @property
    def branch_nodes(self) -> Tuple[int, ...]:
        """Node ids of the pre-contracted branches, in absorption order."""
        return tuple(step.branch_child for step in self.steps)

    def edges(self) -> FrozenSet[str]:
        """Every edge appearing on some stem tensor (the slicing candidates)."""
        out: set = set(self.tree.node_indices(self.start_node))
        for step in self.steps:
            out |= step.result_indices
            out |= step.branch_indices
        return frozenset(out)

    def max_rank(self) -> int:
        """Largest stem-tensor rank (the memory bottleneck before slicing)."""
        ranks = [len(self.tree.node_indices(self.start_node))]
        ranks += [step.rank for step in self.steps]
        return max(ranks)

    def cost(self) -> float:
        """Total flops of the stem contractions (one subtask, unsliced)."""
        return sum(2.0**step.log2_flops for step in self.steps)

    def cost_fraction(self) -> float:
        """Fraction of the whole tree's flops carried by the stem (~0.99 in the paper)."""
        total = self.tree.contraction_cost()
        return self.cost() / total if total else 0.0

    # ------------------------------------------------------------------
    def as_tree(self) -> ContractionTree:
        """Re-express the stem as a caterpillar contraction tree.

        Leaves are the initial stem tensor and the pre-contracted branches
        (each represented abstractly by its index set); contractions happen
        in stem order.  The resulting tree has the same stem-tensor index
        sets and per-step costs as the original stem, which lets the
        :class:`~repro.core.slicing.SlicingCostModel` and the lifetime
        machinery be reused unchanged.
        """
        leaf_indices: List[FrozenSet[str]] = [self.tree.node_indices(self.start_node)]
        leaf_tids: List[int] = [self.start_node]
        for step in self.steps:
            leaf_indices.append(step.branch_indices)
            leaf_tids.append(step.branch_child)

        num_leaves = len(leaf_indices)
        ssa_path: List[Tuple[int, int]] = []
        running = 0
        next_id = num_leaves
        for i in range(1, num_leaves):
            ssa_path.append((running, i))
            running = next_id
            next_id += 1

        index_sizes = {
            ix: self.tree.index_size(ix)
            for ixset in leaf_indices
            for ix in ixset
        }
        # the root of the stem is the root of the original tree, so the open
        # indices of the stem tree are exactly the original output indices
        # that survive on stem tensors
        output = self.tree.output_indices & frozenset().union(*leaf_indices)
        return ContractionTree(
            leaf_indices=leaf_indices,
            index_sizes=index_sizes,
            ssa_path=ssa_path,
            output_indices=output,
            leaf_tids=leaf_tids,
        )


def extract_stem(tree: ContractionTree) -> Stem:
    """Find the most computationally intensive root-to-leaf path of ``tree``.

    The path is chosen by dynamic programming: the weight of a node is the
    cost of its own contraction (Eq. 1) and the stem is the root-to-leaf
    path of maximum total weight.  The result is memoized on the tree
    (trees are immutable, like their lazily built ``parent_map``): plan
    compilation, the slot schedule, the fusion pass and the cost-model cap
    ranking all ask for the same stem, often within one compile.
    """
    cached = getattr(tree, "_cached_stem", None)
    if cached is not None:
        return cached
    best_cost: Dict[int, float] = {}
    best_child: Dict[int, Optional[int]] = {}

    for node in tree.nodes():
        if tree.is_leaf(node):
            best_cost[node] = 0.0
            best_child[node] = None

    for node in tree.internal_nodes():
        a, b = tree.children(node)  # type: ignore[misc]
        own = 2.0 ** tree.node_log2_flops(node)
        if best_cost[a] >= best_cost[b]:
            best_cost[node] = own + best_cost[a]
            best_child[node] = a
        else:
            best_cost[node] = own + best_cost[b]
            best_child[node] = b

    # walk from the root down along the chosen children
    path_down: List[int] = []
    current: Optional[int] = tree.root
    while current is not None and not tree.is_leaf(current):
        path_down.append(current)
        current = best_child[current]
    start_node = current if current is not None else tree.root

    steps: List[StemStep] = []
    for node in reversed(path_down):  # bottom of the tree first
        a, b = tree.children(node)  # type: ignore[misc]
        stem_child = best_child[node]
        branch_child = b if stem_child == a else a
        steps.append(
            StemStep(
                node=node,
                stem_child=int(stem_child),  # type: ignore[arg-type]
                branch_child=int(branch_child),
                result_indices=tree.node_indices(node),
                branch_indices=tree.node_indices(branch_child),
                log2_flops=tree.node_log2_flops(node),
            )
        )
    stem = Stem(tree=tree, steps=tuple(steps), start_node=int(start_node))
    tree._cached_stem = stem  # type: ignore[attr-defined]
    return stem


def stem_slot_schedule(tree: ContractionTree) -> Dict[int, int]:
    """Alternating two-slot buffer assignment for the stem contractions.

    Along the stem each intermediate is consumed by exactly the next stem
    step, so the running tensor needs only two output buffers: step ``k``
    (bottom of the tree first) writes slot ``k % 2`` while its stem operand
    still sits in slot ``(k - 1) % 2``, which is freed by the very step
    that reads it and is therefore safe to overwrite at step ``k + 1``.
    The compiled execution plan bakes this mapping into its steps and the
    :class:`~repro.execution.plan.StemSlots` arena provides the buffers.

    Returns a mapping from stem node id to slot (0 or 1); branch nodes are
    absent and keep their regular (allocating) buffers.
    """
    if tree.num_leaves < 2:
        return {}
    return {step.node: k % 2 for k, step in enumerate(extract_stem(tree).steps)}


def stem_profile(
    stem: Stem, sliced: FrozenSet[str] = frozenset()
) -> List[Dict[str, float]]:
    """Per-step complexity profile of the stem (the data behind Fig. 6).

    For every stem step returns the unsliced log2 cost, the sliced log2 cost
    of one subtask, and the redundancy multiple ``2^{|S| - |S ∩ s_V|}``
    incurred by slicing.
    """
    tree = stem.tree
    log2_slices = sum(tree.log2_index_size(ix) for ix in sliced)
    profile: List[Dict[str, float]] = []
    for position, step in enumerate(stem.steps):
        union = tree.contraction_indices(step.node)
        covered = sum(tree.log2_index_size(ix) for ix in union & sliced)
        unsliced_cost = step.log2_flops
        sliced_cost = unsliced_cost - covered
        multiple = log2_slices - covered
        profile.append(
            {
                "position": float(position),
                "rank": float(step.rank),
                "log2_cost": unsliced_cost,
                "log2_cost_sliced": sliced_cost,
                "log2_multiple": multiple,
            }
        )
    return profile
