"""Lifetime of tensor-network edges (Definition 1 of the paper).

Given a tensor network ``G = (V, E)`` and a contraction tree ``B``, the
*lifetime* of an edge ``k`` is the set of tensors of the contraction tree
(leaves and intermediates alike — the paper's ``E_B``) whose index set
contains ``k``.

Lifetime is the paper's central analytical device:

* slicing edge ``e`` halves exactly the tensors in ``lifetime(e)`` and
  leaves every other tensor unchanged;
* the contractions *inside* the lifetime keep their time complexity, the
  ones outside are recomputed once per slice value — that recomputation is
  the slicing overhead (Eq. 2);
* on the stem, an edge with a longer lifetime tends to cover more of the
  computationally intensive region, which is why Algorithm 1 slices the
  longest-lifetime indices first;
* at the thread level the indices *not* contracted during a fused sub-path
  are, by definition, the indices whose lifetime spans the sub-path — the
  prerequisite of the secondary-slicing design (§5.2).

The functions here compute lifetimes over full contraction trees, subtrees
and stems, and expose the containment/length relations used by the slicing
strategy and its proofs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..tensornet.contraction_tree import ContractionTree

__all__ = [
    "Lifetime",
    "compute_lifetimes",
    "lifetime_of",
    "lifetime_lengths",
    "lifetimes_on_nodes",
    "lifetime_contains",
    "lifetime_is_contiguous_on_path",
    "slice_dependent_nodes",
    "verify_halving_property",
]


@dataclass(frozen=True)
class Lifetime:
    """The lifetime of one edge over one contraction tree.

    Attributes
    ----------
    edge:
        The edge (index label).
    nodes:
        All tree nodes — leaves and intermediates — whose tensor carries the
        edge.
    internal_nodes:
        The subset of ``nodes`` that are intermediates (contraction results).
    """

    edge: str
    nodes: FrozenSet[int]
    internal_nodes: FrozenSet[int]

    @property
    def length(self) -> int:
        """Number of tensors in the lifetime (the paper's "length")."""
        return len(self.nodes)

    @property
    def internal_length(self) -> int:
        """Number of intermediate tensors in the lifetime."""
        return len(self.internal_nodes)

    def contains(self, other: "Lifetime") -> bool:
        """Whether this lifetime contains the other (the partial order of §4.2)."""
        return other.nodes <= self.nodes

    def restricted_to(self, nodes: AbstractSet[int]) -> FrozenSet[int]:
        """The lifetime restricted to a region of the tree (e.g. a stem)."""
        return self.nodes & frozenset(nodes)


def compute_lifetimes(
    tree: ContractionTree,
    edges: Optional[Iterable[str]] = None,
    include_leaves: bool = True,
) -> Dict[str, Lifetime]:
    """Compute the lifetime of every edge (or of ``edges``) over ``tree``.

    Parameters
    ----------
    tree:
        The contraction tree.
    edges:
        Restrict the computation to these edges; defaults to every edge on
        some leaf.
    include_leaves:
        Whether leaves count as part of a lifetime.  Definition 1 includes
        them (leaf tensors also shrink when sliced); the stem analysis
        usually looks only at intermediates.
    """
    wanted = frozenset(edges) if edges is not None else tree.all_indices()
    node_sets: Dict[str, set] = {ix: set() for ix in wanted}
    internal_sets: Dict[str, set] = {ix: set() for ix in wanted}

    node_range: Sequence[int]
    if include_leaves:
        node_range = tree.nodes()
    else:
        node_range = tree.internal_nodes()

    internal = frozenset(tree.internal_nodes())
    for node in node_range:
        for ix in tree.node_indices(node):
            if ix in node_sets:
                node_sets[ix].add(node)
                if node in internal:
                    internal_sets[ix].add(node)

    return {
        ix: Lifetime(
            edge=ix,
            nodes=frozenset(node_sets[ix]),
            internal_nodes=frozenset(internal_sets[ix]),
        )
        for ix in wanted
    }


def lifetime_of(tree: ContractionTree, edge: str, include_leaves: bool = True) -> Lifetime:
    """Lifetime of a single edge."""
    result = compute_lifetimes(tree, edges=[edge], include_leaves=include_leaves)
    return result[edge]


def lifetime_lengths(tree: ContractionTree, edges: Optional[Iterable[str]] = None) -> Dict[str, int]:
    """Length (tensor count) of every lifetime — the sort key of Algorithm 1."""
    return {ix: lt.length for ix, lt in compute_lifetimes(tree, edges=edges).items()}


def lifetimes_on_nodes(
    tree: ContractionTree,
    nodes: Sequence[int],
    edges: Optional[Iterable[str]] = None,
) -> Dict[str, FrozenSet[int]]:
    """Lifetimes restricted to an ordered region of the tree (e.g. the stem).

    Returns, for each edge, the subset of ``nodes`` whose tensor carries the
    edge.  Edges absent from the region map to the empty set.
    """
    wanted = frozenset(edges) if edges is not None else tree.all_indices()
    region = list(nodes)
    out: Dict[str, set] = {ix: set() for ix in wanted}
    for node in region:
        for ix in tree.node_indices(node):
            if ix in out:
                out[ix].add(node)
    return {ix: frozenset(v) for ix, v in out.items()}


def lifetime_contains(
    tree: ContractionTree, outer_edge: str, inner_edge: str, include_leaves: bool = True
) -> bool:
    """Whether ``lifetime(outer_edge)`` contains ``lifetime(inner_edge)``.

    The containment relation — not raw length — is what guarantees that
    slicing the outer edge reduces memory at least wherever slicing the
    inner one would (§4.2).
    """
    lifetimes = compute_lifetimes(
        tree, edges=[outer_edge, inner_edge], include_leaves=include_leaves
    )
    return lifetimes[outer_edge].contains(lifetimes[inner_edge])


def lifetime_is_contiguous_on_path(
    tree: ContractionTree, edge: str, path: Sequence[int]
) -> bool:
    """Whether the lifetime of ``edge`` is a contiguous segment of ``path``.

    On a stem (a path of successive contractions) every edge is created
    once and consumed once, so its lifetime restricted to the stem must be
    contiguous; the property tests use this as a structural invariant.
    """
    membership = [edge in tree.node_indices(node) for node in path]
    if not any(membership):
        return True
    first = membership.index(True)
    last = len(membership) - 1 - membership[::-1].index(True)
    return all(membership[first : last + 1])


def slice_dependent_nodes(
    tree: ContractionTree, sliced: Iterable[str]
) -> FrozenSet[int]:
    """Nodes whose value depends on the assignment of the sliced edges.

    A tree node is *slice-dependent* when some leaf of its subtree lies in
    the lifetime of a sliced edge: fixing the edge to different values then
    changes the leaf tensors feeding the node, hence its value.  Conversely
    every other node is *slice-invariant* — it is contracted from leaves
    untouched by the slicing and produces the identical intermediate in
    every subtask.  The plan compiler computes those intermediates once and
    reuses them across all ``prod w(e)`` subtasks; the recomputation that
    slicing does force is confined to exactly the dependent set, which is
    the executable form of the lifetime/overhead argument of Eq. 2.

    Returns the set of dependent nodes (leaves and intermediates).  The
    empty slicing set yields the empty set: everything is invariant.
    """
    sliced = frozenset(sliced)
    if not sliced:
        return frozenset()
    lifetimes = compute_lifetimes(tree, edges=sliced, include_leaves=True)
    num_leaves = tree.num_leaves
    touched_leaves: Set[int] = set()
    for lifetime in lifetimes.values():
        touched_leaves.update(n for n in lifetime.nodes if n < num_leaves)
    dependent: Set[int] = set(touched_leaves)
    for node in tree.internal_nodes():
        a, b = tree.children(node)  # type: ignore[misc]
        if a in dependent or b in dependent:
            dependent.add(node)
    return frozenset(dependent)


def verify_halving_property(
    tree: ContractionTree, edge: str
) -> Tuple[bool, Dict[int, Tuple[float, float]]]:
    """Check the defining property of lifetime on one edge.

    Slicing ``edge`` must halve (divide by ``w(edge)``) the size of exactly
    the tensors in its lifetime and leave every other tensor's size
    unchanged.  Returns ``(ok, per_node_sizes)`` where ``per_node_sizes``
    maps each node to ``(log2 size before, log2 size after)``.
    """
    lifetime = lifetime_of(tree, edge)
    w = tree.log2_index_size(edge)
    sizes: Dict[int, Tuple[float, float]] = {}
    ok = True
    for node in tree.nodes():
        before = tree.node_log2_size(node)
        after = tree.node_log2_size(node, sliced={edge})
        sizes[node] = (before, after)
        if node in lifetime.nodes:
            if not math.isclose(after, before - w, abs_tol=1e-9):
                ok = False
        else:
            if not math.isclose(after, before, abs_tol=1e-9):
                ok = False
    return ok, sizes
