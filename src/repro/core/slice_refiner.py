"""Simulated-annealing slice refiner (Algorithm 2 of the paper).

Algorithm 1 finds a slicing set that is as small as possible, but not
necessarily the one with the lowest overhead at that size.  The refiner
keeps the size fixed and performs *edge replacement* moves:

1.  pick a sliced edge at random,
2.  collect the *critical tensors* inside its lifetime — intermediates
    whose sliced rank equals the target ``t`` exactly (un-slicing the edge
    would push them over the memory bound),
3.  enumerate candidate replacement edges whose lifetime contains all of
    those critical tensors (so the bound stays satisfied after the swap),
4.  accept the swap if it lowers the total sliced cost, or with Metropolis
    probability ``exp((C_ori − C_new) / C_ori / T)`` otherwise,
5.  cool the temperature and repeat until the final temperature is reached.

A pre-pass (and a post-pass) removes *redundant* sliced edges — edges whose
lifetime contains no critical tensor contribute nothing to memory reduction
and only add overhead (§4.3).

By default candidate sets are scored with the raw Eq. 2/4 sliced flop
count.  Passing ``cost_model=`` (a :class:`~repro.costs.model.CostModel`)
switches the objective to predicted wall seconds over all subtasks, so a
calibrated model's measured throughput and per-step overhead steer the
memory/recomputation trade-off; omitting it keeps the refinement
trajectory bit-identical to the flop-scored behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from .slicing import SlicingCostModel, SlicingResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs.model import CostModel

__all__ = ["SimulatedAnnealingSliceRefiner", "RefinementTrace", "remove_redundant_edges"]


@dataclass
class RefinementTrace:
    """Diagnostics of one refinement run."""

    initial_overhead: float
    final_overhead: float
    attempted_swaps: int = 0
    accepted_swaps: int = 0
    removed_redundant: int = 0

    @property
    def improvement(self) -> float:
        """Overhead ratio before/after (>1 means the refiner helped)."""
        if self.final_overhead == 0:
            return float("inf")
        return self.initial_overhead / self.final_overhead


def remove_redundant_edges(
    model: SlicingCostModel, sliced: AbstractSet[str], target_rank: int
) -> FrozenSet[str]:
    """Drop sliced edges that do not contribute to meeting the memory bound.

    An edge whose lifetime contains none of the current critical tensors can
    be un-sliced without violating the bound; doing so halves the cost of
    every contraction outside its lifetime.  Edges are re-checked after each
    removal because the critical set changes.
    """
    current = set(sliced)
    changed = True
    while changed:
        changed = False
        critical = set(model.critical_nodes(current, target_rank))
        for edge in sorted(current):
            covering = set(model.nodes_covering(edge))
            if critical & covering:
                continue
            trial = current - {edge}
            if model.satisfies_target(trial, target_rank):
                current = trial
                changed = True
                break
    return frozenset(current)


class SimulatedAnnealingSliceRefiner:
    """Algorithm 2: SA-based slicing-set refinement at fixed set size.

    Parameters
    ----------
    initial_temperature, final_temperature:
        Endpoints of the geometric cooling schedule (the paper's ``T`` and
        ``t_f``).
    cooling:
        Cooling factor ``alpha`` applied after every temperature step.
    moves_per_temperature:
        Number of random sliced edges examined per temperature.
    max_candidates:
        Cap on replacement candidates evaluated per move (they are sampled
        uniformly when more are available).
    seed:
        PRNG seed.
    cost_model:
        Optional :class:`~repro.costs.model.CostModel`.  When supplied,
        candidate slicing sets are scored with the model's predicted
        *seconds* over all subtasks
        (:meth:`~repro.costs.model.CostModel.total_seconds` on
        ``cost_backend``) instead of the raw Eq. 2/4 flop count — a
        calibrated model thereby steers the memory/recomputation
        trade-off with measured per-backend throughput and dispatch
        overhead.  ``None`` (default) keeps the flop scoring and the
        refinement trajectory bit-identical to the pre-model behaviour.
    cost_backend:
        Backend name passed to the cost model's predictions.
    """

    def __init__(
        self,
        initial_temperature: float = 1.0,
        final_temperature: float = 0.01,
        cooling: float = 0.85,
        moves_per_temperature: int = 8,
        max_candidates: int = 16,
        seed: Optional[int] = None,
        cost_model: Optional["CostModel"] = None,
        cost_backend: Optional[str] = None,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if final_temperature <= 0 or initial_temperature <= final_temperature:
            raise ValueError("require initial_temperature > final_temperature > 0")
        self.initial_temperature = float(initial_temperature)
        self.final_temperature = float(final_temperature)
        self.cooling = float(cooling)
        self.moves_per_temperature = int(moves_per_temperature)
        self.max_candidates = int(max_candidates)
        self._rng = np.random.default_rng(seed)
        self.cost_model = cost_model
        self.cost_backend = cost_backend
        self.last_trace: Optional[RefinementTrace] = None

    def _scorer(
        self, tree: ContractionTree, model: SlicingCostModel
    ) -> Callable[[AbstractSet[str]], float]:
        """The candidate-set objective: Eq. 2/4 flops, or predicted seconds."""
        if self.cost_model is None:
            return model.total_cost

        def predicted_seconds(sliced: AbstractSet[str]) -> float:
            return self.cost_model.total_seconds(  # type: ignore[union-attr]
                tree, frozenset(sliced), backend=self.cost_backend
            )

        return predicted_seconds

    # ------------------------------------------------------------------
    def refine(
        self,
        tree: ContractionTree,
        sliced: AbstractSet[str],
        target_rank: int,
        cost_model: Optional[SlicingCostModel] = None,
    ) -> SlicingResult:
        """Refine ``sliced`` for ``tree``; returns the improved slicing result.

        The refiner never returns a set that violates the memory bound, and
        never returns one with higher total cost than its input (the best
        configuration seen is tracked separately from the SA walker).
        """
        if cost_model is None:
            cost_model = SlicingCostModel(tree)
        model = cost_model

        current: Set[str] = set(sliced)
        trace = RefinementTrace(
            initial_overhead=model.overhead(current), final_overhead=0.0
        )

        pruned = remove_redundant_edges(model, current, target_rank)
        trace.removed_redundant = len(current) - len(pruned)
        current = set(pruned)

        score = self._scorer(tree, model)
        current_cost = score(current)
        best: Set[str] = set(current)
        best_cost = current_cost

        temperature = self.initial_temperature
        while temperature >= self.final_temperature and current:
            for _ in range(self.moves_per_temperature):
                edge = self._pick(sorted(current))
                swap = self._propose_swap(model, current, edge, target_rank, score)
                if swap is None:
                    continue
                candidate_edge, new_cost = swap
                trace.attempted_swaps += 1
                accept = new_cost < current_cost
                if not accept:
                    prob = math.exp(
                        (current_cost - new_cost) / max(current_cost, 1e-300) / temperature
                    )
                    accept = self._rng.random() < prob
                if not accept:
                    continue
                current.discard(edge)
                current.add(candidate_edge)
                current_cost = new_cost
                trace.accepted_swaps += 1
                if new_cost < best_cost:
                    best_cost = new_cost
                    best = set(current)
            temperature *= self.cooling

        # final redundancy sweep on the best configuration
        best = set(remove_redundant_edges(model, best, target_rank))
        trace.final_overhead = model.overhead(best)
        self.last_trace = trace
        return model.result(best, target_rank, method="lifetime-finder+sa")

    # ------------------------------------------------------------------
    def _pick(self, population: Sequence[str]) -> str:
        return population[int(self._rng.integers(len(population)))]

    def _propose_swap(
        self,
        model: SlicingCostModel,
        current: Set[str],
        edge: str,
        target_rank: int,
        score: Callable[[AbstractSet[str]], float],
    ) -> Optional[Tuple[str, float]]:
        """Find the best admissible replacement for ``edge`` among sampled candidates."""
        critical = set(model.critical_nodes(current, target_rank))
        covered_critical = critical & set(model.nodes_covering(edge))
        candidates = [
            ix
            for ix in model.edges_covering_all(sorted(covered_critical))
            if ix not in current
        ]
        if not candidates:
            return None
        if len(candidates) > self.max_candidates:
            picks = self._rng.choice(len(candidates), size=self.max_candidates, replace=False)
            candidates = [candidates[i] for i in picks]

        best_edge: Optional[str] = None
        best_cost = math.inf
        for candidate in candidates:
            trial = (current - {edge}) | {candidate}
            if not model.satisfies_target(trial, target_rank):
                continue
            cost = score(trial)
            if cost < best_cost:
                best_cost = cost
                best_edge = candidate
        if best_edge is None:
            return None
        return best_edge, best_cost
