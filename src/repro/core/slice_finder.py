"""Lifetime-based slice finder (Algorithm 1 of the paper).

The finder works on the *stem* of a contraction tree.  Walking inwards from
the two ends of the stem, it repeatedly takes the end tensor with the
smaller dimension, slices its ``dim - t`` indices of longest lifetime
(measured as the number of stem tensors the index lives on), prunes every
stem tensor that now fits the target dimension ``t``, and recomputes the
lifetimes of the remaining region.  Because an index of maximal lifetime at
an end of the stem *contains* the lifetime of every other candidate
(leaf-node argument of §4.2), this produces a slicing set that is as small
as possible for the given tree — the precondition of Theorem 1 that lets
the SA refiner then lower the overhead at fixed set size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..tensornet.contraction_tree import ContractionTree
from .slicing import SlicingCostModel, SlicingResult
from .stem import Stem, extract_stem

__all__ = ["LifetimeSliceFinder", "find_slices"]


@dataclass
class _StemState:
    """Mutable view of the stem tensors during the Algorithm 1 loop."""

    tensors: List[FrozenSet[str]]

    def dims(self, sliced: AbstractSet[str]) -> List[int]:
        return [len(t - sliced) for t in self.tensors]

    def lifetime_length(self, index: str, sliced: AbstractSet[str]) -> int:
        """Number of surviving stem tensors whose index set contains ``index``."""
        return sum(1 for t in self.tensors if index in t)


class LifetimeSliceFinder:
    """Algorithm 1: in-place, lifetime-guided slicing-set search.

    Parameters
    ----------
    target_rank:
        The target dimension ``t`` — the largest allowed intermediate rank
        after slicing (e.g. 30 for a tensor that must fit in one Sunway CG's
        main memory at single precision).
    ensure_full_tree:
        After the stem pass, verify the memory bound on the *whole* tree and
        greedily add longest-lifetime edges from any offending off-stem
        intermediate.  The paper assumes branches are cheap enough that this
        never triggers; keeping the check makes the finder safe on arbitrary
        trees.
    """

    def __init__(self, target_rank: int, ensure_full_tree: bool = True) -> None:
        if target_rank < 1:
            raise ValueError("target_rank must be at least 1")
        self.target_rank = int(target_rank)
        self.ensure_full_tree = bool(ensure_full_tree)

    # ------------------------------------------------------------------
    def find(
        self,
        tree: ContractionTree,
        stem: Optional[Stem] = None,
        cost_model: Optional[SlicingCostModel] = None,
    ) -> SlicingResult:
        """Run Algorithm 1 on ``tree`` and evaluate the result on the full tree.

        Parameters
        ----------
        tree:
            The contraction tree to slice.
        stem:
            Pre-extracted stem (computed on demand otherwise).
        cost_model:
            Pre-built cost model of ``tree`` (built on demand otherwise).
        """
        if stem is None:
            stem = extract_stem(tree)
        if cost_model is None:
            cost_model = SlicingCostModel(tree)

        sliced = self.find_on_stem(stem)

        if self.ensure_full_tree:
            sliced = self._patch_full_tree(cost_model, sliced)

        return cost_model.result(sliced, self.target_rank, method="lifetime-finder")

    def find_on_stem(self, stem: Stem) -> FrozenSet[str]:
        """The raw Algorithm 1 loop; returns the slicing set."""
        t = self.target_rank
        state = _StemState(tensors=list(stem.stem_tensor_indices))
        sliced: Set[str] = set()

        while state.tensors:
            dims = state.dims(sliced)
            # pick the end tensor with the smaller (current) dimension
            if dims[0] <= dims[-1]:
                position = 0
            else:
                position = len(state.tensors) - 1
            end_tensor = state.tensors[position]
            need = dims[position] - t

            if need > 0:
                candidates = sorted(
                    (ix for ix in end_tensor if ix not in sliced),
                    key=lambda ix: (-state.lifetime_length(ix, sliced), ix),
                )
                sliced.update(candidates[:need])

            # prune every stem tensor that now fits the target
            state.tensors = [
                tensor for tensor in state.tensors if len(tensor - sliced) > t
            ]

        return frozenset(sliced)

    # ------------------------------------------------------------------
    def _patch_full_tree(
        self, cost_model: SlicingCostModel, sliced: FrozenSet[str]
    ) -> FrozenSet[str]:
        """Greedy fallback: enforce the memory bound on off-stem intermediates."""
        sliced_set = set(sliced)
        guard = 0
        max_extra = len(cost_model.indices)
        while not cost_model.satisfies_target(sliced_set, self.target_rank):
            guard += 1
            if guard > max_extra:  # pragma: no cover - defensive
                break
            # candidate edges: those on the currently-largest intermediates,
            # preferring the one covering the most over-target nodes
            offenders = [
                node
                for node in cost_model.nodes
                if cost_model.node_result_rank(node, sliced_set) > self.target_rank
            ]
            counts: Dict[str, int] = {}
            for node in offenders:
                for ix in cost_model.tree.node_indices(node):
                    if ix not in sliced_set:
                        counts[ix] = counts.get(ix, 0) + 1
            if not counts:  # pragma: no cover - defensive
                break
            best = max(sorted(counts), key=lambda ix: counts[ix])
            sliced_set.add(best)
        return frozenset(sliced_set)


def find_slices(
    tree: ContractionTree, target_rank: int, refine: bool = False, seed: Optional[int] = None
) -> SlicingResult:
    """Convenience entry point: Algorithm 1, optionally followed by Algorithm 2.

    Parameters
    ----------
    tree:
        Contraction tree to slice.
    target_rank:
        Memory target ``t``.
    refine:
        Whether to run the simulated-annealing refiner on the found set.
    seed:
        PRNG seed for the refiner.
    """
    finder = LifetimeSliceFinder(target_rank)
    model = SlicingCostModel(tree)
    result = finder.find(tree, cost_model=model)
    if refine:
        from .slice_refiner import SimulatedAnnealingSliceRefiner

        refiner = SimulatedAnnealingSliceRefiner(seed=seed)
        result = refiner.refine(tree, result.sliced, target_rank, cost_model=model)
    return result
