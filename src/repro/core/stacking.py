"""Slice-or-stack decision model (§3.3, Fig. 7).

Slicing pays for the memory bound with *redundant computation*; stacking —
the inverse operation, putting a sliced dimension back by moving data
through a slower storage level — pays for it with *data movement*.  On a
multi-level storage system the right choice per level boundary depends on
the bandwidth of that boundary versus the overhead of the available slicing
sets: the paper's rule of thumb is "low bandwidth and low overhead → slice;
high bandwidth and high overhead → stack", which is why the process level
(disk ↔ main memory, slow IO) is sliced and the thread level (main memory ↔
LDM, fast DMA) is stacked via the fused design of §5.

:class:`SliceStackAnalyzer` quantifies both sides for a given contraction
tree: the slicing overhead as a function of the target size (from any of
the slicers in this package) and the *equivalent overhead* of stacking,
obtained by translating the data-movement time into compute time through
the machine's arithmetic-intensity ridge (the "line of equal overhead" of
Fig. 7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.memory import MemoryHierarchy, StorageLevel, sunway_hierarchy
from ..hardware.spec import COMPLEX64_BYTES, SW26010PRO, SunwaySpec
from ..tensornet.contraction_tree import ContractionTree
from .baseline_slicer import GreedySliceBaseline
from .slice_finder import LifetimeSliceFinder
from .slicing import SlicingCostModel

__all__ = ["StackingEstimate", "StrategyDecision", "SliceStackAnalyzer"]


@dataclass(frozen=True)
class StackingEstimate:
    """Cost of satisfying a memory target by stacking through one boundary.

    Attributes
    ----------
    boundary:
        ``(outer level, inner level)`` names.
    target_rank:
        Target rank ``t`` of the inner level.
    bytes_moved:
        Total bytes streamed through the boundary over the whole contraction.
    movement_seconds:
        Time of that streaming at the boundary bandwidth.
    compute_seconds:
        Pure compute time of the unsliced contraction at peak rate.
    equivalent_overhead:
        ``1 + movement / compute`` — the data movement expressed as if it
        were redundant computation, so it can be compared with Eq. 2
        directly (the y-axis of Fig. 7).
    """

    boundary: Tuple[str, str]
    target_rank: int
    bytes_moved: float
    movement_seconds: float
    compute_seconds: float

    @property
    def equivalent_overhead(self) -> float:
        """Data movement translated into slicing-overhead units."""
        if self.compute_seconds <= 0:
            return math.inf
        return 1.0 + self.movement_seconds / self.compute_seconds


@dataclass(frozen=True)
class StrategyDecision:
    """The recommended strategy at one storage boundary for one target size."""

    boundary: Tuple[str, str]
    target_rank: int
    slicing_overhead: float
    stacking_overhead: float
    strategy: str  # "slice" or "stack"

    @property
    def advantage(self) -> float:
        """Overhead ratio of the rejected strategy to the chosen one (≥ 1)."""
        lo = min(self.slicing_overhead, self.stacking_overhead)
        hi = max(self.slicing_overhead, self.stacking_overhead)
        if lo <= 0:
            return math.inf
        return hi / lo


class SliceStackAnalyzer:
    """Compare slicing against stacking on every boundary of a hierarchy.

    Parameters
    ----------
    tree:
        The contraction tree being executed.
    hierarchy:
        Storage hierarchy; defaults to the Sunway disk → main memory → LDM
        stack.
    spec:
        Machine description (for peak-flop accounting).
    element_bytes:
        Element width (single-precision complex by default).
    slicer:
        ``"lifetime"`` (Algorithm 1) or ``"greedy"`` (cotengra baseline) —
        which slicer supplies the slicing-overhead curve.
    """

    def __init__(
        self,
        tree: ContractionTree,
        hierarchy: Optional[MemoryHierarchy] = None,
        spec: SunwaySpec = SW26010PRO,
        element_bytes: int = COMPLEX64_BYTES,
        slicer: str = "lifetime",
    ) -> None:
        if slicer not in ("lifetime", "greedy"):
            raise ValueError("slicer must be 'lifetime' or 'greedy'")
        self.tree = tree
        self.hierarchy = hierarchy if hierarchy is not None else sunway_hierarchy(spec)
        self.spec = spec
        self.element_bytes = int(element_bytes)
        self.slicer = slicer
        self.cost_model = SlicingCostModel(tree)
        # flops of the unsliced contraction (8 real ops per complex MAC)
        self._flops = 8.0 * self.cost_model.total_cost(frozenset())
        self._compute_seconds = self._flops / spec.peak_flops_per_node

    # ------------------------------------------------------------------
    # Slicing side
    # ------------------------------------------------------------------
    def slicing_overhead(self, target_rank: int) -> float:
        """Overhead of the best slicing set this package finds for ``target_rank``."""
        if self.cost_model.max_rank(frozenset()) <= target_rank:
            return 1.0
        if self.slicer == "lifetime":
            result = LifetimeSliceFinder(target_rank).find(
                self.tree, cost_model=self.cost_model
            )
        else:
            result = GreedySliceBaseline(target_rank).find(
                self.tree, cost_model=self.cost_model
            )
        return result.overhead

    # ------------------------------------------------------------------
    # Stacking side
    # ------------------------------------------------------------------
    def stacking_bytes(self, target_rank: int) -> float:
        """Bytes streamed through a boundary if over-target tensors are stacked.

        Every contraction whose operands or result exceed the inner level's
        target rank streams those tensors through the boundary once each
        (a get for each oversized operand, a put for an oversized result).
        """
        tree = self.tree
        threshold = float(target_rank)
        total_elements = 0.0
        for node in tree.internal_nodes():
            a, b = tree.children(node)  # type: ignore[misc]
            for member in (a, b, node):
                size_log2 = tree.node_log2_size(member)
                if size_log2 > threshold:
                    total_elements += 2.0**size_log2
        return total_elements * self.element_bytes

    def stacking_estimate(
        self, boundary: Tuple[StorageLevel, StorageLevel], target_rank: int
    ) -> StackingEstimate:
        """Stacking cost at one boundary for one target size."""
        outer, inner = boundary
        bandwidth = outer.bandwidth_to_upper or math.inf
        bytes_moved = self.stacking_bytes(target_rank)
        movement_seconds = bytes_moved / bandwidth if bandwidth else math.inf
        return StackingEstimate(
            boundary=(outer.name, inner.name),
            target_rank=target_rank,
            bytes_moved=bytes_moved,
            movement_seconds=movement_seconds,
            compute_seconds=self._compute_seconds,
        )

    # ------------------------------------------------------------------
    # Combined analysis
    # ------------------------------------------------------------------
    def decide(
        self, boundary_name: str, target_rank: int
    ) -> StrategyDecision:
        """Recommend slice vs stack at the named boundary for ``target_rank``."""
        outer = self.hierarchy.level(boundary_name)
        inner = self.hierarchy.inner_of(boundary_name)
        if inner is None:
            raise ValueError(f"{boundary_name!r} is the innermost level")
        slicing = self.slicing_overhead(target_rank)
        stacking = self.stacking_estimate((outer, inner), target_rank).equivalent_overhead
        strategy = "slice" if slicing <= stacking else "stack"
        return StrategyDecision(
            boundary=(outer.name, inner.name),
            target_rank=target_rank,
            slicing_overhead=slicing,
            stacking_overhead=stacking,
            strategy=strategy,
        )

    def overhead_distribution(
        self, target_ranks: Sequence[int]
    ) -> List[Dict[str, float]]:
        """The data behind Fig. 7: overhead curves over a sweep of target sizes.

        For every target rank, reports the slicing overhead and the
        stacking-equivalent overhead at every boundary of the hierarchy,
        plus which strategy wins there.
        """
        rows: List[Dict[str, float]] = []
        boundaries = self.hierarchy.boundaries()
        for target in target_ranks:
            row: Dict[str, float] = {
                "target_rank": float(target),
                "slicing_overhead": self.slicing_overhead(target),
            }
            for outer, inner in boundaries:
                estimate = self.stacking_estimate((outer, inner), target)
                key = f"stacking_overhead_{outer.name}_to_{inner.name}"
                row[key] = estimate.equivalent_overhead
                row[f"prefer_slice_{outer.name}_to_{inner.name}"] = float(
                    row["slicing_overhead"] <= estimate.equivalent_overhead
                )
            rows.append(row)
        return rows
