"""Tensor-permutation maps and the recursion-formula reduction (§5.3.1).

Inside the fused kernel every contraction step is preceded by a tensor
permutation that moves the to-be-absorbed indices to the end (for the left
operand ``A``) or to the front (for the right operand ``B``) so that the
contraction becomes a plain GEMM.  Two textbook strategies exist:

* the **in-situ map** computes each target address on the fly —
  ``O(N log N)`` time per use, ``O(1)`` extra space;
* the **pre-calculated map** stores the full address map — ``O(N)`` lookup
  after an ``O(N log N)`` build, but ``O(N)`` space, which is unaffordable
  when ``n`` distinct maps must be resident in a 256 KB LDM.

The paper's observation: for the permutations that actually occur, a block
of leading indices (for ``A``) and/or trailing indices (for ``B``) keeps its
position, so the map is periodic in those blocks and only ``N / 2^m``
entries need to be stored; the remaining addresses follow from the
recursion ``map[i + k] = map[i] + k * offset`` for ``k < stride``.
:class:`ReducedPermutationMap` implements exactly that reduction and is
verified against ``numpy.transpose`` in the tests.  The real fused
executor (:mod:`repro.execution.fusion`) consumes these specs at plan
compile time: identity permutations compile to reshape views and every
other one to a reduced-map gather into reusable scratch.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "PermutationSpec",
    "InSituPermutation",
    "PrecalculatedPermutation",
    "ReducedPermutationMap",
    "standard_contraction_permutation",
]


@dataclass(frozen=True)
class PermutationSpec:
    """A permutation of tensor axes.

    Attributes
    ----------
    perm:
        ``perm[i]`` is the source axis placed at target position ``i`` (the
        convention of ``numpy.transpose``).
    shape:
        Source tensor shape (all extents are powers of two for circuit
        networks, but any shape works).
    """

    perm: Tuple[int, ...]
    shape: Tuple[int, ...]

    def __post_init__(self) -> None:
        if sorted(self.perm) != list(range(len(self.shape))):
            raise ValueError(f"{self.perm} is not a permutation of the {len(self.shape)} axes")

    @property
    def ndim(self) -> int:
        """Tensor rank."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        out = 1
        for s in self.shape:
            out *= s
        return out

    @property
    def target_shape(self) -> Tuple[int, ...]:
        """Shape after the permutation."""
        return tuple(self.shape[axis] for axis in self.perm)

    @property
    def is_identity(self) -> bool:
        """Whether the permutation leaves the layout unchanged."""
        return self.perm == tuple(range(self.ndim))

    def with_leading_batch(self, extent: int) -> "PermutationSpec":
        """The same permutation with one fixed batch axis prepended.

        Batched (``bmm``) contraction steps permute each batch slice the
        same way: the batch axis stays at position 0 and every other axis
        shifts by one.  Because a leading fixed axis lands in the reduced
        map's *prefix* block, the returned spec's
        :class:`ReducedPermutationMap` has the **same core map** as this
        spec's (only ``prefix_size`` grows by ``extent``) — the reduced
        map is batch-invariant, which is what lets the fused batched-GEMM
        tape ops share the §5.3.1 machinery of the unbatched steps
        without storing per-batch address tables.
        """
        if extent < 1:
            raise ValueError(f"batch extent must be >= 1, got {extent}")
        return PermutationSpec(
            perm=(0, *(axis + 1 for axis in self.perm)),
            shape=(extent, *self.shape),
        )

    # ------------------------------------------------------------------
    @property
    def fixed_prefix(self) -> int:
        """Number of leading axes that keep their position (the ``A`` case)."""
        count = 0
        for i, axis in enumerate(self.perm):
            if axis == i:
                count += 1
            else:
                break
        return count

    @property
    def fixed_suffix(self) -> int:
        """Number of trailing axes that keep their position (the ``B`` case)."""
        count = 0
        n = self.ndim
        for offset in range(1, n + 1):
            if self.perm[n - offset] == n - offset:
                count += 1
            else:
                break
        return min(count, n - self.fixed_prefix)


def _source_strides(shape: Sequence[int]) -> List[int]:
    """Row-major strides (in elements) of a tensor of the given shape."""
    strides = [1] * len(shape)
    for i in range(len(shape) - 2, -1, -1):
        strides[i] = strides[i + 1] * shape[i + 1]
    return strides


def _source_index_table(spec: PermutationSpec) -> np.ndarray:
    """The full target→source address map, built axis-wise (vectorised).

    Identical values to iterating :meth:`InSituPermutation.source_index`
    over every target address, but the mixed-radix decomposition runs as
    ``O(rank)`` whole-array operations instead of ``O(N · rank)`` Python
    steps — the map build this way is cheap enough to run inside plan
    compilation (the fused executor builds one reduced map per non-identity
    operand permutation).
    """
    source_strides = _source_strides(spec.shape)
    target_shape = spec.target_shape
    remaining = np.arange(spec.size, dtype=np.int64)
    source = np.zeros(spec.size, dtype=np.int64)
    for pos in range(spec.ndim - 1, -1, -1):
        extent = target_shape[pos]
        source += (remaining % extent) * source_strides[spec.perm[pos]]
        remaining //= extent
    return source


class InSituPermutation:
    """Address computation on the fly: O(1) space, O(rank) work per element."""

    def __init__(self, spec: PermutationSpec) -> None:
        self.spec = spec
        self._source_strides = _source_strides(spec.shape)
        self._target_shape = spec.target_shape

    def source_index(self, target_flat: int) -> int:
        """Flat source address of the element at flat target address ``target_flat``."""
        remaining = target_flat
        source = 0
        for pos in range(self.spec.ndim - 1, -1, -1):
            extent = self._target_shape[pos]
            coord = remaining % extent
            remaining //= extent
            source += coord * self._source_strides[self.spec.perm[pos]]
        return source

    def permute(self, array: np.ndarray) -> np.ndarray:
        """Apply the permutation by explicit address computation (reference)."""
        flat = np.asarray(array).reshape(-1)
        out = np.empty(self.spec.size, dtype=flat.dtype)
        for target in range(self.spec.size):
            out[target] = flat[self.source_index(target)]
        return out.reshape(self._target_shape)

    @property
    def stored_entries(self) -> int:
        """Map entries stored by this strategy (none)."""
        return 0


class PrecalculatedPermutation:
    """Full pre-computed address map: O(N) space, O(1) work per element."""

    def __init__(self, spec: PermutationSpec) -> None:
        self.spec = spec
        self._map = _source_index_table(spec)

    @property
    def map(self) -> np.ndarray:
        """The full target→source address map."""
        return self._map

    @property
    def stored_entries(self) -> int:
        """Map entries stored by this strategy (all of them)."""
        return int(self._map.size)

    def source_index(self, target_flat: int) -> int:
        """Flat source address of a target address."""
        return int(self._map[target_flat])

    def permute(self, array: np.ndarray) -> np.ndarray:
        """Apply the permutation through the stored map (vectorised gather)."""
        flat = np.asarray(array).reshape(-1)
        return flat[self._map].reshape(self.spec.target_shape)


class ReducedPermutationMap:
    """The paper's recursion-formula map: store ``N / 2^m`` entries only.

    The fixed leading block (size ``P`` elements) and the fixed trailing
    block (size ``S`` elements) are factored out: only the middle block's
    map (``N / (P·S)`` entries) is stored, and the full address is
    reconstructed as ``map[i + k] = map[i] + k`` within a trailing run and
    ``prefix * (N / P) + ...`` across the leading block.
    """

    def __init__(self, spec: PermutationSpec) -> None:
        self.spec = spec
        self.prefix_axes = spec.fixed_prefix
        self.suffix_axes = spec.fixed_suffix

        shape = spec.shape
        self.prefix_size = math.prod(shape[: self.prefix_axes]) if self.prefix_axes else 1
        self.suffix_size = (
            math.prod(shape[spec.ndim - self.suffix_axes :]) if self.suffix_axes else 1
        )
        self.core_size = spec.size // (self.prefix_size * self.suffix_size)

        # the core permutation acts on the middle axes only
        core_axes = list(range(self.prefix_axes, spec.ndim - self.suffix_axes))
        core_shape = tuple(shape[a] for a in core_axes)
        core_perm = tuple(
            spec.perm[i] - self.prefix_axes
            for i in range(self.prefix_axes, spec.ndim - self.suffix_axes)
        )
        if core_shape:
            core_spec = PermutationSpec(perm=core_perm, shape=core_shape)
            self._core_map = _source_index_table(core_spec)
        else:
            self._core_map = np.zeros(1, dtype=np.int64)

    # ------------------------------------------------------------------
    @property
    def core_map(self) -> np.ndarray:
        """The stored middle-block map (target → source core positions).

        This is the only table the recursion formula needs; the fused
        executor (:mod:`repro.execution.fusion`) bakes it into its
        precompiled permutation kernels and applies it as a single
        vectorised gather along the core axis.
        """
        return self._core_map

    @property
    def stored_entries(self) -> int:
        """Map entries actually stored (``N / 2^m`` in the paper's notation)."""
        return int(self._core_map.size)

    @property
    def reduction_factor(self) -> float:
        """Space saving versus the full pre-calculated map."""
        return self.spec.size / max(self.stored_entries, 1)

    def source_index(self, target_flat: int) -> int:
        """Flat source address via the recursion formula."""
        suffix = target_flat % self.suffix_size
        rest = target_flat // self.suffix_size
        core = rest % self.core_size
        prefix = rest // self.core_size
        core_source = int(self._core_map[core]) if self.core_size > 1 else 0
        return (prefix * self.core_size + core_source) * self.suffix_size + suffix

    def permute(self, array: np.ndarray, module=None) -> np.ndarray:
        """Apply the permutation using only the reduced map (vectorised).

        The gather along the core axis goes through ``module`` (an
        :class:`~repro.execution.array_module.ArrayModule`, passed in so
        this core-layer module never imports the execution package) when
        one is given; the default is the equivalent host ``np.take``.
        """
        if module is None:
            flat = np.asarray(array).reshape(-1)
            out = flat.reshape(self.prefix_size, self.core_size, self.suffix_size)
            if self.core_size > 1:
                out = np.take(out, self._core_map, axis=1)
            return out.reshape(self.spec.target_shape)
        out = module.reshape(
            array, (self.prefix_size, self.core_size, self.suffix_size)
        )
        if self.core_size > 1:
            out = module.take(out, self._core_map, 1)
        return module.reshape(out, self.spec.target_shape)


def standard_contraction_permutation(
    rank: int, absorbed: Sequence[int], operand: str = "A"
) -> PermutationSpec:
    """The permutation used before a contraction step (the §5.3.1 example).

    For the left operand ``A`` the absorbed axes are moved to the end (so
    the GEMM's ``k`` extent is contiguous); for the right operand ``B`` they
    are moved to the front.  All extents are 2.

    Parameters
    ----------
    rank:
        Tensor rank.
    absorbed:
        Axes (in source order) that will be summed over at this step.
    operand:
        ``"A"`` (absorbed axes to the back) or ``"B"`` (to the front).
    """
    absorbed = tuple(absorbed)
    if any(a < 0 or a >= rank for a in absorbed):
        raise ValueError("absorbed axes out of range")
    if len(set(absorbed)) != len(absorbed):
        raise ValueError("absorbed axes must be distinct")
    kept = tuple(a for a in range(rank) if a not in absorbed)
    if operand == "A":
        perm = kept + absorbed
    elif operand == "B":
        perm = absorbed + kept
    else:
        raise ValueError("operand must be 'A' or 'B'")
    return PermutationSpec(perm=perm, shape=(2,) * rank)
