"""The paper's core contribution: lifetime-based slicing optimization."""

from .lifetime import (
    Lifetime,
    compute_lifetimes,
    lifetime_contains,
    lifetime_is_contiguous_on_path,
    lifetime_lengths,
    lifetime_of,
    lifetimes_on_nodes,
    slice_dependent_nodes,
    verify_halving_property,
)
from .stem import Stem, StemStep, extract_stem, stem_profile, stem_slot_schedule
from .slicing import SlicingCostModel, SlicingError, SlicingResult
from .slice_finder import LifetimeSliceFinder, find_slices
from .slice_refiner import (
    RefinementTrace,
    SimulatedAnnealingSliceRefiner,
    remove_redundant_edges,
)
from .baseline_slicer import GreedySliceBaseline, cotengra_style_slices
from .stacking import SliceStackAnalyzer, StackingEstimate, StrategyDecision
from .secondary import FusedGroup, FusedPlan, SecondarySlicer
from .permutation_map import (
    InSituPermutation,
    PermutationSpec,
    PrecalculatedPermutation,
    ReducedPermutationMap,
    standard_contraction_permutation,
)

__all__ = [
    "Lifetime",
    "compute_lifetimes",
    "lifetime_contains",
    "lifetime_is_contiguous_on_path",
    "lifetime_lengths",
    "lifetime_of",
    "lifetimes_on_nodes",
    "slice_dependent_nodes",
    "verify_halving_property",
    "Stem",
    "StemStep",
    "extract_stem",
    "stem_profile",
    "stem_slot_schedule",
    "SlicingCostModel",
    "SlicingError",
    "SlicingResult",
    "LifetimeSliceFinder",
    "find_slices",
    "RefinementTrace",
    "SimulatedAnnealingSliceRefiner",
    "remove_redundant_edges",
    "GreedySliceBaseline",
    "cotengra_style_slices",
    "SliceStackAnalyzer",
    "StackingEstimate",
    "StrategyDecision",
    "FusedGroup",
    "FusedPlan",
    "SecondarySlicer",
    "InSituPermutation",
    "PermutationSpec",
    "PrecalculatedPermutation",
    "ReducedPermutationMap",
    "standard_contraction_permutation",
]
