"""Slicing sets and the sliced-contraction cost model.

Slicing an edge ``e`` of the tensor network fixes its value, turning every
tensor that carries ``e`` into a slice of itself and the contraction into
``w(e)`` independent subtasks whose results are summed.  This module
provides:

* :class:`SlicingCostModel` — a vectorised evaluator of the paper's cost
  formulas over a fixed contraction tree:

  - the total time complexity after slicing a set ``S`` (Eq. 4),
  - the slicing overhead ``O(B, S)`` (Eq. 2),
  - the memory footprint (largest intermediate) under ``S``,
  - the *critical tensors* of §4.3 (intermediates whose sliced rank equals
    the target rank exactly).

  The evaluator pre-computes, for every internal node, the index set of its
  contraction ``s_v1 ∪ s_v2 ∪ s_v3`` and of its result tensor as boolean
  membership matrices, so that evaluating a candidate slicing set costs a
  handful of numpy reductions instead of a tree walk.  The slice finder, the
  SA refiner and the cotengra-style baseline all share this model, which is
  what makes the 400-path comparison of Fig. 10 tractable in pure Python.

* :class:`SlicingResult` — an immutable record of a chosen slicing set with
  its derived metrics, produced by every slicer in this package.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree

__all__ = ["SlicingCostModel", "SlicingResult", "SlicingError"]


class SlicingError(ValueError):
    """Raised for invalid slicing requests (unknown edges, empty trees, ...)."""


@dataclass(frozen=True)
class SlicingResult:
    """A slicing set together with its derived metrics.

    Attributes
    ----------
    sliced:
        The chosen slicing set (edge labels).
    num_subtasks:
        ``prod_{e in S} w(e)`` — the number of independent subtasks.
    overhead:
        Slicing overhead per Eq. 2 (1.0 means no redundant work).
    log10_total_cost:
        log10 of the total flops over all subtasks (Eq. 4).
    max_rank:
        Largest intermediate rank, counting only unsliced indices.
    max_intermediate_log2_size:
        log2 of the largest intermediate tensor size under the slicing.
    target_rank:
        The memory target the slicer was asked to hit.
    satisfies_target:
        Whether ``max_rank <= target_rank``.
    method:
        Name of the slicer that produced this result.
    """

    sliced: FrozenSet[str]
    num_subtasks: float
    overhead: float
    log10_total_cost: float
    max_rank: int
    max_intermediate_log2_size: float
    target_rank: int
    satisfies_target: bool
    method: str = "unknown"

    @property
    def num_sliced(self) -> int:
        """Number of sliced edges ``|S|``."""
        return len(self.sliced)


class SlicingCostModel:
    """Vectorised cost evaluator for slicing sets over one contraction tree.

    Parameters
    ----------
    tree:
        The contraction tree to evaluate against.  The model snapshots the
        tree's structure; it does not observe later mutations.
    """

    def __init__(self, tree: ContractionTree) -> None:
        self._tree = tree
        internal = tree.internal_nodes()
        if not internal:
            raise SlicingError("cannot build a cost model over a single-tensor tree")
        self._nodes: Tuple[int, ...] = internal
        self._indices: Tuple[str, ...] = tuple(sorted(tree.all_indices()))
        self._index_pos: Dict[str, int] = {ix: i for i, ix in enumerate(self._indices)}
        self._log2w = np.array(
            [tree.log2_index_size(ix) for ix in self._indices], dtype=np.float64
        )

        num_nodes = len(self._nodes)
        num_indices = len(self._indices)
        self._contract_membership = np.zeros((num_nodes, num_indices), dtype=bool)
        self._result_membership = np.zeros((num_nodes, num_indices), dtype=bool)
        for row, node in enumerate(self._nodes):
            for ix in tree.contraction_indices(node):
                self._contract_membership[row, self._index_pos[ix]] = True
            for ix in tree.node_indices(node):
                self._result_membership[row, self._index_pos[ix]] = True

        self._contract_log2 = self._contract_membership @ self._log2w
        self._result_log2 = self._result_membership @ self._log2w
        self._result_rank = self._result_membership.sum(axis=1)
        self._base_cost = float(np.sum(2.0**self._contract_log2))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def tree(self) -> ContractionTree:
        """The underlying contraction tree."""
        return self._tree

    @property
    def indices(self) -> Tuple[str, ...]:
        """All sliceable edge labels, sorted."""
        return self._indices

    @property
    def nodes(self) -> Tuple[int, ...]:
        """Internal node ids, in the order used by the membership matrices."""
        return self._nodes

    def node_result_rank(self, node: int, sliced: AbstractSet[str] = frozenset()) -> int:
        """Rank of the intermediate produced at ``node`` under ``sliced``."""
        row = self._nodes.index(node)
        cols = self._columns(sliced)
        reduction = int(self._result_membership[row, cols].sum()) if cols.size else 0
        return int(self._result_rank[row]) - reduction

    def _columns(self, sliced: AbstractSet[str]) -> np.ndarray:
        cols = []
        for ix in sliced:
            pos = self._index_pos.get(ix)
            if pos is None:
                raise SlicingError(f"edge {ix!r} is not part of this contraction tree")
            cols.append(pos)
        return np.asarray(sorted(cols), dtype=np.intp)

    # ------------------------------------------------------------------
    # Cost formulas (Eq. 2 / Eq. 4)
    # ------------------------------------------------------------------
    def num_subtasks(self, sliced: AbstractSet[str]) -> float:
        """``prod_{e in S} w(e)``."""
        cols = self._columns(sliced)
        return float(2.0 ** self._log2w[cols].sum()) if cols.size else 1.0

    def contraction_cost(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """Cost of a *single* subtask under ``sliced`` (Eq. 1 with S removed)."""
        cols = self._columns(sliced)
        if cols.size == 0:
            return self._base_cost
        reduced = self._contract_log2 - self._contract_membership[:, cols] @ self._log2w[cols]
        return float(np.sum(2.0**reduced))

    def total_cost(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """Total cost over all subtasks (Eq. 4)."""
        return self.num_subtasks(sliced) * self.contraction_cost(sliced)

    def log10_total_cost(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """log10 of :meth:`total_cost`."""
        return math.log10(self.total_cost(sliced))

    def overhead(self, sliced: AbstractSet[str]) -> float:
        """Slicing overhead ``O(B, S)`` of Eq. 2."""
        return self.total_cost(sliced) / self._base_cost

    def per_node_log2_cost(self, sliced: AbstractSet[str] = frozenset()) -> np.ndarray:
        """Per-internal-node log2 cost of one subtask, in node order."""
        cols = self._columns(sliced)
        if cols.size == 0:
            return self._contract_log2.copy()
        return self._contract_log2 - self._contract_membership[:, cols] @ self._log2w[cols]

    def per_node_multiplier(self, sliced: AbstractSet[str]) -> np.ndarray:
        """Per-node redundancy multiple ``2^{|S| - |S ∩ s_V|}`` (Fig. 6's green curve)."""
        cols = self._columns(sliced)
        if cols.size == 0:
            return np.ones(len(self._nodes))
        missing = self._log2w[cols].sum() - self._contract_membership[:, cols] @ self._log2w[cols]
        return 2.0**missing

    # ------------------------------------------------------------------
    # Memory metrics
    # ------------------------------------------------------------------
    def max_rank(self, sliced: AbstractSet[str] = frozenset()) -> int:
        """Largest intermediate rank counting only unsliced indices."""
        cols = self._columns(sliced)
        if cols.size == 0:
            return int(self._result_rank.max())
        ranks = self._result_rank - self._result_membership[:, cols].sum(axis=1)
        return int(ranks.max())

    def max_intermediate_log2_size(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """log2 size of the biggest intermediate under ``sliced``."""
        cols = self._columns(sliced)
        if cols.size == 0:
            return float(self._result_log2.max())
        sizes = self._result_log2 - self._result_membership[:, cols] @ self._log2w[cols]
        return float(sizes.max())

    def satisfies_target(self, sliced: AbstractSet[str], target_rank: int) -> bool:
        """Whether every intermediate's sliced rank is at most ``target_rank``."""
        return self.max_rank(sliced) <= target_rank

    def critical_nodes(self, sliced: AbstractSet[str], target_rank: int) -> Tuple[int, ...]:
        """The *critical tensors* of §4.3: intermediates at exactly the target rank."""
        cols = self._columns(sliced)
        ranks = self._result_rank.astype(np.int64)
        if cols.size:
            ranks = ranks - self._result_membership[:, cols].sum(axis=1)
        mask = ranks == target_rank
        return tuple(self._nodes[i] for i in np.nonzero(mask)[0])

    def nodes_covering(self, edge: str) -> Tuple[int, ...]:
        """Internal nodes whose *result tensor* carries ``edge`` (its lifetime)."""
        pos = self._index_pos.get(edge)
        if pos is None:
            raise SlicingError(f"edge {edge!r} is not part of this contraction tree")
        mask = self._result_membership[:, pos]
        return tuple(self._nodes[i] for i in np.nonzero(mask)[0])

    def edges_covering_all(self, nodes: Sequence[int]) -> Tuple[str, ...]:
        """Edges whose lifetime (result-tensor membership) covers every node in ``nodes``.

        Used by the SA refiner to enumerate replacement candidates: an edge
        can replace a sliced edge only if it reduces every critical tensor
        the sliced edge was responsible for.
        """
        if not nodes:
            return self._indices
        rows = [self._nodes.index(n) for n in nodes]
        mask = self._result_membership[rows, :].all(axis=0)
        return tuple(self._indices[i] for i in np.nonzero(mask)[0])

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(
        self, sliced: AbstractSet[str], target_rank: int, method: str = "unknown"
    ) -> SlicingResult:
        """Package ``sliced`` into a :class:`SlicingResult`."""
        sliced = frozenset(sliced)
        return SlicingResult(
            sliced=sliced,
            num_subtasks=self.num_subtasks(sliced),
            overhead=self.overhead(sliced),
            log10_total_cost=self.log10_total_cost(sliced),
            max_rank=self.max_rank(sliced),
            max_intermediate_log2_size=self.max_intermediate_log2_size(sliced),
            target_rank=target_rank,
            satisfies_target=self.satisfies_target(sliced, target_rank),
            method=method,
        )
