"""End-to-end simulation pipeline.

:class:`SimulationPlanner` strings the whole system together the way the
paper's production runs do:

1.  convert the circuit (or accept a ready-made tensor network),
2.  simplify it (rank-1/rank-2 absorption),
3.  search for a contraction tree (hyper-optimizer + SA refinement),
4.  extract the stem and run the lifetime slice finder + SA slice refiner
    against the process-level memory target,
5.  plan the thread-level fused execution (secondary slicing),
6.  estimate the performance on the Sunway model (per-subtask time, node
    counts, sustained rate), and
7.  — for small circuits — numerically execute the sliced contraction and
    check it against the unsliced value.

Every stage's artefacts are kept on the returned :class:`SimulationPlan` so
examples, tests and benchmarks can inspect any intermediate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .circuits.circuit import Circuit
from .core.secondary import FusedPlan, SecondarySlicer
from .core.slice_finder import LifetimeSliceFinder
from .core.slice_refiner import SimulatedAnnealingSliceRefiner
from .core.slicing import SlicingCostModel, SlicingResult
from .core.stem import Stem, extract_stem
from .costs.model import CostModel
from .execution.backend import ExecutionBackend
from .execution.fused import ThreadLevelSimulator, ThreadTiming
from .execution.plan import PlanStats
from .execution.resilience import FaultPolicy
from .execution.scaling import HeadlineProjection, ProcessScheduler
from .execution.sliced import SlicedExecutor
from .hardware.memory import MemoryHierarchy, sunway_hierarchy
from .hardware.spec import COMPLEX64_BYTES, SW26010PRO, SunwaySpec
from .paths.optimizer import HyperOptimizer
from .tensornet.circuit_to_tn import circuit_to_tensor_network
from .tensornet.contraction_tree import ContractionTree
from .tensornet.network import TensorNetwork
from .tensornet.simplify import simplify_network

__all__ = ["SimulationPlan", "SimulationPlanner"]


@dataclass
class SimulationPlan:
    """All artefacts of one planning run.

    Attributes
    ----------
    network:
        The (simplified) tensor network.
    tree:
        The chosen contraction tree.
    stem:
        Its stem.
    slicing:
        The process-level slicing decision.
    fused_plan:
        The thread-level fused execution plan.
    timings:
        Thread-level timing breakdowns (``"step-by-step"`` and ``"fused"``).
    subtask_seconds:
        Modelled time of one subtask on one node (fused schedule).
    scalar_prefactor:
        Scalar factor pulled out by the simplifier (multiply the contraction
        value by it).
    cost_model:
        The planner's :class:`~repro.costs.CostModel`, when one was
        supplied; :meth:`scheduler` and the summary's predicted-cost keys
        derive from it.
    measured_stats:
        Execution counters and wall timings of the last
        :meth:`SimulationPlanner.execute_plan` run of this plan (``None``
        until the plan is executed numerically).
    """

    network: TensorNetwork
    tree: ContractionTree
    stem: Stem
    slicing: SlicingResult
    fused_plan: FusedPlan
    timings: Dict[str, ThreadTiming]
    subtask_seconds: float
    scalar_prefactor: complex = 1.0 + 0.0j
    cost_model: Optional[CostModel] = None
    measured_stats: Optional[PlanStats] = None

    @property
    def num_subtasks(self) -> float:
        """Number of independent process-level subtasks."""
        return self.slicing.num_subtasks

    @property
    def total_flops(self) -> float:
        """Total useful flops of the sliced contraction (all subtasks)."""
        return 8.0 * self.tree.total_cost(self.slicing.sliced)

    def predicted_subtask_seconds(self, backend: Optional[str] = None) -> float:
        """The cost model's per-subtask prediction for this plan's slicing."""
        if self.cost_model is None:
            raise ValueError("this plan was made without a cost model")
        return self.cost_model.subtask_seconds(
            self.tree, self.slicing.sliced, backend=backend
        )

    def scheduler(
        self,
        spec: SunwaySpec = SW26010PRO,
        result_bytes: Optional[float] = None,
        backend: Optional[str] = None,
    ) -> ProcessScheduler:
        """A process-level scheduler parameterised by this plan.

        With a cost model attached, the per-subtask time comes from the
        model (per ``backend`` when the model is calibrated); otherwise
        from the thread-level simulator's fused-schedule estimate.
        """
        kwargs = {}
        if result_bytes is not None:
            kwargs["result_bytes"] = result_bytes
        if self.cost_model is not None:
            return ProcessScheduler.from_cost_model(
                self.cost_model,
                self.tree,
                self.slicing.sliced,
                backend=backend,
                spec=spec,
                **kwargs,
            )
        subtask_flops = self.total_flops / max(self.num_subtasks, 1.0)
        return ProcessScheduler(
            subtask_seconds=self.subtask_seconds,
            subtask_flops=subtask_flops,
            spec=spec,
            **kwargs,
        )

    def stage_costs(self, backend: Optional[str] = None) -> List[Dict[str, float]]:
        """Predicted-vs-measured cost rows, one per execution stage.

        ``predicted_seconds`` comes from the cost model (per-subtask
        prediction for the ``"execute"`` stage), ``measured_seconds`` from
        the wall timings of the last numerical execution.  Either column
        is omitted when its source is missing.
        """
        rows: List[Dict[str, float]] = []
        measured = self.measured_stats
        for stage in ("warm_cache", "execute"):
            row: Dict[str, float] = {"stage": stage}  # type: ignore[dict-item]
            if self.cost_model is not None and stage == "execute":
                row["predicted_subtask_seconds"] = self.predicted_subtask_seconds(
                    backend
                )
            if measured is not None and stage in measured.stage_seconds:
                row["measured_seconds"] = measured.stage_seconds[stage]
                if stage == "execute" and measured.subtask_seconds:
                    row["measured_subtask_seconds"] = measured.mean_subtask_seconds
            rows.append(row)
        return rows

    def estimated_seconds(self, num_nodes: int, spec: SunwaySpec = SW26010PRO) -> float:
        """Modelled wall time of the whole contraction on ``num_nodes`` nodes."""
        return self.scheduler(spec).elapsed_seconds(int(round(self.num_subtasks)), num_nodes)

    def headline_projection(
        self,
        measured_nodes: int = 1024,
        projected_nodes: int = 107_520,
        spec: SunwaySpec = SW26010PRO,
    ) -> HeadlineProjection:
        """The §6.2-style projection from a measured node count to the full machine."""
        return HeadlineProjection(
            measured_nodes=measured_nodes,
            measured_seconds=self.estimated_seconds(measured_nodes, spec),
            projected_nodes=projected_nodes,
            total_flops=self.total_flops,
            spec=spec,
        )

    def summary(self) -> Dict[str, float]:
        """Headline planning metrics as a flat dict.

        Predicted-vs-measured keys appear only when their source exists
        (a cost model / an executed plan), so plans made without either
        keep the historical key set.
        """
        fused = self.timings["fused"]
        step = self.timings["step-by-step"]
        summary = {
            "num_tensors": float(self.network.num_tensors),
            "log10_total_cost": self.tree.log10_total_cost(self.slicing.sliced),
            "max_rank": float(self.slicing.max_rank),
            "num_sliced": float(self.slicing.num_sliced),
            "num_subtasks": float(self.num_subtasks),
            "slicing_overhead": self.slicing.overhead,
            "stem_cost_fraction": self.stem.cost_fraction(),
            "fused_groups": float(self.fused_plan.num_groups),
            "average_fused_steps": self.fused_plan.average_fused_steps,
            "arithmetic_intensity_gain": self.fused_plan.intensity_gain(),
            "subtask_seconds": self.subtask_seconds,
            "thread_speedup": step.total_seconds / fused.total_seconds
            if fused.total_seconds
            else math.inf,
        }
        if self.cost_model is not None:
            summary["predicted_subtask_seconds"] = self.predicted_subtask_seconds()
        if self.measured_stats is not None and self.measured_stats.subtask_seconds:
            summary["measured_subtask_seconds"] = (
                self.measured_stats.mean_subtask_seconds
            )
        if self.measured_stats is not None:
            # resilience counters of the executed run: zero everywhere on
            # a clean run, non-zero when crash recovery kicked in
            summary["retries"] = float(self.measured_stats.retries)
            summary["faults"] = float(self.measured_stats.faults)
            summary["recovery_seconds"] = self.measured_stats.recovery_seconds
        return summary


class SimulationPlanner:
    """Plans (and optionally executes) a sliced tensor-network simulation.

    Parameters
    ----------
    target_rank:
        Process-level memory target ``t`` (defaults to what fits in the
        united 96 GB main memory of one node).
    ldm_rank:
        Thread-level memory target (defaults to the LDM rank-13 bound).
    max_trials:
        Trials of the contraction-path hyper-optimizer.
    refine_slices:
        Whether to run the SA slice refiner after the lifetime finder.
    spec:
        Machine description.
    seed:
        Master PRNG seed for all stochastic components.
    backend:
        Optional :class:`~repro.execution.backend.ExecutionBackend` used by
        :meth:`execute_plan` to schedule the slicing subtasks (default
        serial).  Wrap repeated :meth:`execute_plan` calls in
        ``with planner.session(): ...`` (or use the planner itself as a
        context manager) to keep the backend's resident state — the
        process pool of a
        :class:`~repro.execution.backend.SharedMemoryProcessPoolBackend` —
        alive across executions.
    fault_policy:
        Optional :class:`~repro.execution.resilience.FaultPolicy` for
        :meth:`execute_plan`: worker crashes and stuck chunks recover
        (bounded retries, pool rebuilds, degradation) bit-identically to
        a clean run, and the recovery counters surface through
        :meth:`SimulationPlan.summary` (``retries`` / ``faults`` /
        ``recovery_seconds``).  ``None`` (the default) fails fast.
        Requires a ``backend``.
    cost_model:
        Optional :class:`~repro.costs.CostModel` threaded through every
        planning stage: the tree search ranks candidates by its predicted
        seconds, :meth:`SimulationPlan.scheduler` derives the §6.2
        projections from it, and :meth:`SimulationPlan.summary` reports
        predicted-vs-measured cost.  ``None`` keeps every stage
        bit-identical to the uncalibrated behaviour.
    """

    def __init__(
        self,
        target_rank: Optional[int] = None,
        ldm_rank: Optional[int] = None,
        max_trials: int = 16,
        refine_slices: bool = True,
        spec: SunwaySpec = SW26010PRO,
        seed: Optional[int] = None,
        backend: Optional[ExecutionBackend] = None,
        cost_model: Optional[CostModel] = None,
        fault_policy: Optional["FaultPolicy"] = None,
    ) -> None:
        self.spec = spec
        self.hierarchy: MemoryHierarchy = sunway_hierarchy(spec)
        if target_rank is None:
            target_rank = self.hierarchy.target_rank_for("main_memory")
        self.target_rank = int(target_rank)
        self.ldm_rank = int(ldm_rank) if ldm_rank is not None else spec.ldm_max_rank()
        self.max_trials = int(max_trials)
        self.refine_slices = bool(refine_slices)
        self.seed = seed
        self.backend = backend
        self.cost_model = cost_model
        if fault_policy is not None and backend is None:
            raise ValueError("fault_policy requires a backend")
        self.fault_policy = fault_policy

    # ------------------------------------------------------------------
    def session(self):
        """Open (or reuse) the backend's persistent execution session.

        Returns a no-op session when the planner has no backend (serial
        execution has no resident state to keep alive).
        """
        from .execution.backend import NullExecutionSession

        if self.backend is None:
            return NullExecutionSession(None)
        return self.backend.session()

    def close(self) -> None:
        """Release the backend's resident session state (idempotent)."""
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "SimulationPlanner":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def plan_circuit(
        self,
        circuit: Circuit,
        bitstring: Optional[Sequence[int]] = None,
        concrete: bool = False,
    ) -> SimulationPlan:
        """Plan the simulation of one amplitude of ``circuit``."""
        if bitstring is None:
            bitstring = [0] * circuit.num_qubits
        network = circuit_to_tensor_network(circuit, bitstring=bitstring, concrete=concrete)
        report = simplify_network(network)
        return self.plan_network(network, scalar_prefactor=report.scalar_prefactor)

    def plan_network(
        self, network: TensorNetwork, scalar_prefactor: complex = 1.0 + 0.0j
    ) -> SimulationPlan:
        """Plan the contraction of an arbitrary (already simplified) network."""
        optimizer = HyperOptimizer(
            max_trials=self.max_trials,
            minimize="combo",
            memory_target_rank=self.target_rank,
            seed=self.seed,
            cost_model=self.cost_model,
        )
        tree = optimizer.search(network)
        return self.plan_tree(network, tree, scalar_prefactor=scalar_prefactor)

    def plan_tree(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        scalar_prefactor: complex = 1.0 + 0.0j,
    ) -> SimulationPlan:
        """Plan slicing and execution for an existing contraction tree."""
        stem = extract_stem(tree)
        cost_model = SlicingCostModel(tree)

        effective_target = min(self.target_rank, cost_model.max_rank(frozenset()))
        finder = LifetimeSliceFinder(effective_target)
        slicing = finder.find(tree, stem=stem, cost_model=cost_model)
        if self.refine_slices and slicing.sliced:
            refiner = SimulatedAnnealingSliceRefiner(seed=self.seed)
            slicing = refiner.refine(
                tree, slicing.sliced, effective_target, cost_model=cost_model
            )

        secondary = SecondarySlicer(ldm_rank=self.ldm_rank, spec=self.spec)
        fused_plan = secondary.plan(stem, process_sliced=slicing.sliced)

        simulator = ThreadLevelSimulator(spec=self.spec)
        timings = {
            "step-by-step": simulator.simulate_step_by_step(stem, slicing.sliced),
            "fused": simulator.simulate_fused(fused_plan, slicing.sliced),
        }
        # one subtask = the fused stem execution plus the (small) branch
        # pre-contractions; branches are folded in via the tree/stem ratio
        stem_fraction = max(stem.cost_fraction(), 1e-9)
        subtask_seconds = timings["fused"].total_seconds / stem_fraction

        return SimulationPlan(
            network=network,
            tree=tree,
            stem=stem,
            slicing=slicing,
            fused_plan=fused_plan,
            timings=timings,
            subtask_seconds=subtask_seconds,
            scalar_prefactor=scalar_prefactor,
            cost_model=self.cost_model,
        )

    # ------------------------------------------------------------------
    def execute_plan(
        self, plan: SimulationPlan, backend: Optional[ExecutionBackend] = None
    ) -> complex:
        """Numerically execute a plan on a concrete network (small circuits).

        Runs every slicing subtask through ``backend`` (defaulting to the
        planner's backend, then serial) and accumulates the results;
        returns the amplitude including the simplifier's scalar prefactor.
        The run's counters and wall timings land on
        ``plan.measured_stats``, feeding the predicted-vs-measured stage
        report and :class:`~repro.costs.CalibratedCostModel` calibration.
        """
        executor = SlicedExecutor(
            plan.network,
            plan.tree,
            plan.slicing.sliced,
            backend=backend if backend is not None else self.backend,
            cost_model=self.cost_model,
            fault_policy=self.fault_policy,
        )
        amplitude = executor.amplitude() * plan.scalar_prefactor
        plan.measured_stats = executor.stats
        return amplitude
