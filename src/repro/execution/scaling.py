"""Process-level scheduling and strong/weak scaling simulation (Fig. 11, §6.2).

After slicing, the ``2^|S|`` subtasks are embarrassingly parallel: every
process (node) contracts its share of subtasks independently and a single
all-reduce at the end accumulates the amplitudes.  This module models that
execution:

* :class:`ProcessScheduler` distributes subtasks over nodes (block
  distribution, exactly as independent slices are farmed out on the real
  machine) and accounts for the one-off input broadcast and the final
  all-reduce on a tree of the given fan-out;
* :func:`strong_scaling` / :func:`weak_scaling` sweep node counts to
  produce the two panels of Fig. 11;
* :class:`HeadlineProjection` reproduces the §6.2 arithmetic: measured time
  on 1024 nodes, projection to 107 520 nodes, sustained Pflop/s, and the
  comparison against the 2021 Gordon Bell baseline.

The scheduler historically assumed a homogeneous, externally supplied
``subtask_seconds``.  It now also composes with the unified cost model:
:meth:`ProcessScheduler.from_cost_model` (and the ``cost_model=`` forms of
the sweep helpers and :meth:`HeadlineProjection.from_cost_model`) derive
the per-subtask time from a :class:`~repro.costs.CostModel` — when that
model is a :class:`~repro.costs.CalibratedCostModel` fitted from real
runs, the §6.2 projections become self-calibrating, per backend, from
measured data.

With the distributed backend (:mod:`repro.execution.distributed`) the
curve is no longer only modelled: :func:`measure_strong_scaling` runs the
same workload against N real localhost workers per point, verifies every
point bit-identical to the serial reference, fits a calibrated model
(whose distributed coefficients include the measured per-subtask
communication term) and reports measured-vs-predicted
:class:`MeasuredScalingPoint` rows.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..hardware.spec import COMPLEX64_BYTES, SW26010PRO, SunwaySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs.model import CostModel
    from ..tensornet.contraction_tree import ContractionTree
    from ..tensornet.network import TensorNetwork
    from .backend import ExecutionBackend

__all__ = [
    "MeasuredScalingPoint",
    "ProcessScheduler",
    "ScalingPoint",
    "measure_strong_scaling",
    "strong_scaling",
    "weak_scaling",
    "HeadlineProjection",
    "GORDON_BELL_2021_PFLOPS",
]

#: Sustained performance of the 2021 Gordon Bell winner the paper compares to.
GORDON_BELL_2021_PFLOPS = 60.4


@dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve.

    Attributes
    ----------
    num_nodes:
        Nodes used.
    num_subtasks:
        Total subtasks executed.
    elapsed_seconds:
        Modelled wall time.
    compute_seconds:
        Time of the slowest node's subtask execution.
    reduce_seconds:
        Time of the final all-reduce.
    speedup:
        Relative to the smallest node count of the sweep (1.0 there).
    efficiency:
        ``speedup / (nodes / base nodes)`` for strong scaling, or
        ``base time / time`` for weak scaling.
    sustained_flops:
        Aggregate sustained flop rate at this point.
    """

    num_nodes: int
    num_subtasks: int
    elapsed_seconds: float
    compute_seconds: float
    reduce_seconds: float
    speedup: float
    efficiency: float
    sustained_flops: float


class ProcessScheduler:
    """Distributes slicing subtasks over nodes and models the wall time.

    Parameters
    ----------
    subtask_seconds:
        Time of one subtask on one node (from the thread-level simulator or
        a measurement).
    subtask_flops:
        Flops of one subtask (for sustained-rate bookkeeping).
    result_bytes:
        Size of the per-node partial result that the final all-reduce
        combines (one amplitude batch; 1 M single-precision complex
        amplitudes by default).
    spec:
        Machine description (network bandwidth, peak rate).
    reduce_latency_seconds:
        Per-hop latency of the all-reduce tree.
    """

    def __init__(
        self,
        subtask_seconds: float,
        subtask_flops: float,
        result_bytes: float = 1_000_000 * COMPLEX64_BYTES,
        spec: SunwaySpec = SW26010PRO,
        reduce_latency_seconds: float = 5e-6,
    ) -> None:
        if subtask_seconds <= 0:
            raise ValueError("subtask_seconds must be positive")
        self.subtask_seconds = float(subtask_seconds)
        self.subtask_flops = float(subtask_flops)
        self.result_bytes = float(result_bytes)
        self.spec = spec
        self.reduce_latency_seconds = float(reduce_latency_seconds)

    # ------------------------------------------------------------------
    @classmethod
    def from_cost_model(
        cls,
        cost_model: "CostModel",
        tree: "ContractionTree",
        sliced: AbstractSet[str] = frozenset(),
        backend: Optional[str] = None,
        result_bytes: Optional[float] = None,
        spec: SunwaySpec = SW26010PRO,
        reduce_latency_seconds: float = 5e-6,
    ) -> "ProcessScheduler":
        """A scheduler whose subtask time comes from a cost model.

        ``backend`` names the execution substrate the prediction is for
        (meaningful on a :class:`~repro.costs.CalibratedCostModel`, which
        fitted per-backend coefficients from measured subtask seconds);
        the analytic model ignores it.  ``subtask_flops`` is the model's
        :meth:`~repro.costs.CostModel.subtask_work_flops` — the flops of
        the same work the predicted seconds cover, so the derived
        sustained rates stay consistent (a calibrated model times only
        the cache-warm dependent portion of a subtask).
        """
        sliced = frozenset(sliced)
        kwargs = {} if result_bytes is None else {"result_bytes": result_bytes}
        return cls(
            subtask_seconds=cost_model.subtask_seconds(tree, sliced, backend=backend),
            subtask_flops=cost_model.subtask_work_flops(tree, sliced),
            spec=spec,
            reduce_latency_seconds=reduce_latency_seconds,
            **kwargs,
        )

    # ------------------------------------------------------------------
    def subtasks_on_slowest_node(self, num_subtasks: int, num_nodes: int) -> int:
        """Block distribution: the slowest node runs ``ceil(tasks / nodes)``."""
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        return math.ceil(num_subtasks / num_nodes)

    def compute_seconds(self, num_subtasks: int, num_nodes: int) -> float:
        """Computation time of the slowest node."""
        return self.subtasks_on_slowest_node(num_subtasks, num_nodes) * self.subtask_seconds

    def reduce_seconds(self, num_nodes: int) -> float:
        """Binary-tree all-reduce of the partial results."""
        if num_nodes <= 1:
            return 0.0
        hops = math.ceil(math.log2(num_nodes))
        per_hop = self.result_bytes / self.spec.network_bandwidth + self.reduce_latency_seconds
        return hops * per_hop

    def elapsed_seconds(self, num_subtasks: int, num_nodes: int) -> float:
        """Total modelled wall time."""
        return self.compute_seconds(num_subtasks, num_nodes) + self.reduce_seconds(num_nodes)

    def sustained_flops(self, num_subtasks: int, num_nodes: int) -> float:
        """Aggregate sustained flop rate of the run."""
        elapsed = self.elapsed_seconds(num_subtasks, num_nodes)
        total_flops = self.subtask_flops * num_subtasks
        return total_flops / elapsed if elapsed else 0.0

    def parallel_efficiency(self, num_subtasks: int, num_nodes: int) -> float:
        """Fraction of ideal speedup retained at ``num_nodes``."""
        ideal = self.elapsed_seconds(num_subtasks, 1) / num_nodes
        actual = self.elapsed_seconds(num_subtasks, num_nodes)
        return ideal / actual if actual else 0.0


def _resolve_scheduler(
    scheduler: Optional[ProcessScheduler],
    cost_model: Optional["CostModel"],
    tree: Optional["ContractionTree"],
    sliced: AbstractSet[str],
    backend: Optional[str],
    spec: SunwaySpec,
) -> ProcessScheduler:
    """Either the given scheduler or one built from a cost model."""
    if scheduler is not None:
        if cost_model is not None:
            raise ValueError("pass either scheduler or cost_model=, not both")
        return scheduler
    if cost_model is None or tree is None:
        raise ValueError("without a scheduler, pass cost_model= and tree=")
    return ProcessScheduler.from_cost_model(
        cost_model, tree, sliced, backend=backend, spec=spec
    )


def strong_scaling(
    scheduler: Optional[ProcessScheduler] = None,
    num_subtasks: int = 65536,
    node_counts: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096),
    *,
    cost_model: Optional["CostModel"] = None,
    tree: Optional["ContractionTree"] = None,
    sliced: AbstractSet[str] = frozenset(),
    backend: Optional[str] = None,
    spec: SunwaySpec = SW26010PRO,
) -> List[ScalingPoint]:
    """Strong-scaling sweep (fixed total work) — the left panel of Fig. 11.

    Pass either a ready-made ``scheduler`` or ``cost_model=`` plus
    ``tree=`` (and optionally ``sliced=``/``backend=``) to derive the
    per-subtask time from the unified cost model.
    """
    scheduler = _resolve_scheduler(scheduler, cost_model, tree, sliced, backend, spec)
    if not node_counts:
        raise ValueError("node_counts must not be empty")
    base_nodes = node_counts[0]
    base_time = scheduler.elapsed_seconds(num_subtasks, base_nodes)
    points: List[ScalingPoint] = []
    for nodes in node_counts:
        elapsed = scheduler.elapsed_seconds(num_subtasks, nodes)
        speedup = base_time / elapsed if elapsed else 0.0
        efficiency = speedup / (nodes / base_nodes)
        points.append(
            ScalingPoint(
                num_nodes=nodes,
                num_subtasks=num_subtasks,
                elapsed_seconds=elapsed,
                compute_seconds=scheduler.compute_seconds(num_subtasks, nodes),
                reduce_seconds=scheduler.reduce_seconds(nodes),
                speedup=speedup,
                efficiency=efficiency,
                sustained_flops=scheduler.sustained_flops(num_subtasks, nodes),
            )
        )
    return points


def weak_scaling(
    scheduler: Optional[ProcessScheduler] = None,
    subtasks_per_node: int = 16,
    node_counts: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096),
    *,
    cost_model: Optional["CostModel"] = None,
    tree: Optional["ContractionTree"] = None,
    sliced: AbstractSet[str] = frozenset(),
    backend: Optional[str] = None,
    spec: SunwaySpec = SW26010PRO,
) -> List[ScalingPoint]:
    """Weak-scaling sweep (fixed work per node) — the right panel of Fig. 11.

    Accepts the same ``cost_model=``/``tree=`` alternative to a
    ready-made scheduler as :func:`strong_scaling`.
    """
    scheduler = _resolve_scheduler(scheduler, cost_model, tree, sliced, backend, spec)
    if not node_counts:
        raise ValueError("node_counts must not be empty")
    base_nodes = node_counts[0]
    base_time = scheduler.elapsed_seconds(subtasks_per_node * base_nodes, base_nodes)
    points: List[ScalingPoint] = []
    for nodes in node_counts:
        num_subtasks = subtasks_per_node * nodes
        elapsed = scheduler.elapsed_seconds(num_subtasks, nodes)
        efficiency = base_time / elapsed if elapsed else 0.0
        points.append(
            ScalingPoint(
                num_nodes=nodes,
                num_subtasks=num_subtasks,
                elapsed_seconds=elapsed,
                compute_seconds=scheduler.compute_seconds(num_subtasks, nodes),
                reduce_seconds=scheduler.reduce_seconds(nodes),
                speedup=elapsed and base_time / elapsed,
                efficiency=efficiency,
                sustained_flops=scheduler.sustained_flops(num_subtasks, nodes),
            )
        )
    return points


@dataclass(frozen=True)
class MeasuredScalingPoint:
    """One *measured* point of a strong-scaling sweep over real workers.

    Attributes
    ----------
    num_workers:
        Distributed workers the point ran against.
    num_subtasks:
        Total subtasks executed (fixed across the sweep — strong scaling).
    elapsed_seconds:
        Measured wall time of one full run (best of ``repeats``).
    predicted_seconds:
        What the calibrated cost model — fitted from this sweep's own
        per-subtask and communication measurements — predicts for this
        worker count through :meth:`ProcessScheduler.from_cost_model`.
    compute_seconds:
        Workers' own per-subtask compute time, summed across workers
        (per run, averaged over repeats).
    comms_seconds:
        Measured communication overhead of the chunk round-trips (per
        run, averaged over repeats).
    speedup:
        Serial reference time / :attr:`elapsed_seconds`.
    efficiency:
        ``speedup / num_workers``.
    relative_error:
        ``|elapsed - predicted| / elapsed`` — how well the calibrated
        projection matches the measurement at this worker count.
    """

    num_workers: int
    num_subtasks: int
    elapsed_seconds: float
    predicted_seconds: float
    compute_seconds: float
    comms_seconds: float
    speedup: float
    efficiency: float
    relative_error: float


def measure_strong_scaling(
    network: "TensorNetwork",
    tree: "ContractionTree",
    sliced: AbstractSet[str],
    worker_counts: Sequence[int] = (1, 2, 4),
    *,
    repeats: int = 1,
    chunk_size: Optional[int] = None,
    backend_factory: Optional[Callable[[int], "ExecutionBackend"]] = None,
    spec: SunwaySpec = SW26010PRO,
    result_bytes: Optional[float] = None,
    executor_kwargs: Optional[Dict] = None,
    verify_against_serial: bool = True,
) -> List[MeasuredScalingPoint]:
    """Measured strong-scaling sweep against N real localhost workers.

    For each worker count the workload runs on a
    :class:`~repro.execution.distributed.DistributedBackend` inside a
    persistent session (one cold run pays worker spawn + broadcast, then
    the best of ``repeats`` warm runs is the measurement).  Every
    distributed result is checked bit-identical to a serial reference
    run, the per-run calibration records — whose communication terms the
    coordinator measured — fit a
    :class:`~repro.costs.CalibratedCostModel`, and each point carries the
    model's own prediction via :meth:`ProcessScheduler.from_cost_model`,
    so the return value is directly a measured-vs-projected fig-11 row
    set.

    Parameters
    ----------
    network / tree / sliced:
        The workload, exactly as for
        :class:`~repro.execution.SlicedExecutor`.
    worker_counts:
        Distributed worker counts to measure (``1`` is a genuine
        one-worker remote run, not a local shortcut).
    repeats:
        Warm timed runs per point; the minimum is reported.
    chunk_size:
        Forwarded to the backend (default: ~4 chunks per worker).
    backend_factory:
        ``worker count -> backend`` override (tests use it to shim the
        transport); default builds
        ``DistributedBackend(num_workers=n, chunk_size=chunk_size)``.
    spec / result_bytes:
        Forwarded to the predicting scheduler; ``result_bytes`` defaults
        to the workload's actual root-contribution size.
    executor_kwargs:
        Extra :class:`~repro.execution.SlicedExecutor` arguments (e.g.
        ``fused=True``, ``tape_engine="native"``).
    verify_against_serial:
        Disable only when the serial reference itself is too slow to run
        (the sweep then trusts the backend's internal ordered fold).

    Returns one :class:`MeasuredScalingPoint` per worker count, in order.
    """
    import numpy as np

    from ..costs.calibration import CalibratedCostModel
    from .distributed import DistributedBackend
    from .sliced import SlicedExecutor

    if not worker_counts:
        raise ValueError("worker_counts must not be empty")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    kwargs = dict(executor_kwargs or {})

    # serial reference: the bit-identity oracle and the speedup baseline
    serial_executor = SlicedExecutor(network, tree, sliced, **kwargs)
    reference = serial_executor.run()  # warm (plan compile + cache)
    serial_seconds = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        reference = serial_executor.run()
        serial_seconds = min(serial_seconds, time.perf_counter() - start)
    # shape-preserving copy: ascontiguousarray would promote a 0-d
    # amplitude to shape (1,) and break the exact comparison below
    reference_data = np.array(reference.require_data(), copy=True)
    num_subtasks = serial_executor.num_subtasks

    records = []
    measured: List[Tuple[int, float, float, float]] = []
    for count in worker_counts:
        if backend_factory is not None:
            backend = backend_factory(count)
        else:
            backend = DistributedBackend(num_workers=count, chunk_size=chunk_size)
        executor = SlicedExecutor(network, tree, sliced, backend=backend, **kwargs)
        try:
            with executor.session():
                result = executor.run()  # cold: spawn + broadcast
                if verify_against_serial and not np.array_equal(
                    reference_data, np.asarray(result.require_data())
                ):
                    raise RuntimeError(
                        f"distributed result diverged from serial at "
                        f"{count} workers"
                    )
                compute_before = executor.stats.subtask_seconds_sum
                comms_before = executor.stats.comms_seconds
                elapsed = math.inf
                for _ in range(repeats):
                    start = time.perf_counter()
                    result = executor.run()
                    elapsed = min(elapsed, time.perf_counter() - start)
                if verify_against_serial and not np.array_equal(
                    reference_data, np.asarray(result.require_data())
                ):
                    raise RuntimeError(
                        f"distributed result diverged from serial at "
                        f"{count} workers (warm run)"
                    )
                compute = (
                    executor.stats.subtask_seconds_sum - compute_before
                ) / repeats
                comms = (executor.stats.comms_seconds - comms_before) / repeats
            records.append(executor.calibration_record())
            measured.append((count, elapsed, compute, comms))
        finally:
            backend.close()

    model = CalibratedCostModel.fit(records)
    scheduler = ProcessScheduler.from_cost_model(
        model,
        tree,
        frozenset(sliced),
        backend=records[0].key,
        result_bytes=(
            float(reference_data.nbytes) if result_bytes is None else result_bytes
        ),
        spec=spec,
    )
    points: List[MeasuredScalingPoint] = []
    for count, elapsed, compute, comms in measured:
        predicted = scheduler.elapsed_seconds(num_subtasks, count)
        speedup = serial_seconds / elapsed if elapsed else 0.0
        points.append(
            MeasuredScalingPoint(
                num_workers=count,
                num_subtasks=num_subtasks,
                elapsed_seconds=elapsed,
                predicted_seconds=predicted,
                compute_seconds=compute,
                comms_seconds=comms,
                speedup=speedup,
                efficiency=speedup / count if count else 0.0,
                relative_error=(
                    abs(elapsed - predicted) / elapsed if elapsed else math.inf
                ),
            )
        )
    return points


@dataclass
class HeadlineProjection:
    """The §6.2 headline arithmetic.

    Attributes
    ----------
    measured_nodes:
        Node count of the measured run (1024 in the paper).
    measured_seconds:
        Measured/modelled wall time on ``measured_nodes`` (10098.5 s).
    projected_nodes:
        Node count of the projection (107 520 — the full machine).
    total_flops:
        Total useful flops of the workload (all subtasks, all samples).
    spec:
        Machine description.
    """

    measured_nodes: int
    measured_seconds: float
    projected_nodes: int
    total_flops: float
    spec: SunwaySpec = field(default_factory=lambda: SW26010PRO)

    @classmethod
    def from_cost_model(
        cls,
        cost_model: "CostModel",
        tree: "ContractionTree",
        sliced: AbstractSet[str] = frozenset(),
        num_subtasks: Optional[int] = None,
        measured_nodes: int = 1024,
        projected_nodes: int = 107_520,
        backend: Optional[str] = None,
        spec: SunwaySpec = SW26010PRO,
    ) -> "HeadlineProjection":
        """A §6.2 projection whose base point comes from the cost model.

        The "measured" wall time on ``measured_nodes`` is what a
        :meth:`ProcessScheduler.from_cost_model` scheduler predicts for
        this workload on ``backend``; with a calibrated model, that is a
        projection from real per-backend subtask measurements.
        ``num_subtasks`` defaults to ``prod w(e)`` over ``sliced``.
        """
        sliced = frozenset(sliced)
        scheduler = ProcessScheduler.from_cost_model(
            cost_model, tree, sliced, backend=backend, spec=spec
        )
        if num_subtasks is None:
            num_subtasks = int(round(tree.num_subtasks(sliced)))
        return cls(
            measured_nodes=measured_nodes,
            measured_seconds=scheduler.elapsed_seconds(num_subtasks, measured_nodes),
            projected_nodes=projected_nodes,
            total_flops=scheduler.subtask_flops * num_subtasks,
            spec=spec,
        )

    @property
    def projected_seconds(self) -> float:
        """Projected wall time assuming the demonstrated linear scaling."""
        return self.measured_seconds * self.measured_nodes / self.projected_nodes

    @property
    def projected_cores(self) -> int:
        """Cores used by the projected run (41 932 800 in the paper)."""
        return self.projected_nodes * self.spec.cores_per_node

    @property
    def sustained_pflops(self) -> float:
        """Sustained single-precision Pflop/s of the projected run."""
        return self.total_flops / self.projected_seconds / 1e15

    @property
    def peak_fraction(self) -> float:
        """Fraction of the machine's peak sustained by the projection."""
        peak = self.spec.peak_flops_system(self.projected_nodes)
        return (self.total_flops / self.projected_seconds) / peak if peak else 0.0

    def speedup_over_gordon_bell(self, baseline_pflops: float = GORDON_BELL_2021_PFLOPS) -> float:
        """Performance ratio against the 2021 Gordon Bell work (60.4 Pflop/s)."""
        return self.sustained_pflops / baseline_pflops

    def summary(self) -> Dict[str, float]:
        """All headline numbers as a flat dict (used by the benchmark harness)."""
        return {
            "measured_nodes": float(self.measured_nodes),
            "measured_seconds": self.measured_seconds,
            "projected_nodes": float(self.projected_nodes),
            "projected_cores": float(self.projected_cores),
            "projected_seconds": self.projected_seconds,
            "sustained_pflops": self.sustained_pflops,
            "peak_fraction": self.peak_fraction,
            "speedup_over_gb2021": self.speedup_over_gordon_bell(),
        }
