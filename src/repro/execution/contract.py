"""Numerical execution of a contraction tree on a concrete tensor network.

Two execution paths live here:

* the **reference** einsum walker (``compiled=False``) — walks the tree in
  creation order, building an einsum spec string for every pair
  contraction.  It is deliberately simple; correctness of every planning
  component in this package is ultimately checked against it (and it, in
  turn, against the dense state-vector simulator).
* the **compiled** path (the default) — delegates to
  :mod:`repro.execution.plan`, which compiles the tree once into
  ``tensordot`` axis pairs and leaf slicing instructions and reuses the
  plan across calls with the same tree and fixed-index set.
"""

from __future__ import annotations

import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .backend import ExecutionBackend, resolve_backend, validate_execution_args
from .plan import CompiledPlan, compile_plan

__all__ = ["TreeExecutor", "contract_tree"]


class TreeExecutor:
    """Executes a :class:`ContractionTree` over a concrete network.

    Parameters
    ----------
    dtype:
        Optional dtype override for the intermediate tensors (the paper's
        production runs use single-precision complex; tests use double).
    compiled:
        Use the compiled ``tensordot`` plan (default).  ``False`` selects
        the reference einsum walker that everything is cross-checked
        against.
    backend:
        Optional :class:`~repro.execution.backend.ExecutionBackend` the
        single contraction is routed through (a one-assignment subtask
        run); ``None`` executes the plan inline.  Note that one-assignment
        runs always take every backend's in-process serial path, so a
        resident pool session brings no benefit here — the parameter
        exists for API uniformity (one backend object threaded through a
        mixed pipeline); :meth:`close` releases whatever resident state
        that backend holds.  Compiled mode only.
    max_workers:
        Deprecated shim: any non-``None`` value warns and resolves through
        :func:`~repro.execution.backend.resolve_backend` (> 1 maps to a
        thread pool).  Mutually exclusive with ``backend``.
    """

    #: Maximum number of compiled plans memoized per executor instance.
    _PLAN_MEMO_SIZE = 8

    def __init__(
        self,
        dtype: Optional[np.dtype] = None,
        compiled: bool = True,
        backend: Optional[ExecutionBackend] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self._dtype = np.dtype(dtype) if dtype is not None else None
        self._compiled = bool(compiled)
        validate_execution_args(
            "compiled" if self._compiled else "reference",
            backend=backend,
            max_workers=max_workers,
        )
        if max_workers is not None:
            backend = resolve_backend(backend, max_workers)
        self._backend = backend
        # memo keyed on object ids; the network is held through a weakref
        # with an eviction callback, so a dropped network's (potentially
        # huge) tensor data is not pinned and a recycled id cannot collide
        # with a stale entry.  The tree is pinned by the plan itself.
        self._plans: Dict[
            Tuple[int, int, frozenset],
            Tuple["weakref.ref[TensorNetwork]", CompiledPlan],
        ] = {}

    # ------------------------------------------------------------------
    def execute(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        fixed_indices: Optional[Dict[str, int]] = None,
    ) -> Tensor:
        """Contract ``network`` following ``tree``.

        Parameters
        ----------
        network:
            Concrete tensor network.  The network is not mutated.
        tree:
            Contraction tree whose ``leaf_tids`` refer to tensors of
            ``network``.
        fixed_indices:
            Mapping of index label to a fixed value — the slicing assignment
            of one subtask.  Fixed indices are removed from every tensor
            that carries them before contraction.
        """
        fixed_indices = fixed_indices or {}
        if self._compiled:
            plan = self._plan_for(network, tree, frozenset(fixed_indices))
            if self._backend is not None:
                result = self._backend.run_subtasks(plan, network, [fixed_indices])
                assert result is not None
                return result
            return plan.execute(network, fixed_indices)
        return self._execute_reference(network, tree, fixed_indices)

    def _plan_for(
        self, network: TensorNetwork, tree: ContractionTree, sliced: frozenset
    ) -> CompiledPlan:
        key = (id(network), id(tree), sliced)
        hit = self._plans.get(key)
        if hit is not None:
            network_ref, plan = hit
            # the network is mutable: drop the memoized plan if a leaf
            # tensor's axis order changed since compilation
            if network_ref() is network and plan.matches_network(network):
                return plan
            del self._plans[key]
        plan = compile_plan(network, tree, sliced, dtype=self._dtype)
        if len(self._plans) >= self._PLAN_MEMO_SIZE:
            self._plans.pop(next(iter(self._plans)))
        evict = lambda _, plans=self._plans, key=key: plans.pop(key, None)  # noqa: E731
        self._plans[key] = (weakref.ref(network, evict), plan)
        return plan

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backend's resident session state, if any (idempotent)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "TreeExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _execute_reference(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        fixed_indices: Dict[str, int],
    ) -> Tensor:
        """The seed einsum walker, kept verbatim as the reference path."""
        live: Dict[int, Tensor] = {}
        for leaf, tid in enumerate(tree.leaf_tids):
            tensor = network.tensor(tid)
            if tensor.is_abstract:
                raise ValueError(
                    f"tensor {tid} is abstract; the executor needs concrete data"
                )
            if self._dtype is not None and tensor.data is not None:
                tensor = tensor.with_data(np.asarray(tensor.data, dtype=self._dtype))
            for index, value in fixed_indices.items():
                tensor = tensor.slice_index(index, value)
            live[leaf] = tensor

        for node in tree.internal_nodes():
            a, b = tree.children(node)  # type: ignore[misc]
            ta = live.pop(a)
            tb = live.pop(b)
            out_indices = tuple(
                ix for ix in tree.node_indices(node) if ix not in fixed_indices
            )
            live[node] = _contract_pair(ta, tb, out_indices)

        return live[tree.root]

    # ------------------------------------------------------------------
    def amplitude(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        fixed_indices: Optional[Dict[str, int]] = None,
    ) -> complex:
        """Execute and return the scalar value (requires a closed network)."""
        result = self.execute(network, tree, fixed_indices)
        data = result.require_data()
        if data.size != 1:
            raise ValueError(
                f"network is not closed: result has indices {result.indices}"
            )
        return complex(data.reshape(()))


def _contract_pair(ta: Tensor, tb: Tensor, out_indices: Tuple[str, ...]) -> Tensor:
    """einsum contraction of two tensors to the requested output indices."""
    symbols: Dict[str, str] = {}

    def sym(ix: str) -> str:
        if ix not in symbols:
            symbols[ix] = _SYMBOLS[len(symbols)]
        return symbols[ix]

    spec_a = "".join(sym(ix) for ix in ta.indices)
    spec_b = "".join(sym(ix) for ix in tb.indices)
    spec_out = "".join(sym(ix) for ix in out_indices)
    data = np.einsum(
        f"{spec_a},{spec_b}->{spec_out}", ta.require_data(), tb.require_data()
    )
    sizes = {**ta.sizes(), **tb.sizes()}
    sizes = {ix: sizes[ix] for ix in out_indices}
    return Tensor(out_indices, data=data, sizes=sizes, tags=ta.tags | tb.tags)


_SYMBOLS = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    + "".join(chr(c) for c in range(192, 800))
)


def contract_tree(
    network: TensorNetwork,
    tree: ContractionTree,
    fixed_indices: Optional[Dict[str, int]] = None,
    backend: Optional[ExecutionBackend] = None,
    max_workers: Optional[int] = None,
) -> Tensor:
    """One-shot helper around :class:`TreeExecutor` (compiled path).

    The single contraction is a one-assignment run, which every backend
    executes on its in-process serial path — pass a backend for API
    uniformity, not for parallelism (that lives in
    :class:`~repro.execution.sliced.SlicedExecutor`).  ``max_workers`` is
    the deprecated legacy shim (warns; mutually exclusive with
    ``backend``).
    """
    executor = TreeExecutor(backend=backend, max_workers=max_workers)
    return executor.execute(network, tree, fixed_indices)
