"""Numerical execution of a contraction tree on a concrete tensor network.

This is the reference executor: it walks the contraction tree in creation
(topological) order, contracts pairs of numpy tensors with einsum and
returns the root tensor.  Correctness of every planning component in this
package is ultimately checked against it (and it, in turn, against the
dense state-vector simulator).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor

__all__ = ["TreeExecutor", "contract_tree"]


class TreeExecutor:
    """Executes a :class:`ContractionTree` over a concrete network.

    Parameters
    ----------
    dtype:
        Optional dtype override for the intermediate tensors (the paper's
        production runs use single-precision complex; tests use double).
    """

    def __init__(self, dtype: Optional[np.dtype] = None) -> None:
        self._dtype = np.dtype(dtype) if dtype is not None else None

    # ------------------------------------------------------------------
    def execute(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        fixed_indices: Optional[Dict[str, int]] = None,
    ) -> Tensor:
        """Contract ``network`` following ``tree``.

        Parameters
        ----------
        network:
            Concrete tensor network.  The network is not mutated.
        tree:
            Contraction tree whose ``leaf_tids`` refer to tensors of
            ``network``.
        fixed_indices:
            Mapping of index label to a fixed value — the slicing assignment
            of one subtask.  Fixed indices are removed from every tensor
            that carries them before contraction.
        """
        fixed_indices = fixed_indices or {}
        live: Dict[int, Tensor] = {}
        for leaf, tid in enumerate(tree.leaf_tids):
            tensor = network.tensor(tid)
            if tensor.is_abstract:
                raise ValueError(
                    f"tensor {tid} is abstract; the executor needs concrete data"
                )
            if self._dtype is not None and tensor.data is not None:
                tensor = tensor.with_data(np.asarray(tensor.data, dtype=self._dtype))
            for index, value in fixed_indices.items():
                tensor = tensor.slice_index(index, value)
            live[leaf] = tensor

        for node in tree.internal_nodes():
            a, b = tree.children(node)  # type: ignore[misc]
            ta = live.pop(a)
            tb = live.pop(b)
            out_indices = tuple(
                ix for ix in tree.node_indices(node) if ix not in fixed_indices
            )
            live[node] = _contract_pair(ta, tb, out_indices)

        return live[tree.root]

    # ------------------------------------------------------------------
    def amplitude(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        fixed_indices: Optional[Dict[str, int]] = None,
    ) -> complex:
        """Execute and return the scalar value (requires a closed network)."""
        result = self.execute(network, tree, fixed_indices)
        data = result.require_data()
        if data.size != 1:
            raise ValueError(
                f"network is not closed: result has indices {result.indices}"
            )
        return complex(data.reshape(()))


def _contract_pair(ta: Tensor, tb: Tensor, out_indices: Tuple[str, ...]) -> Tensor:
    """einsum contraction of two tensors to the requested output indices."""
    symbols: Dict[str, str] = {}

    def sym(ix: str) -> str:
        if ix not in symbols:
            symbols[ix] = _SYMBOLS[len(symbols)]
        return symbols[ix]

    spec_a = "".join(sym(ix) for ix in ta.indices)
    spec_b = "".join(sym(ix) for ix in tb.indices)
    spec_out = "".join(sym(ix) for ix in out_indices)
    data = np.einsum(
        f"{spec_a},{spec_b}->{spec_out}", ta.require_data(), tb.require_data()
    )
    sizes = {**ta.sizes(), **tb.sizes()}
    sizes = {ix: sizes[ix] for ix in out_indices}
    return Tensor(out_indices, data=data, sizes=sizes, tags=ta.tags | tb.tags)


_SYMBOLS = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    + "".join(chr(c) for c in range(192, 800))
)


def contract_tree(
    network: TensorNetwork,
    tree: ContractionTree,
    fixed_indices: Optional[Dict[str, int]] = None,
) -> Tensor:
    """One-shot helper around :class:`TreeExecutor`."""
    return TreeExecutor().execute(network, tree, fixed_indices)
