"""Durable checkpointed execution: a crash-safe chunk ledger on disk.

Every recovery path of the resilience layer
(:mod:`repro.execution.resilience`) lives in the coordinator's memory: a
worker death, a wedged chunk, or a dropped connection is healed without
losing the contributions already harvested — but a *coordinator* crash
(OOM kill, node reboot, power loss) loses the entire sliced contraction.
This module closes that gap with a write-ahead chunk ledger:

* :class:`CheckpointStore` — a directory of *jobs*, each keyed by a
  content fingerprint of the run (:func:`job_fingerprint`: leaf data,
  contraction tree, slicing assignments, batch-axis count, plus the
  fault policy and chunking the run was configured with).
* :class:`CheckpointJob` — one run's ledger: a ``manifest.json``, a
  ``stats.json`` with the resilience counters accumulated across
  restarts, and one checksummed record per completed ordered slot under
  ``slots/``.  Records are written atomically (tmp file → ``fsync`` →
  ``os.replace`` → directory ``fsync``), so a crash can lose at most the
  unflushed tail — never corrupt a persisted slot.

The backends persist each ordered contribution as it is harvested
(``ExecutionBackend.run_subtasks(checkpoint=...)``), batched every
``FaultPolicy.checkpoint_every`` completions to bound the overhead.  On
restart, :meth:`~repro.execution.SlicedExecutor.run` with ``resume=``
(or a policy carrying ``checkpoint_dir``) re-opens the job: a matching
fingerprint pre-fills the ordered slots from the ledger and re-runs only
the missing assignments; a mismatch invalidates the ledger and starts
clean.  Because the backends fold per-position contributions strictly in
assignment order after all slots fill, a resumed run is **bit-identical**
to an uninterrupted one on every backend × stepwise/fused/tape-engine
combination — the same ordered-accumulation contract that already makes
recovered and degraded runs exact.

Integrity is end-to-end: workers ship a CRC-32 per contribution with
every chunk (:func:`payload_checksums`), the coordinator verifies it at
harvest (:func:`verify_payload`) *before* a slot is written into the
ledger, and slot records carry their own checksum verified at load.  A
corrupted chunk payload (see the ``"corrupt-result"`` kind in
:mod:`repro.execution.faultinject`) therefore surfaces as an ordinary
chunk failure routed through the per-chunk retry budget — a poisoned
slot is never persisted — and a torn or bit-rotted record on disk is
dropped (and re-run) instead of folded into the result.

Concurrent coordinators are excluded per job with a pid-stamped
``job.lock``; a lock left by a dead coordinator is stolen on resume.
Stores raise :exc:`CheckpointError` on unwritable roots — durability is
fail-fast, never silently absent.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import pickle
import shutil
import zlib
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..tensornet.contraction_tree import ContractionTree
    from ..tensornet.network import TensorNetwork
    from .plan import PlanStats
    from .resilience import FaultPolicy

__all__ = [
    "CheckpointError",
    "CheckpointJob",
    "CheckpointStore",
    "job_fingerprint",
    "payload_checksums",
    "verify_payload",
]

#: On-disk format version stamped into manifests and slot records.
_FORMAT_VERSION = 1

#: Store roots created in this process — the test suite's orphan audit
#: (``tests/conftest.py``) scans these for leftover ``*.tmp`` / ``*.lock``
#: files after every test, so interrupted-write cleanup is enforced
#: suite-wide.
_AUDIT_ROOTS: Set[str] = set()

#: The resilience counters persisted in ``stats.json`` and accumulated
#: across coordinator restarts.
_STATS_FIELDS = ("retries", "faults", "recovery_seconds")


class CheckpointError(RuntimeError):
    """A checkpoint store is unusable (unwritable root, lock conflict)."""


# ----------------------------------------------------------------------
# Payload integrity (wire-level, used by every backend's harvest path)
# ----------------------------------------------------------------------
def _array_crc(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def payload_checksums(arrays: Sequence[np.ndarray]) -> List[int]:
    """CRC-32 per contribution, computed where the chunk was executed.

    Shipped alongside the result arrays so the coordinator can verify the
    payload survived the trip (process boundary, socket, shared memory)
    intact — the detection path for the ``"corrupt-result"`` fault kind.
    """
    return [_array_crc(array) for array in arrays]


def verify_payload(
    arrays: Sequence[np.ndarray], checksums: Optional[Sequence[int]]
) -> bool:
    """Whether every contribution matches its shipped checksum.

    ``None`` checksums (a pre-checksum producer) verify trivially, so the
    harvest paths can call this unconditionally.
    """
    if checksums is None:
        return True
    if len(checksums) != len(arrays):
        return False
    return all(
        _array_crc(array) == checksum for array, checksum in zip(arrays, checksums)
    )


# ----------------------------------------------------------------------
# Job fingerprint
# ----------------------------------------------------------------------
def job_fingerprint(
    network: "TensorNetwork",
    tree: "ContractionTree",
    sliced: Sequence[str],
    assignments: Sequence[Mapping[str, int]],
    sum_batch_axes: int = 0,
    dtype: Optional[object] = None,
    policy: Optional["FaultPolicy"] = None,
    chunk_size: Optional[int] = None,
) -> str:
    """Content hash identifying a resumable run.

    Unlike the identity-based fingerprints of the in-memory sessions
    (which die with the process), this one is computed from *content*:
    the raw bytes of every leaf tensor, the contraction tree's SSA path,
    the sliced index set, the ordered assignment schedule, the batch-axis
    count, and — per the ledger contract — the fault policy's recovery
    shape and the backend's chunking.  Anything that could change the
    accumulated value (or the meaning of a slot position) changes the
    fingerprint; anything that provably cannot (backend choice, worker
    count, fused/stepwise/tape-engine, array module) is deliberately
    excluded, so a ledger written by one backend seeds a resume on any
    other.
    """
    digest = hashlib.sha256(b"repro-checkpoint-v%d" % _FORMAT_VERSION)

    def feed(text: str) -> None:
        digest.update(text.encode("utf-8"))
        digest.update(b"\x00")

    feed(repr(tuple(tree.ssa_path)))
    feed(repr(tuple(sorted(sliced))))
    for tid in tree.leaf_tids:
        tensor = network.tensor(tid)
        data = np.ascontiguousarray(tensor.require_data())
        feed(f"leaf:{tid}:{tensor.indices!r}:{data.dtype.str}:{data.shape!r}")
        digest.update(data.tobytes())
        digest.update(b"\x00")
    feed(f"batch-axes:{int(sum_batch_axes)}")
    feed(f"dtype:{np.dtype(dtype).str if dtype is not None else None}")
    for assignment in assignments:
        feed(repr(tuple(sorted(assignment.items()))))
    feed(repr(_policy_descriptor(policy)))
    feed(f"chunking:{chunk_size}")
    return digest.hexdigest()


def _policy_descriptor(policy: Optional["FaultPolicy"]) -> Optional[Tuple]:
    if policy is None:
        return None
    return (policy.mode, policy.max_retries, policy.checkpoint_every)


# ----------------------------------------------------------------------
# Atomic file helpers
# ----------------------------------------------------------------------
def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write-ahead discipline: tmp file, flush, fsync, rename.

    A crash at any point leaves either the old file, the new file, or an
    orphaned ``*.tmp`` that the next attach sweeps — never a torn
    ``path``.  The caller fsyncs the directory once per flush batch.
    """
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class CheckpointStore:
    """A root directory of fingerprint-keyed :class:`CheckpointJob` ledgers.

    One store can hold many jobs (e.g. a :class:`CorrelatedSampler`
    writes one per base bitstring — each batch contracts a different
    network, so each gets its own fingerprint and ledger).  Construction
    fails fast on an unwritable root: a run configured for durability
    must never silently run without it.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint root {self.root} is not creatable: {exc}"
            ) from exc
        if not os.access(self.root, os.W_OK | os.X_OK):
            raise CheckpointError(f"checkpoint root {self.root} is not writable")
        _AUDIT_ROOTS.add(str(self.root))

    def job(
        self,
        fingerprint: str,
        num_slots: int,
        every: int = 1,
        policy: Optional["FaultPolicy"] = None,
        chunk_size: Optional[int] = None,
    ) -> "CheckpointJob":
        """Open (resuming) or create the ledger for ``fingerprint``."""
        return CheckpointJob(
            self, fingerprint, num_slots, every, policy=policy, chunk_size=chunk_size
        )

    def jobs(self) -> List[str]:
        """Fingerprints of the ledgers currently present in the store."""
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if entry.is_dir() and (entry / "manifest.json").exists()
        )

    def clear(self) -> None:
        """Remove every ledger (a fresh store)."""
        for entry in list(self.root.iterdir()):
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckpointStore(root={str(self.root)!r})"


class CheckpointJob:
    """One run's write-ahead ledger; see the module docstring for the model.

    Attributes
    ----------
    loaded:
        Validated per-position contributions recovered from a previous
        (interrupted) run of the same fingerprint.  The backends pre-fill
        their ordered slots from this dict and re-run only the rest.
    prior_stats:
        The resilience counters persisted by previous runs;
        :meth:`attach_stats` merges them into the live
        :class:`~repro.execution.plan.PlanStats` so retries/faults/
        recovery seconds accumulate across restarts.
    """

    def __init__(
        self,
        store: CheckpointStore,
        fingerprint: str,
        num_slots: int,
        every: int = 1,
        policy: Optional["FaultPolicy"] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        if every < 1:
            raise ValueError("every must be >= 1")
        self.fingerprint = fingerprint
        self.num_slots = int(num_slots)
        self.every = int(every)
        self.dir = store.root / fingerprint
        self._slots_dir = self.dir / "slots"
        self._lock_path = self.dir / "job.lock"
        self._manifest_path = self.dir / "manifest.json"
        self._stats_path = self.dir / "stats.json"
        self._closed = False
        self._locked = False
        self._buffer: List[Tuple[int, str, Tuple[int, ...], bytes, int]] = []
        self._recorded: Set[int] = set()
        self._stats: Optional["PlanStats"] = None
        self._stats_offsets: Dict[str, float] = {}
        self.loaded: Dict[int, np.ndarray] = {}
        self.prior_stats: Dict[str, float] = {}
        try:
            self._slots_dir.mkdir(parents=True, exist_ok=True)
            self._acquire_lock()
            self._attach(policy, chunk_size)
        except CheckpointError:
            raise
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint job directory {self.dir} is not writable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Locking
    # ------------------------------------------------------------------
    def _acquire_lock(self) -> None:
        for attempt in (0, 1):
            try:
                fd = os.open(
                    self._lock_path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                holder = self._lock_holder()
                if holder is not None and _pid_alive(holder) and holder != os.getpid():
                    raise CheckpointError(
                        f"checkpoint job {self.fingerprint[:12]} is locked by "
                        f"live coordinator pid {holder}"
                    )
                # a dead coordinator's lock: steal it (the whole point of
                # the ledger is surviving exactly that death)
                try:
                    os.unlink(self._lock_path)
                except FileNotFoundError:  # pragma: no cover - lost race
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._locked = True
            return
        raise CheckpointError(  # pragma: no cover - needs a racing writer
            f"could not acquire checkpoint lock {self._lock_path}"
        )

    def _lock_holder(self) -> Optional[int]:
        try:
            return int(self._lock_path.read_text().strip())
        except (OSError, ValueError):
            return None

    def _release_lock(self) -> None:
        if not self._locked:
            return
        self._locked = False
        try:
            os.unlink(self._lock_path)
        except FileNotFoundError:  # pragma: no cover - dir already removed
            pass

    # ------------------------------------------------------------------
    # Attach: validate the manifest, sweep torn writes, load the slots
    # ------------------------------------------------------------------
    def _attach(
        self, policy: Optional["FaultPolicy"], chunk_size: Optional[int]
    ) -> None:
        manifest = self._read_manifest()
        if manifest is None or not self._manifest_matches(manifest):
            # fingerprint mismatch (or corrupt/renamed manifest): the
            # ledger describes some other run — invalidate it wholesale
            self._invalidate()
            self._write_manifest(policy, chunk_size)
            return
        self._sweep_tmp_files()
        self._load_slots()
        self._load_prior_stats()

    def _read_manifest(self) -> Optional[Dict]:
        try:
            manifest = json.loads(self._manifest_path.read_text())
        except (OSError, ValueError):
            return None
        return manifest if isinstance(manifest, dict) else None

    def _manifest_matches(self, manifest: Dict) -> bool:
        return (
            manifest.get("version") == _FORMAT_VERSION
            and manifest.get("fingerprint") == self.fingerprint
            and manifest.get("num_slots") == self.num_slots
        )

    def _write_manifest(
        self, policy: Optional["FaultPolicy"], chunk_size: Optional[int]
    ) -> None:
        manifest = {
            "version": _FORMAT_VERSION,
            "fingerprint": self.fingerprint,
            "num_slots": self.num_slots,
            "policy": _policy_descriptor(policy),
            "chunking": chunk_size,
        }
        _atomic_write(self._manifest_path, json.dumps(manifest, indent=2).encode())
        _fsync_dir(self.dir)

    def _invalidate(self) -> None:
        for entry in list(self.dir.iterdir()):
            if entry == self._lock_path:
                continue
            if entry.is_dir():
                shutil.rmtree(entry, ignore_errors=True)
            else:
                entry.unlink(missing_ok=True)
        self._slots_dir.mkdir(parents=True, exist_ok=True)
        self.loaded = {}
        self.prior_stats = {}

    def _sweep_tmp_files(self) -> None:
        # a crash between tmp-write and rename leaves an orphan; it holds
        # nothing durable (the rename never happened), so remove it
        for tmp in list(self.dir.rglob("*.tmp")):
            tmp.unlink(missing_ok=True)

    def _load_slots(self) -> None:
        for path in sorted(self._slots_dir.glob("*.slot")):
            record = self._read_slot(path)
            if record is None:
                # torn or bit-rotted record: drop it — the slot simply
                # re-runs, which is always safe
                path.unlink(missing_ok=True)
                continue
            position, array = record
            self.loaded[position] = array
            self._recorded.add(position)

    def _read_slot(self, path: Path) -> Optional[Tuple[int, np.ndarray]]:
        try:
            record = pickle.loads(path.read_bytes())
            position = int(record["position"])
            data = record["data"]
            if record["version"] != _FORMAT_VERSION:
                return None
            if not 0 <= position < self.num_slots:
                return None
            if path.stem != f"{position:08d}":
                return None
            if zlib.crc32(data) != record["crc"]:
                return None
            array = np.frombuffer(data, dtype=np.dtype(record["dtype"]))
            return position, array.reshape(record["shape"]).copy()
        except Exception:
            return None

    def _load_prior_stats(self) -> None:
        try:
            persisted = json.loads(self._stats_path.read_text())
        except (OSError, ValueError):
            return
        if isinstance(persisted, dict):
            self.prior_stats = {
                key: float(persisted.get(key, 0.0)) for key in _STATS_FIELDS
            }

    # ------------------------------------------------------------------
    # Live-run API
    # ------------------------------------------------------------------
    def attach_stats(self, stats: Optional["PlanStats"]) -> None:
        """Bind the live counters; merge what previous runs persisted.

        After this call ``stats`` reports the cumulative job (its
        ``retries``/``faults``/``recovery_seconds`` include every prior
        restart), and each flush persists the cumulative values back —
        net of whatever the executor had accumulated *before* this run,
        so unrelated history on a shared stats object is never claimed
        by the ledger.
        """
        self._stats = stats
        if stats is None:
            return
        self._stats_offsets = {
            field: float(getattr(stats, field)) for field in _STATS_FIELDS
        }
        for field, prior in self.prior_stats.items():
            setattr(stats, field, getattr(stats, field) + type(getattr(stats, field))(prior))
        stats.resumed_slots += len(self.loaded)

    def record(self, position: int, array: np.ndarray) -> None:
        """Write-ahead one completed ordered slot (buffered).

        The array's bytes are captured *now* — the ordered fold mutates
        contribution buffers in place, so deferring serialization to the
        flush would persist post-fold garbage.  Every ``every``-th record
        flushes the buffer to disk; positions already durable (or loaded
        from a previous run) are skipped.
        """
        if self._closed or position in self._recorded:
            return
        if not 0 <= position < self.num_slots:
            raise ValueError(f"slot position {position} out of range")
        data = np.ascontiguousarray(array)
        # np.ascontiguousarray promotes 0-d arrays to shape (1,); persist
        # the *original* shape so a scalar slot round-trips as a scalar
        self._buffer.append(
            (position, data.dtype.str, tuple(np.shape(array)), data.tobytes(), None)
        )
        self._recorded.add(position)
        if self._stats is not None:
            self._stats.checkpointed_slots += 1
        if len(self._buffer) >= self.every:
            self.flush()

    def record_chunk(self, positions: Sequence[int], arrays: Sequence[np.ndarray]) -> None:
        """Record one harvested chunk's slots (positions zip with arrays)."""
        for position, array in zip(positions, arrays):
            self.record(position, array)

    def flush(self) -> None:
        """Make every buffered record (and the stats snapshot) durable."""
        if self._closed:
            return
        buffered, self._buffer = self._buffer, []
        for position, dtype_str, shape, data, _ in buffered:
            record = {
                "version": _FORMAT_VERSION,
                "position": position,
                "dtype": dtype_str,
                "shape": tuple(shape),
                "data": data,
                "crc": zlib.crc32(data),
            }
            _atomic_write(
                self._slots_dir / f"{position:08d}.slot",
                pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL),
            )
        self._write_stats()
        if buffered:
            _fsync_dir(self._slots_dir)
        _fsync_dir(self.dir)

    def _write_stats(self) -> None:
        if self._stats is None:
            return
        snapshot = {
            field: getattr(self._stats, field) - self._stats_offsets.get(field, 0.0)
            for field in _STATS_FIELDS
        }
        _atomic_write(
            self._stats_path, json.dumps(snapshot, indent=2).encode()
        )

    @property
    def recorded_slots(self) -> int:
        """Slots this job holds (loaded from disk plus recorded live)."""
        return len(self._recorded)

    @property
    def closed(self) -> bool:
        return self._closed

    def complete(self) -> None:
        """The run finished: the ledger's purpose is served — remove it."""
        if self._closed:
            return
        self._closed = True
        self._buffer = []
        self._release_lock()
        shutil.rmtree(self.dir, ignore_errors=True)

    def close(self) -> None:
        """Flush and release the lock, keeping the ledger for a resume."""
        if self._closed:
            return
        try:
            self.flush()
        finally:
            self._closed = True
            self._release_lock()

    def __enter__(self) -> "CheckpointJob":
        return self

    def __exit__(self, exc_type: object, *exc: object) -> None:
        # clean exit retires the ledger; an exceptional one keeps it
        if exc_type is None:
            self.complete()
        else:
            self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointJob({self.fingerprint[:12]}..., "
            f"{self.recorded_slots}/{self.num_slots} slots)"
        )


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign live pid
        return True
    except OSError as exc:  # pragma: no cover - platform-specific
        return exc.errno not in (errno.ESRCH,)
    return True
