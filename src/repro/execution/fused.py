"""Thread-level execution simulation: step-by-step versus fused (Fig. 12/13).

The real machine executes each slicing subtask on one core group: the stem
tensor lives in main memory and every contraction step is carried out by
the 64 CPEs.  The paper compares two schedules:

* **step-by-step** (previous work): every contraction step DMA-gets its
  operands into the LDMs, permutes, multiplies and DMA-puts the result —
  memory access dominates and the kernels sit far below the Roofline ridge;
* **fused** (secondary slicing, §5): a whole sub-path runs inside LDM
  between one DMA-get and one DMA-put, with the scattered main-memory
  accesses repaired by the cooperative DMA + RMA scheme of §5.3.2 and the
  permutation maps compressed by the recursion formula of §5.3.1.

:class:`ThreadLevelSimulator` produces the per-component timing breakdown
(memory access / permutation / GEMM) of both schedules from the analytical
hardware models, which is exactly the data plotted in Fig. 12, plus the
achieved flop rate and arithmetic intensity needed for the Roofline of
Fig. 13.

This module *models* the Sunway hardware; the same fused schedule is
*executed* for real by the compiled-plan layer — see
:mod:`repro.execution.fusion` (fused runs over the arena, §5.3.1
permutation kernels) and ``SlicedExecutor(..., fused=True)``.  Both are
driven by the group boundaries of
:class:`~repro.core.secondary.SecondarySlicer`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

from ..core.secondary import FusedPlan, SecondarySlicer
from ..core.stem import Stem
from ..hardware.dma import (
    DMAEngine,
    RMAEngine,
    cooperative_transfer_time,
    naive_strided_transfer_time,
)
from ..hardware.gemm import GEMMModel, GEMMShape
from ..hardware.roofline import RooflineModel, RooflinePoint
from ..hardware.spec import COMPLEX64_BYTES, SW26010PRO, SunwaySpec

__all__ = ["ThreadTiming", "ThreadLevelSimulator"]


@dataclass
class ThreadTiming:
    """Timing breakdown of one subtask's stem execution on one core group.

    Attributes
    ----------
    label:
        Schedule name (``"step-by-step"`` or ``"fused"``).
    memory_access_seconds:
        DMA time between main memory and the LDMs.
    rma_seconds:
        CPE↔CPE data-rearrangement time (only used by the fused schedule's
        cooperative transfers).
    permutation_seconds:
        In-LDM tensor permutation time before the GEMM kernels.
    gemm_seconds:
        Matrix-multiplication time.
    flops:
        Real floating-point operations executed.
    dma_bytes:
        Bytes moved between main memory and the LDMs.
    """

    label: str
    memory_access_seconds: float = 0.0
    rma_seconds: float = 0.0
    permutation_seconds: float = 0.0
    gemm_seconds: float = 0.0
    flops: float = 0.0
    dma_bytes: float = 0.0

    @property
    def total_seconds(self) -> float:
        """Wall time of the schedule (components execute back to back)."""
        return (
            self.memory_access_seconds
            + self.rma_seconds
            + self.permutation_seconds
            + self.gemm_seconds
        )

    @property
    def arithmetic_intensity(self) -> float:
        """flop per DMA byte (the Roofline x-coordinate)."""
        return self.flops / self.dma_bytes if self.dma_bytes else math.inf

    @property
    def achieved_flops(self) -> float:
        """Sustained flop rate of the schedule."""
        return self.flops / self.total_seconds if self.total_seconds else 0.0

    def roofline_point(self) -> RooflinePoint:
        """This schedule as a point on the Roofline plot."""
        return RooflinePoint(
            label=self.label,
            arithmetic_intensity=self.arithmetic_intensity,
            achieved_flops=self.achieved_flops,
        )

    def breakdown(self) -> Dict[str, float]:
        """Component times as a plain dict (used by the Fig. 12 bench)."""
        return {
            "memory_access": self.memory_access_seconds,
            "rma": self.rma_seconds,
            "permutation": self.permutation_seconds,
            "gemm": self.gemm_seconds,
            "total": self.total_seconds,
        }


class ThreadLevelSimulator:
    """Analytical simulator of one core group executing a stem.

    Parameters
    ----------
    spec:
        Machine description.
    element_bytes:
        Element width (single-precision complex by default).
    cooperative_dma:
        Whether the fused schedule uses the §5.3.2 cooperative DMA + RMA
        scheme (disable to reproduce the "<0.1 % of peak" naive behaviour).
    reduced_permutation_maps:
        Whether the §5.3.1 recursion-formula maps are used (disabling falls
        back to in-situ address computation, modelled as a constant-factor
        slowdown of the permutation passes).
    in_situ_penalty:
        Cost multiplier of in-situ address computation relative to a stored
        map (the paper quotes "more than 10 times the cost" for rank-10
        tensors).
    """

    def __init__(
        self,
        spec: SunwaySpec = SW26010PRO,
        element_bytes: int = COMPLEX64_BYTES,
        cooperative_dma: bool = True,
        reduced_permutation_maps: bool = True,
        in_situ_penalty: float = 10.0,
    ) -> None:
        self.spec = spec
        self.element_bytes = int(element_bytes)
        self.cooperative_dma = bool(cooperative_dma)
        self.reduced_permutation_maps = bool(reduced_permutation_maps)
        self.in_situ_penalty = float(in_situ_penalty)
        self.dma = DMAEngine(spec)
        self.rma = RMAEngine(spec)
        self.gemm = GEMMModel(spec)
        # aggregate LDM access bandwidth of one CG (permutations stream
        # through LDM at SRAM speed on all 64 CPEs simultaneously)
        self.ldm_stream_bandwidth = self.gemm.ldm_access_bandwidth * spec.cpes_per_cg

    # ------------------------------------------------------------------
    # Shared per-step quantities
    # ------------------------------------------------------------------
    def _step_sizes(
        self, stem: Stem, position: int, process_sliced: AbstractSet[str]
    ) -> Tuple[float, float, float, float]:
        """(input log2, branch log2, output log2, contracted log2) of a step."""
        tree = stem.tree
        step = stem.steps[position]
        if position == 0:
            in_ix = frozenset(tree.node_indices(stem.start_node)) - process_sliced
        else:
            in_ix = stem.steps[position - 1].result_indices - process_sliced
        branch_ix = step.branch_indices - process_sliced
        out_ix = step.result_indices - process_sliced
        in_log2 = sum(tree.log2_index_size(ix) for ix in in_ix)
        branch_log2 = sum(tree.log2_index_size(ix) for ix in branch_ix)
        out_log2 = sum(tree.log2_index_size(ix) for ix in out_ix)
        contracted_log2 = (in_log2 + branch_log2 - out_log2) / 2.0
        return in_log2, branch_log2, out_log2, contracted_log2

    def _gemm_seconds(
        self, in_log2: float, branch_log2: float, contracted_log2: float
    ) -> Tuple[float, float]:
        """(seconds on one CG, flops) of one contraction step."""
        flops = 8.0 * 2.0 ** (in_log2 + branch_log2 - contracted_log2)
        # distribute the GEMM over the CG's CPEs: each handles 1/64 of the
        # independent m-rows (or of the secondary subtasks)
        per_cpe_shape = self.gemm.contraction_shape(
            max(in_log2 - math.log2(self.spec.cpes_per_cg), contracted_log2),
            branch_log2,
            contracted_log2,
        )
        fraction = self.gemm.achievable_fraction(per_cpe_shape)
        seconds = flops / (self.spec.peak_flops_per_cg * fraction)
        return seconds, flops

    def _permutation_seconds(self, elements: float, rank: float) -> float:
        """Time to permute ``elements`` elements inside LDM before a GEMM."""
        bytes_moved = 2.0 * elements * self.element_bytes  # one read + one write pass
        seconds = bytes_moved / self.ldm_stream_bandwidth
        if not self.reduced_permutation_maps:
            seconds *= self.in_situ_penalty
        return seconds

    # ------------------------------------------------------------------
    # Step-by-step schedule
    # ------------------------------------------------------------------
    def simulate_step_by_step(
        self,
        stem: Stem,
        process_sliced: AbstractSet[str] = frozenset(),
        steps: Optional[Sequence[int]] = None,
    ) -> ThreadTiming:
        """Timing of the unfused schedule over (a range of) the stem."""
        timing = ThreadTiming(label="step-by-step")
        positions = range(len(stem.steps)) if steps is None else steps
        for position in positions:
            in_log2, branch_log2, out_log2, contracted_log2 = self._step_sizes(
                stem, position, process_sliced
            )
            moved_elements = 2.0**in_log2 + 2.0**branch_log2 + 2.0**out_log2
            moved_bytes = moved_elements * self.element_bytes
            # contiguous tiles per CPE: granularity is the per-CPE share
            granularity = max(
                moved_bytes / self.spec.cpes_per_cg / 8.0, self.element_bytes
            )
            timing.memory_access_seconds += self.dma.transfer_time(moved_bytes, granularity)
            timing.dma_bytes += moved_bytes
            timing.permutation_seconds += self._permutation_seconds(
                2.0**in_log2 + 2.0**branch_log2, in_log2
            )
            gemm_seconds, flops = self._gemm_seconds(in_log2, branch_log2, contracted_log2)
            timing.gemm_seconds += gemm_seconds
            timing.flops += flops
        return timing

    # ------------------------------------------------------------------
    # Fused schedule
    # ------------------------------------------------------------------
    def simulate_fused(
        self,
        plan: FusedPlan,
        process_sliced: AbstractSet[str] = frozenset(),
    ) -> ThreadTiming:
        """Timing of the fused (secondary-slicing) schedule of a planned stem."""
        timing = ThreadTiming(label="fused")
        stem = plan.stem
        for group in plan.groups:
            in_elements = 2.0 ** len(group.input_indices)
            out_elements = 2.0 ** len(group.output_indices)
            # branch tensors still stream in once per step (they are small)
            branch_elements = 0.0
            for position in range(group.start, group.stop):
                _, branch_log2, _, _ = self._step_sizes(stem, position, process_sliced)
                branch_elements += 2.0**branch_log2

            moved_bytes = (in_elements + out_elements + branch_elements) * self.element_bytes
            timing.dma_bytes += moved_bytes

            if self.cooperative_dma:
                transfer = cooperative_transfer_time(moved_bytes, self.spec)
                timing.memory_access_seconds += transfer.dma_seconds
                timing.rma_seconds += transfer.rma_seconds
            else:
                # scattered sub-tensor access: contiguous runs shrink to the
                # trailing unsliced block, often a single element
                transfer = naive_strided_transfer_time(
                    moved_bytes, float(self.element_bytes), self.spec
                )
                timing.memory_access_seconds += transfer.dma_seconds

            for position in range(group.start, group.stop):
                in_log2, branch_log2, out_log2, contracted_log2 = self._step_sizes(
                    stem, position, process_sliced
                )
                # inside LDM the secondary-sliced indices are absent; across
                # all secondary subtasks the full stem data is permuted once
                # per step, and the (shared) branch tensor once per step
                sliced_log2 = sum(
                    stem.tree.log2_index_size(ix)
                    for ix in group.secondary_sliced
                    if ix not in process_sliced
                )
                ldm_in = max(in_log2 - sliced_log2, 0.0)
                stem_elements_all_subtasks = 2.0**ldm_in * group.num_subtasks
                timing.permutation_seconds += self._permutation_seconds(
                    stem_elements_all_subtasks + 2.0**branch_log2, ldm_in
                )
                gemm_seconds, flops = self._gemm_seconds(in_log2, branch_log2, contracted_log2)
                timing.gemm_seconds += gemm_seconds
                timing.flops += flops
        return timing

    # ------------------------------------------------------------------
    def compare(
        self,
        stem: Stem,
        process_sliced: AbstractSet[str] = frozenset(),
        ldm_rank: Optional[int] = None,
    ) -> Dict[str, ThreadTiming]:
        """Plan with :class:`SecondarySlicer` and simulate both schedules."""
        slicer = SecondarySlicer(ldm_rank=ldm_rank, spec=self.spec)
        plan = slicer.plan(stem, process_sliced=process_sliced)
        return {
            "step-by-step": self.simulate_step_by_step(stem, process_sliced),
            "fused": self.simulate_fused(plan, process_sliced),
        }

    def roofline(self) -> RooflineModel:
        """Roofline model of one core group (for Fig. 13)."""
        return RooflineModel(spec=self.spec)
