"""Pluggable execution backends: *what* to contract vs *how* to run it.

The paper's process-level strategy farms the ``prod w(e)`` slicing subtasks
across workers while keeping each worker's footprint under the memory
target.  Which *scheduling substrate* runs the subtasks — in-process serial,
a thread pool, a process pool — is orthogonal to the compiled plan that
describes them, so this module separates the two behind a small protocol
(the split used by engines such as QTensor's backend objects):

``ExecutionBackend.run_subtasks(plan, network, assignments, ...)`` executes
one :class:`~repro.execution.plan.CompiledPlan` for every assignment in the
given order and returns the accumulated result tensor.

Every backend honours the same **ordered-accumulation contract**: subtask
contributions are summed strictly in assignment order, so all backends —
any worker count, any chunk size — produce **bit-identical** results.  The
parallel backends exploit this by shipping per-subtask contributions back
to the caller (cheap: a subtask's result is the small output tensor; the
expensive part is the contraction) and folding them in order.

Backends:

* :class:`SerialBackend` — in-process loop; the baseline substrate.
* :class:`ThreadPoolBackend` — ``concurrent.futures`` threads over subtask
  chunks; numpy releases the GIL inside the contraction kernels, so this
  wins for few large subtasks.
* :class:`SharedMemoryProcessPoolBackend` — a process pool that ships the
  slice-invariant cached intermediates and the leaf buffers to workers via
  ``multiprocessing.shared_memory`` *once*, then streams subtask chunks;
  this sidesteps the interpreter entirely and wins for many small subtasks
  whose per-task Python overhead would serialize a thread pool.
* :class:`~repro.execution.distributed.DistributedBackend` (in
  :mod:`repro.execution.distributed`) — the multi-node generalization:
  subtask chunks stream over sockets (or MPI) to remote worker processes
  after a one-time plan/leaf/cache broadcast; also reachable through the
  ``"distributed"`` / ``"distributed:host:port,..."`` string specs of
  :func:`resolve_backend`.

Each worker (and each backend's serial loop) owns a private
:class:`~repro.execution.plan.StemSlots` arena, so the stem's running
tensor reuses two preallocated buffers instead of hitting the allocator
once per stem step.  Because the arena is what a plan's fused runs
execute against, *fused* plans (``compile_plan(..., fused=True)``; see
:mod:`repro.execution.fusion`) ship through sessions and the process
pool unchanged: the precompiled permutation kernels pickle with the plan,
every worker's private arena supplies the slots and scratch, and the
ordered-accumulation contract keeps fused execution bit-identical to
:class:`SerialBackend` step-by-step execution.
"""

from __future__ import annotations

import atexit
import math
import os
import pickle
import threading
import time
import warnings
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures import wait as futures_wait
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .checkpoint import CheckpointJob, payload_checksums, verify_payload
from .faultinject import (
    FaultInjector,
    apply_coordinator_directive,
    apply_directive,
    corrupt_payload,
)
from .plan import CompiledPlan, PlanStats, StemSlots
from .resilience import (
    FAIL_FAST,
    ChunkIntegrityError,
    ChunkTimeoutError,
    FaultPolicy,
    RecoveryClock,
    RecoveryExhaustedError,
    run_degraded,
)

__all__ = [
    "ExecutionBackend",
    "ExecutionSession",
    "NullExecutionSession",
    "SerialBackend",
    "SharedMemoryProcessPoolBackend",
    "ThreadPoolBackend",
    "resolve_backend",
    "validate_execution_args",
]


# ----------------------------------------------------------------------
# Shared validation (SlicedExecutor, CorrelatedSampler, TreeExecutor)
# ----------------------------------------------------------------------
def _check_module_backend(module, backend: "ExecutionBackend") -> None:
    """Reject array-module/backend combinations that cannot work yet.

    Non-numpy modules hold device (or foreign-substrate) arrays that
    cannot cross the pickled / shared-memory boundary of the process
    pool, so they are rejected loudly instead of silently running on the
    host.  Raises ``ValueError`` naming the supported combinations.
    """
    if module is None or getattr(module, "is_host", True):
        return
    if isinstance(backend, SharedMemoryProcessPoolBackend):
        raise ValueError(
            f"array_module={module.name!r} is not supported on "
            "SharedMemoryProcessPoolBackend: shared-memory segments are "
            "host-side and workers have no device context. Supported "
            "combinations: numpy × (serial | threads | process pool | "
            f"distributed); {module.name} × (serial | threads)"
        )
    # duck-typed so this module never imports execution.distributed
    # (which imports this module)
    if getattr(backend, "is_distributed", False):
        raise ValueError(
            f"array_module={module.name!r} is not supported on "
            "DistributedBackend: broadcast payloads and contribution "
            "frames are host-side pickles and remote workers have no "
            "device context. Supported combinations: numpy × (serial | "
            "threads | process pool | distributed); "
            f"{module.name} × (serial | threads)"
        )


def _backend_from_spec(spec: str) -> "ExecutionBackend":
    """Build a backend from a string spec.

    ``"distributed"`` spawns the default localhost worker set;
    ``"distributed:hostA:9001,hostB:9001"`` connects to pre-started
    workers at the listed addresses (see
    :mod:`repro.execution.distributed`).  Imported lazily so the plain
    in-process backends never load the distributed machinery.
    """
    name, _, rest = spec.partition(":")
    if name == "distributed":
        from .distributed import DistributedBackend

        if not rest:
            return DistributedBackend()
        addresses = [entry.strip() for entry in rest.split(",") if entry.strip()]
        if not addresses:
            raise ValueError(f"backend spec {spec!r} lists no worker addresses")
        return DistributedBackend(addresses=addresses)
    raise ValueError(
        f"unknown backend spec {spec!r} (expected 'distributed' or "
        "'distributed:host:port,...'; in-process backends are passed as "
        "instances)"
    )


def validate_execution_args(
    mode: str,
    backend: Union["ExecutionBackend", str, None] = None,
    max_workers: Optional[int] = None,
    array_module=None,
) -> None:
    """Validate the mode/parallelism/substrate combination uniformly.

    Every entry point (sliced executor, tree executor, sampler, planner)
    funnels through this so that the reference mode rejects parallel
    execution — and a device ``array_module`` rejects the shared-memory
    process pool and the distributed backend — with the same
    ``ValueError`` everywhere.  String backend specs are validated by
    building the backend they name (construction is lazy: no worker is
    spawned until the first run).
    """
    if mode not in ("compiled", "reference"):
        raise ValueError(f"unknown execution mode {mode!r}")
    if isinstance(backend, str):
        backend = _backend_from_spec(backend)
    if backend is not None and max_workers is not None:
        raise ValueError("pass either backend= or max_workers=, not both")
    if mode == "reference":
        if max_workers is not None:
            raise ValueError("max_workers requires the compiled mode")
        if backend is not None:
            raise ValueError("backend requires the compiled mode")
        if array_module is not None and not getattr(array_module, "is_host", True):
            raise ValueError(
                f"array_module={getattr(array_module, 'name', array_module)!r} "
                "requires the compiled mode; the reference walker is "
                "host-numpy only"
            )
    if backend is not None:
        _check_module_backend(array_module, backend)


def resolve_backend(
    backend: Union["ExecutionBackend", str, None] = None,
    max_workers: Optional[int] = None,
    array_module=None,
) -> "ExecutionBackend":
    """Resolve the ``backend=`` / legacy ``max_workers=`` pair to a backend.

    ``backend`` may also be a string spec: ``"distributed"`` builds a
    :class:`~repro.execution.distributed.DistributedBackend` spawning the
    default localhost worker set, and ``"distributed:host:port,..."`` one
    connecting to pre-started workers at the listed addresses.

    ``max_workers`` is a deprecated shim kept for the pre-backend API:
    any non-``None`` value warns exactly once, a value > 1 maps to
    ``ThreadPoolBackend(max_workers)`` and a value <= 1 to
    ``SerialBackend``.  Passing both arguments is an error regardless of
    the values (``max_workers=0`` is not a way to sneak past the check).
    When ``array_module`` is given, the resolved backend is checked
    against it (device modules cannot run on the shared-memory pool or
    the distributed backend).
    """
    if backend is not None:
        if max_workers is not None:
            raise ValueError("pass either backend= or max_workers=, not both")
        if isinstance(backend, str):
            backend = _backend_from_spec(backend)
        _check_module_backend(array_module, backend)
        return backend
    if max_workers is not None:
        warnings.warn(
            "max_workers= is deprecated; pass backend=ThreadPoolBackend(max_workers=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        if int(max_workers) > 1:
            return ThreadPoolBackend(max_workers=int(max_workers))
    return SerialBackend()


# ----------------------------------------------------------------------
# Helpers shared by the backends and the pool workers
# ----------------------------------------------------------------------
def _contribution(tensor: Tensor, sum_batch_axes: int) -> np.ndarray:
    """One subtask's contribution (batched sweeps collapse the batch axes)."""
    data = tensor.require_data()
    if sum_batch_axes:
        return data.sum(axis=tuple(range(sum_batch_axes)))
    return data


def _owned_contribution(tensor: Tensor, sum_batch_axes: int) -> np.ndarray:
    """A contribution buffer the caller may keep and mutate.

    The batch-axis sum already allocates a fresh array; otherwise the
    plan's output may alias the invariant cache or a stem slot and must be
    copied out.
    """
    contribution = _contribution(tensor, sum_batch_axes)
    if sum_batch_axes:
        return contribution
    return np.array(contribution, copy=True)


def _result_tensor(
    plan: CompiledPlan, accumulated: np.ndarray, sum_batch_axes: int
) -> Tensor:
    """Wrap the accumulated array with the plan's (batch-stripped) indices."""
    out_indices = plan.out_indices[sum_batch_axes:]
    sizes = plan.out_sizes
    return Tensor(
        out_indices, data=accumulated, sizes={ix: sizes[ix] for ix in out_indices}
    )


def _serial_accumulate(
    plan: CompiledPlan,
    network: TensorNetwork,
    assignments: Sequence[Mapping[str, int]],
    cache: Optional[Dict[int, np.ndarray]],
    sum_batch_axes: int,
    stats: Optional[PlanStats],
    slots: Optional[StemSlots],
) -> np.ndarray:
    """In-order, in-process accumulation — the reduction all backends match."""
    accumulated: Optional[np.ndarray] = None
    for assignment in assignments:
        tensor = plan.execute(network, assignment, cache=cache, stats=stats, slots=slots)
        if accumulated is None:
            # the first contribution may alias the invariant cache or a
            # stem slot, both overwritten by later subtasks, so take an
            # owned buffer once
            accumulated = _owned_contribution(tensor, sum_batch_axes)
        else:
            accumulated += _contribution(tensor, sum_batch_axes)
    assert accumulated is not None
    return accumulated


def _serial_accumulate_checkpointed(
    plan: CompiledPlan,
    network: TensorNetwork,
    assignments: Sequence[Mapping[str, int]],
    cache: Optional[Dict[int, np.ndarray]],
    sum_batch_axes: int,
    stats: Optional[PlanStats],
    slots: Optional[StemSlots],
    checkpoint: CheckpointJob,
    injector: Optional[FaultInjector] = None,
) -> np.ndarray:
    """Ledger-armed variant of :func:`_serial_accumulate`.

    Slots persisted by a previous (interrupted) run are folded from the
    ledger instead of re-executed; freshly computed slots are recorded
    *before* being folded (the fold mutates the running buffer in place).
    Position order is unchanged, so the result stays bit-identical to the
    plain serial loop.  Each computed slot is one harvest ordinal for an
    armed injector's coordinator-side faults.
    """
    accumulated: Optional[np.ndarray] = None
    for position, assignment in enumerate(assignments):
        contribution = checkpoint.loaded.get(position)
        if contribution is None:
            tensor = plan.execute(
                network, assignment, cache=cache, stats=stats, slots=slots
            )
            contribution = _owned_contribution(tensor, sum_batch_axes)
            checkpoint.record(position, contribution)
            if injector is not None:
                apply_coordinator_directive(
                    injector.coordinator_directive_for_next_harvest()
                )
        if accumulated is None:
            # both branches yield an owned buffer (loaded slots are fresh
            # copies off disk), safe to mutate in the fold
            accumulated = contribution
        else:
            accumulated += contribution
    assert accumulated is not None
    return accumulated


def _chunked(items: List, chunk_size: int) -> List[List]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``."""
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


class NullExecutionSession:
    """No-op stand-in for :class:`ExecutionSession` on poolless backends.

    In-process backends have no pool or shared-memory segments to keep
    alive, so their :meth:`ExecutionBackend.session` returns this object:
    a context manager with the same idempotent :meth:`close` surface,
    letting callers write one session-scoped loop for every backend.
    """

    def __init__(self, backend: Optional["ExecutionBackend"] = None) -> None:
        self._backend = backend
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Idempotent no-op close."""
        self._closed = True

    def reset(self) -> None:
        """No resident state to drop."""

    def __enter__(self) -> "NullExecutionSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NullExecutionSession(backend={self._backend!r})"


class ExecutionBackend:
    """Protocol for subtask scheduling substrates.

    A backend executes a compiled plan over a sequence of slicing
    assignments and returns the accumulated result.  Implementations must
    sum contributions strictly in assignment order (the ordered-accumulation
    contract) so that every backend is bit-identical to
    :class:`SerialBackend`.

    Backends are reusable across runs and executors but are not safe for
    *concurrent* ``run_subtasks`` calls on the same instance.  Backends
    with resident state (today: the shared-memory process pool) expose it
    through :meth:`session`; the base implementations below make session
    scoping a no-op everywhere else, so callers can uniformly write::

        with backend.session(plan, network, cache):
            for batch in batches:
                backend.run_subtasks(plan, network, batch, cache=cache)

    Fault handling is policy-driven and opt-in: attach a
    :class:`~repro.execution.resilience.FaultPolicy` (and, for tests, a
    :class:`~repro.execution.faultinject.FaultInjector`) via
    :meth:`configure_faults` to get bounded retries, per-chunk timeouts,
    crash recovery and graceful degradation — see
    :mod:`repro.execution.resilience` for the recovery model and why
    recovered runs stay bit-identical.  Without a policy every backend
    fails fast, exactly as before the resilience layer existed.
    """

    #: Short name used in benchmark tables and reprs.
    name = "base"

    #: Optional :class:`~repro.execution.resilience.FaultPolicy` governing
    #: retries/timeouts/degradation; ``None`` means fail-fast (the
    #: pre-resilience behaviour — see :mod:`repro.execution.resilience`).
    fault_policy: Optional[FaultPolicy] = None
    #: Optional :class:`~repro.execution.faultinject.FaultInjector` for
    #: deterministic fault injection (tests/CI only; ``None`` in prod).
    fault_injector: Optional[FaultInjector] = None

    def configure_faults(
        self,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
    ) -> "ExecutionBackend":
        """Attach a backend-level default fault policy and/or injector.

        The opt-in hook of the resilience layer for callers that drive
        ``run_subtasks`` directly.  Executors
        (:class:`~repro.execution.SlicedExecutor`,
        :class:`~repro.execution.CorrelatedSampler`,
        :class:`~repro.pipeline.SimulationPlanner`) do *not* call this:
        they pass their ``fault_policy=`` / ``fault_injector=`` arguments
        through each ``run_subtasks`` call, scoping them to their own
        runs so a shared backend is never reconfigured behind another
        caller's back.  Run-scoped arguments override these defaults.
        Returns ``self`` for chaining.
        """
        if policy is not None:
            self.fault_policy = policy
        if injector is not None:
            self.fault_injector = injector
        return self

    def session(
        self,
        plan: Optional[CompiledPlan] = None,
        network: Optional[TensorNetwork] = None,
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ):
        """Open (or reuse) this backend's persistent execution session.

        The in-process backends hold no resident scheduling state, so the
        base implementation pre-warms the invariant cache (when a plan and
        network are supplied) and returns a :class:`NullExecutionSession`.
        :class:`SharedMemoryProcessPoolBackend` overrides this with a real
        :class:`ExecutionSession` that keeps the process pool and the
        published shared-memory segments alive across ``run_subtasks``
        calls.
        """
        if plan is not None and network is not None:
            self.warm(plan, network, cache, stats)
        return NullExecutionSession(self)

    def close(self) -> None:
        """Release resident backend state (idempotent; no-op by default)."""

    def reset_session(self) -> None:
        """Invalidate the active session's resident state, if any."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> Optional[Tensor]:
        """Execute ``plan`` for every assignment and sum the results.

        Parameters
        ----------
        plan:
            The compiled plan (shared, read-only).
        network:
            The concrete network the plan was compiled against.
        assignments:
            Slicing assignments, one per subtask, in accumulation order.
        cache:
            Optional slice-invariant cache.  Warmed here (in the caller's
            process) if cold, so pool workers always receive it warm and
            every invariant contraction still runs exactly once.
        sum_batch_axes:
            Number of leading batch axes each execution collapses (batched
            sweeps); the returned tensor has them stripped.
        stats:
            Optional counters; worker-local stats are merged in.
        policy / injector:
            Run-scoped fault policy / fault injector.  ``None`` falls back
            to the backend-level configuration
            (:meth:`configure_faults`), so executors that carry their own
            policy can scope it to their runs without mutating a shared
            backend.
        checkpoint:
            Optional open :class:`~repro.execution.checkpoint.CheckpointJob`
            (the durable chunk ledger).  Ordered slots it already holds —
            persisted by a previous, interrupted run — are folded from
            disk instead of re-executed, and every slot harvested by this
            run is write-ahead-recorded before the final fold, so a
            coordinator crash at any point leaves a resumable ledger.
            ``None`` (the default) is the ledger-free hot path.

        Returns the accumulated :class:`Tensor` (a fresh buffer owned by
        the caller), or ``None`` when ``assignments`` is empty.
        """
        raise NotImplementedError

    def warm(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]],
        stats: Optional[PlanStats],
    ) -> None:
        """Warm the invariant cache once, in the calling process."""
        if cache is not None and not plan.cache_is_warm(cache):
            plan.warm_cache(network, cache, stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every subtask in the calling thread, in order."""

    name = "serial"

    def __init__(self) -> None:
        self._slots = StemSlots()

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> Optional[Tensor]:
        # policy is accepted for protocol uniformity: the serial substrate
        # has no workers to crash or chunks to time out.  The injector only
        # matters for coordinator-side faults on the checkpointed path.
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        if checkpoint is not None:
            accumulated = _serial_accumulate_checkpointed(
                plan, network, assignments, cache, sum_batch_axes, stats,
                self._slots, checkpoint,
                injector if injector is not None else self.fault_injector,
            )
        else:
            accumulated = _serial_accumulate(
                plan, network, assignments, cache, sum_batch_axes, stats, self._slots
            )
        return _result_tensor(plan, accumulated, sum_batch_axes)


class _PooledBackend(ExecutionBackend):
    """Common chunking/merging machinery of the two pool backends."""

    def __init__(self, max_workers: int, chunk_size: Optional[int] = None) -> None:
        self.max_workers = int(max_workers)
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.chunk_size = int(chunk_size) if chunk_size is not None else None
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._slots = StemSlots()

    def _chunks(self, assignments: Sequence[Mapping[str, int]]) -> List[List]:
        """Positioned chunks; ~4 per worker by default to stream evenly."""
        items = list(enumerate(assignments))
        if self.chunk_size is not None:
            chunk_size = self.chunk_size
        else:
            chunk_size = max(1, math.ceil(len(items) / (4 * self.max_workers)))
        return _chunked(items, chunk_size)

    def _merge_ordered(
        self,
        plan: CompiledPlan,
        contributions: List[Optional[np.ndarray]],
        sum_batch_axes: int,
    ) -> Tensor:
        accumulated = contributions[0]
        assert accumulated is not None
        for contribution in contributions[1:]:
            assert contribution is not None
            accumulated += contribution
        return _result_tensor(plan, accumulated, sum_batch_axes)

    def _run_serially(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
        stats: Optional[PlanStats],
        checkpoint: Optional[CheckpointJob] = None,
        injector: Optional[FaultInjector] = None,
    ) -> Tensor:
        if checkpoint is not None:
            accumulated = _serial_accumulate_checkpointed(
                plan, network, assignments, cache, sum_batch_axes, stats,
                self._slots, checkpoint, injector,
            )
        else:
            accumulated = _serial_accumulate(
                plan, network, assignments, cache, sum_batch_axes, stats, self._slots
            )
        return _result_tensor(plan, accumulated, sum_batch_axes)


class ThreadPoolBackend(_PooledBackend):
    """Distribute subtask chunks over a thread pool.

    numpy releases the GIL inside the contraction kernels, so threads
    amortize well when each subtask is large; per-subtask Python overhead
    is still serialized, which is where the process pool takes over.

    Parameters
    ----------
    max_workers:
        Thread count.
    chunk_size:
        Subtasks per work item; default streams ~4 chunks per thread.
    """

    name = "threads"

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> Optional[Tensor]:
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        if injector is None:
            injector = self.fault_injector
        if len(assignments) == 1 or self.max_workers == 1:
            return self._run_serially(
                plan, network, assignments, cache, sum_batch_axes, stats,
                checkpoint=checkpoint, injector=injector,
            )

        if policy is None:
            policy = self.fault_policy or FAIL_FAST
        contributions: List[Optional[np.ndarray]] = [None] * len(assignments)
        if checkpoint is not None:
            for position, loaded in checkpoint.loaded.items():
                contributions[position] = loaded
        thread_state = threading.local()
        chunks = self._chunks(assignments)

        def work(
            task: Tuple[List[Tuple[int, Mapping[str, int]]], Optional[Tuple[str, float]]]
        ) -> Tuple[PlanStats, Optional[List[int]], Optional[BaseException]]:
            chunk, directive = task
            local_stats = PlanStats()
            # one arena per pool thread, reused across its chunks
            slots = getattr(thread_state, "slots", None)
            if slots is None:
                slots = thread_state.slots = StemSlots()
            try:
                apply_directive(directive, in_process=True)
                results: List[np.ndarray] = []
                for _position, assignment in chunk:
                    tensor = plan.execute(
                        network, assignment, cache=cache, stats=local_stats, slots=slots
                    )
                    results.append(_owned_contribution(tensor, sum_batch_axes))
                # checksums over the honest results, corruption (if
                # injected) after — the coordinator's verify must catch it
                checksums = payload_checksums(results)
                corrupt_payload(directive, results)
                for (position, _), contribution in zip(chunk, results):
                    contributions[position] = contribution
            except Exception as exc:
                # the exception travels back as data: the submitting loop
                # decides whether to retry, degrade, or re-raise
                return local_stats, None, exc
            return local_stats, checksums, None

        # a chunk all of whose ordered slots came out of the ledger has
        # nothing left to execute
        pending = [
            index
            for index, chunk in enumerate(chunks)
            if any(contributions[position] is None for position, _ in chunk)
        ]
        attempts = [0] * len(chunks)
        failure: Optional[BaseException] = None
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            while pending and failure is None:
                tasks = [
                    (
                        chunks[i],
                        injector.directive_for_next_chunk()
                        if injector is not None
                        else None,
                    )
                    for i in pending
                ]
                retry_now: List[int] = []
                for chunk_index, (local_stats, checksums, exc) in zip(
                    pending, pool.map(work, tasks)
                ):
                    if exc is None:
                        positions = [p for p, _ in chunks[chunk_index]]
                        arrays = [contributions[p] for p in positions]
                        if not verify_payload(arrays, checksums):
                            # poisoned payload: clear the in-place writes
                            # so the retry (or degradation) recomputes
                            # them — never fold or persist corrupt slots
                            for position in positions:
                                contributions[position] = None
                            exc = ChunkIntegrityError(
                                f"chunk {chunk_index} failed its payload "
                                f"checksum"
                            )
                    if exc is None:
                        if stats is not None:
                            stats.merge(local_stats)
                        if checkpoint is not None:
                            checkpoint.record_chunk(positions, arrays)
                        if injector is not None:
                            apply_coordinator_directive(
                                injector.coordinator_directive_for_next_harvest()
                            )
                        continue
                    # a thread substrate has no pool to rebuild: every
                    # fault is a chunk-level fault, retried in place
                    if stats is not None:
                        stats.faults += 1
                    attempts[chunk_index] += 1
                    if attempts[chunk_index] > policy.chunk_retry_budget:
                        failure = exc
                        break
                    retry_now.append(chunk_index)
                if failure is None and retry_now:
                    with RecoveryClock(stats):
                        if stats is not None:
                            stats.retries += len(retry_now)
                        backoff = max(
                            policy.backoff(attempts[i] - 1) for i in retry_now
                        )
                        if backoff > 0:
                            time.sleep(backoff)
                pending = retry_now if failure is None else pending

        if failure is not None:
            if policy.mode == "degrade":
                # last rung of the chain for a thread run: fill the empty
                # ordered slots serially, in the calling thread
                from .resilience import fill_missing_serial

                fill_missing_serial(
                    plan, network, assignments, contributions, cache,
                    sum_batch_axes, stats, slots=self._slots,
                )
                if stats is not None and stats.degraded_to is None:
                    stats.degraded_to = "serial"
            elif policy.mode == "retry":
                raise RecoveryExhaustedError(
                    f"thread chunk failed after {policy.chunk_retry_budget} "
                    f"retries: {failure!r}",
                    contributions,
                ) from failure
            else:
                raise failure
        return self._merge_ordered(plan, contributions, sum_batch_axes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolBackend(max_workers={self.max_workers})"


# ----------------------------------------------------------------------
# Shared-memory process pool — worker side
# ----------------------------------------------------------------------
#: Per-worker state installed by the pool initializer (or a chunk payload).
_WORKER_STATE: Optional["_WorkerState"] = None
#: Whether this worker registered its exit-time segment teardown yet.
_WORKER_TEARDOWN_REGISTERED = False


class _LeafStore:
    """Minimal stand-in for :class:`TensorNetwork` inside pool workers.

    The compiled plan only ever calls ``network.tensor(tid)`` while
    executing, so workers rebuild just that mapping from the shared-memory
    leaf buffers.
    """

    def __init__(self, tensors: Dict[int, Tensor]) -> None:
        self._tensors = tensors

    def tensor(self, tid: int) -> Tensor:
        return self._tensors[tid]


class _WorkerState:
    """Plan + shared-memory views held by a pool worker for one generation."""

    def __init__(
        self,
        generation: int,
        plan: CompiledPlan,
        network: _LeafStore,
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        self.generation = generation
        self.plan = plan
        self.network: Optional[_LeafStore] = network
        self.cache = cache
        self.sum_batch_axes = sum_batch_axes
        # keep the SharedMemory handles alive: the ndarray views above
        # borrow their buffers
        self.segments = segments
        self.slots = StemSlots()

    def close(self) -> None:
        """Drop the shared-memory views and close the attachments.

        The ndarray views borrow the segments' buffers, so they must be
        released first — closing a segment with a live export raises
        ``BufferError`` (tolerated below: a still-borrowed segment is
        better leaked than crashed over during teardown).
        """
        self.network = None
        self.cache = None
        segments, self.segments = self.segments, []
        for segment in segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - defensive
                pass


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment the parent owns (and will unlink).

    On Python >= 3.13 the attachment opts out of resource tracking; before
    that the worker's re-registration lands in the tracker process the
    pool shares with the parent, where it is an idempotent set-add that
    the parent's single ``unlink`` cleans up.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track= keyword
        return shared_memory.SharedMemory(name=name)


def _shm_view(meta: Tuple[str, Tuple[int, ...], str], segments: List) -> np.ndarray:
    name, shape, dtype = meta
    segment = _attach_segment(name)
    segments.append(segment)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def _attach_state(payload: Tuple) -> "_WorkerState":
    """Build a :class:`_WorkerState` from a session payload, atomically.

    If any attachment fails the already-attached segments are closed
    before the error propagates, so a half-initialized worker never leaks
    attachments.
    """
    generation, plan, leaf_meta, cache_meta, sum_batch_axes = payload
    segments: List[shared_memory.SharedMemory] = []
    try:
        tensors: Dict[int, Tensor] = {}
        for tid, (name, shape, dtype, indices) in leaf_meta.items():
            tensors[tid] = Tensor(
                indices, data=_shm_view((name, shape, dtype), segments)
            )
        cache: Optional[Dict[int, np.ndarray]] = None
        if cache_meta is not None:
            cache = {
                node: _shm_view(meta, segments) for node, meta in cache_meta.items()
            }
    except BaseException:
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - defensive
                pass
        raise
    return _WorkerState(
        generation, plan, _LeafStore(tensors), cache, sum_batch_axes, segments
    )


def _install_worker_state(payload: Tuple) -> "_WorkerState":
    """Replace this worker's state, closing the previous attachments."""
    global _WORKER_STATE
    state = _attach_state(payload)
    old, _WORKER_STATE = _WORKER_STATE, state
    if old is not None:
        old.close()
    if state.plan.tape_engine == "native":
        # JIT-compile the tape kernel now so the one-time numba
        # compilation cost lands in worker start-up, not in the first
        # chunk's latency; failure just disarms the native engine and
        # the worker falls back to the Python walker
        from .tape import warm_kernel

        # warm for the plan's actual dtype (explicit override or the
        # dtype derived from the leaves), not an assumed complex128
        warm_kernel(getattr(state.plan, "dtype", None) or np.complex128)
    return state


def _teardown_worker() -> None:
    """Worker exit hook: close every shared-memory attachment."""
    global _WORKER_STATE
    state, _WORKER_STATE = _WORKER_STATE, None
    if state is not None:
        state.close()


def _init_worker(blob: bytes) -> None:
    """Pool initializer: install the session's spawn-time state.

    The pickled plan and segment metadata arrive through the initializer
    once per worker.  A worker spawned lazily *after* the session
    republished its segments may find the spawn-time segment names already
    unlinked; that is tolerated here — every post-republish chunk carries
    the current payload, so the first chunk installs the state instead.
    """
    global _WORKER_STATE, _WORKER_TEARDOWN_REGISTERED
    if not _WORKER_TEARDOWN_REGISTERED:
        atexit.register(_teardown_worker)
        _WORKER_TEARDOWN_REGISTERED = True
    try:
        _install_worker_state(pickle.loads(blob))
    except FileNotFoundError:
        _WORKER_STATE = None


def _run_chunk(
    task: Tuple[
        int,
        Optional[bytes],
        List[Tuple[int, Mapping[str, int]]],
        Optional[Tuple[str, float]],
    ]
) -> Tuple[int, List[np.ndarray], List[int], PlanStats, int]:
    """Execute one chunk in a worker.

    Returns ``(start, results, checksums, stats, pid)``.  ``task`` carries
    the session generation the chunk belongs to and — for post-republish
    generations — the pickled payload a stale (or freshly spawned) worker
    needs to re-initialize itself.  The pid lets the parent track which
    workers hold the current generation, so it can stop attaching the
    payload once all of them do.  The optional fourth element is a
    fault-injection directive (:mod:`repro.execution.faultinject`),
    applied before the chunk runs; ``None`` on every production chunk.
    The checksums are CRC-32s over each contribution, computed here —
    before any injected payload corruption — so the parent can verify the
    results survived the process boundary intact.
    """
    generation, blob, chunk, directive = task
    apply_directive(directive)
    state = _WORKER_STATE
    if state is None or state.generation != generation:
        if blob is None:
            raise RuntimeError(
                f"worker has no shared-memory state for session generation "
                f"{generation}"
            )
        state = _install_worker_state(pickle.loads(blob))
    local_stats = PlanStats()
    results: List[np.ndarray] = []
    for _, assignment in chunk:
        tensor = state.plan.execute(
            state.network,  # type: ignore[arg-type]
            assignment,
            cache=state.cache,
            stats=local_stats,
            slots=state.slots,
        )
        results.append(_owned_contribution(tensor, state.sum_batch_axes))
    checksums = payload_checksums(results)
    corrupt_payload(directive, results)
    return chunk[0][0], results, checksums, local_stats, os.getpid()


# ----------------------------------------------------------------------
# Shared-memory process pool — parent side
# ----------------------------------------------------------------------
#: How often the parent re-checks whether a queued chunk has started
#: running: a chunk's timeout clock starts at the first observation of its
#: running state, not at submission, so chunks queued behind a saturated
#: pool do not burn their budget while waiting for a worker.
_TIMEOUT_POLL_SECONDS = 0.05


class _SessionResources:
    """The pool and published segments of one session, released together.

    Kept on a separate object so a ``weakref.finalize`` on the session can
    release them at garbage collection / interpreter exit without keeping
    the session itself alive.
    """

    __slots__ = ("pool", "segments")

    def __init__(self) -> None:
        self.pool: Optional[ProcessPoolExecutor] = None
        self.segments: List[shared_memory.SharedMemory] = []


def _release_session_resources(resources: _SessionResources) -> None:
    """Shut the pool down, then close and unlink every published segment.

    The pool is drained first so workers run their exit hooks (closing
    their attachments) before the parent unlinks the names.  Segment
    unlinking runs even if the pool shutdown raises (it is the parent's
    unlink — not the workers' exit hooks — that prevents ``/dev/shm``
    leaks: a SIGKILLed worker never runs teardown, and this release also
    runs at interpreter shutdown via the session finalizer, including
    after a ``KeyboardInterrupt``), and a name that is already gone is
    tolerated so release is idempotent under crash recovery.
    """
    pool, resources.pool = resources.pool, None
    segments, resources.segments = resources.segments, []
    try:
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    finally:
        _unlink_segments(segments)


def _unlink_segments(segments: Sequence[shared_memory.SharedMemory]) -> None:
    """Close and unlink segments, tolerating already-gone names."""
    for segment in segments:
        try:
            segment.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _abort_pool(pool: Optional[ProcessPoolExecutor]) -> None:
    """Hard-stop a broken or stuck pool without waiting on its workers.

    ``shutdown(wait=False)`` alone would leave a hung worker running (and
    holding its shared-memory attachments); terminating the worker
    processes guarantees the rebuild path starts from zero live
    attachments, so the parent's subsequent unlink really removes the
    segments.
    """
    if pool is None:
        return
    # _processes is a CPython implementation detail; if it ever disappears
    # say so loudly instead of silently degrading to shutdown(wait=False),
    # which would leave hung workers (and their attachments) alive
    if not hasattr(pool, "_processes"):  # pragma: no cover - cpython guard
        warnings.warn(
            "ProcessPoolExecutor no longer exposes _processes; cannot "
            "terminate pool workers — a hung worker may keep its "
            "shared-memory attachments alive",
            RuntimeWarning,
        )
    # snapshot before shutdown(): a draining shutdown clears the attribute
    processes = dict(getattr(pool, "_processes", None) or {})
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - defensive
            pass
    for process in list(processes.values()):
        try:
            process.join(timeout=5.0)
        except Exception:  # pragma: no cover - defensive
            pass


class ExecutionSession:
    """Resident process-pool state of a :class:`SharedMemoryProcessPoolBackend`.

    A session keeps three things alive across ``run_subtasks`` calls that
    the per-call lifecycle used to rebuild every time: the
    ``ProcessPoolExecutor`` itself, the compiled plan shipped (pickled) to
    each worker through the pool initializer, and the shared-memory
    segments holding the leaf buffers and the warm invariant cache.

    Staleness is detected through a leaf-data snapshot fingerprint (the
    identity of the plan, of every leaf tensor, and of the cache buffers,
    plus the batch-axis count): a data-only tensor replacement or a plan
    recompilation *republishes* the segments and re-initializes the
    workers in place — the pool survives — while an axis-order mutation is
    recompiled upstream and surfaces here as
    :meth:`~ExecutionBackend.reset_session`, which rebuilds the session
    from scratch.  Republished state travels to workers via
    generation-tagged chunk payloads, so even a worker spawned lazily
    after a republish initializes correctly.

    Sessions are context managers with an idempotent :meth:`close`; a
    ``weakref.finalize`` guarantees the pool is drained and the segments
    unlinked even if ``close`` is never called, so no resource-tracker
    leak survives the session object.

    The session is also where pool *crash recovery* happens (see
    :mod:`repro.execution.resilience` for the policy layer): under a
    retrying/degrading :class:`~repro.execution.resilience.FaultPolicy`,
    a dead worker or timed-out chunk aborts the poisoned pool, unlinks
    the old generation's segments, republishes fresh ones and respawns
    the pool through the same :meth:`ensure` path a cold session uses —
    then re-runs only the chunks whose ordered slots are still empty, so
    the recovered result is bit-identical to a clean run.  A run that
    fails anyway marks the session *broken*; the next :meth:`ensure`
    resets it transparently.
    """

    def __init__(self, backend: "SharedMemoryProcessPoolBackend") -> None:
        self._backend = backend
        self._resources = _SessionResources()
        self._finalizer = weakref.finalize(
            self, _release_session_resources, self._resources
        )
        self._generation = 0
        self._blob: Optional[bytes] = None
        # the current generation's full payload, always retained: retried
        # chunks carry it so a worker whose state died (or was never
        # installed) can self-initialize during recovery
        self._payload_blob: Optional[bytes] = None
        # a failed run marks the session broken; the next ensure() resets
        # it transparently instead of crashing on stale pool/segment state
        self._broken = False
        # worker pids that confirmed holding the current generation; once
        # all max_workers did, chunks stop carrying the republish payload
        self._confirmed_pids: set = set()
        self._plan: Optional[CompiledPlan] = None
        self._leaf_tensors: Tuple[Tensor, ...] = ()
        self._cache_token: Optional[Tuple] = None
        # pinned so ``id``-based tokens cannot collide with recycled buffers
        self._cache_buffers: Tuple[np.ndarray, ...] = ()
        self._sum_batch_axes: Optional[int] = None
        #: How many times this session launched a process pool.
        self.pool_launches = 0
        #: How many times segments were (re)published.
        self.publications = 0

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the session has been closed."""
        return not self._finalizer.alive

    @property
    def pool_is_live(self) -> bool:
        """Whether a process pool is currently spawned."""
        return self._resources.pool is not None

    @property
    def generation(self) -> int:
        """The current publish generation (0 = spawn-time state)."""
        return self._generation

    def close(self) -> None:
        """Drain the pool and unlink every segment; safe to call twice."""
        self._finalizer()  # runs the release at most once
        self._drop_fingerprint()
        backend = self._backend
        if backend is not None and backend._session is self:
            backend._session = None

    def reset(self) -> None:
        """Tear down the pool and segments but keep the session usable.

        The next :meth:`run` spawns a fresh pool with newly published
        segments — the full-rebuild path for axis-order mutations.
        """
        if self.closed:
            return
        _release_session_resources(self._resources)
        self._drop_fingerprint()

    @property
    def broken(self) -> bool:
        """Whether the last run failed (healed transparently on next use)."""
        return self._broken

    def _drop_fingerprint(self) -> None:
        self._generation = 0
        self._blob = None
        self._payload_blob = None
        self._broken = False
        self._confirmed_pids = set()
        self._plan = None
        self._leaf_tensors = ()
        self._cache_token = None
        self._cache_buffers = ()
        self._sum_batch_axes = None

    def __enter__(self) -> "ExecutionSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _cache_fingerprint(
        cache: Optional[Dict[int, np.ndarray]]
    ) -> Tuple[Optional[Tuple], Tuple[np.ndarray, ...]]:
        if cache is None:
            return None, ()
        items = sorted(cache.items())
        token = (id(cache), tuple((node, id(buffer)) for node, buffer in items))
        return token, tuple(buffer for _, buffer in items)

    def ensure(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
    ) -> None:
        """Bring the resident state up to date for ``plan``/``network``.

        No-op when the fingerprint matches (the steady state: the pool and
        every segment are reused as-is).  Otherwise the segments are
        republished and — if no pool is live yet — the pool is spawned
        with the new payload as its initializer.

        A session whose previous run failed (worker crash, timeout,
        ``KeyboardInterrupt``, a raised chunk) is **broken**: its pool may
        be dead and its segment names stale.  Instead of crashing on that
        state, ensure resets the session first, so the next call after a
        failure transparently rebuilds — see
        :mod:`repro.execution.resilience`.
        """
        if self.closed:
            raise RuntimeError("execution session is closed")
        if self._broken:
            self.reset()
        try:
            self._ensure(plan, network, cache, sum_batch_axes)
        except BaseException:
            # a partially-republished session must not be reused as-is
            self._broken = True
            raise

    def _ensure(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
    ) -> None:
        leaf_tensors = tuple(network.tensor(ls.tid) for ls in plan.leaf_steps)
        cache_token, cache_buffers = self._cache_fingerprint(cache)
        if (
            self._resources.pool is not None
            and plan is self._plan
            and leaf_tensors == self._leaf_tensors
            and cache_token == self._cache_token
            and sum_batch_axes == self._sum_batch_axes
        ):
            return

        # republish: retire the previous generation's segments first
        old_segments, self._resources.segments = self._resources.segments, []
        _unlink_segments(old_segments)
        leaf_meta, cache_meta = self._publish(plan, network, cache)
        self.publications += 1

        self._confirmed_pids = set()
        if self._resources.pool is None:
            self._generation = 0
            self._blob = None
            blob = pickle.dumps(
                (0, plan, leaf_meta, cache_meta, sum_batch_axes),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            self._payload_blob = blob
            self._resources.pool = ProcessPoolExecutor(
                max_workers=self._backend.max_workers,
                initializer=_init_worker,
                initargs=(blob,),
            )
            self.pool_launches += 1
        else:
            self._generation += 1
            self._blob = self._payload_blob = pickle.dumps(
                (self._generation, plan, leaf_meta, cache_meta, sum_batch_axes),
                protocol=pickle.HIGHEST_PROTOCOL,
            )

        self._plan = plan
        self._leaf_tensors = leaf_tensors
        self._cache_token = cache_token
        self._cache_buffers = cache_buffers
        self._sum_batch_axes = sum_batch_axes

    def _publish(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]],
    ) -> Tuple[Dict, Optional[Dict]]:
        """Copy the needed buffers into fresh shared-memory segments."""
        segments = self._resources.segments

        def publish(array: np.ndarray) -> Tuple[str, Tuple[int, ...], str]:
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
            segments.append(segment)
            np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[...] = array
            return segment.name, array.shape, array.dtype.str

        # ship only what the workers will read: the slice-dependent leaves
        # when the invariant cache covers the rest, every leaf otherwise
        if cache is not None:
            needed = [ls for ls in plan.leaf_steps if ls.node in plan.dependent_nodes]
            cache_meta: Optional[Dict[int, Tuple[str, Tuple[int, ...], str]]] = {
                node: publish(buffer) for node, buffer in cache.items()
            }
        else:
            needed = list(plan.leaf_steps)
            cache_meta = None
        leaf_meta = {}
        for ls in needed:
            tensor = network.tensor(ls.tid)
            name, shape, dtype = publish(tensor.require_data())
            leaf_meta[ls.tid] = (name, shape, dtype, tensor.indices)
        return leaf_meta, cache_meta

    # ------------------------------------------------------------------
    def run(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> List[Optional[np.ndarray]]:
        """Stream chunks through the resident pool; per-position results.

        The caller (the backend) folds the returned contributions strictly
        in assignment order, so session reuse — and crash recovery, which
        only ever re-runs chunks whose ordered slots are still empty —
        cannot perturb the ordered-accumulation contract.

        ``policy`` (default: the backend's, else fail-fast) governs what
        happens on a fault: a dead worker or stuck chunk tears the pool
        down and, with rebuild budget remaining, the pool is respawned
        with the segments republished under a new generation and only the
        missing chunks are re-submitted; a raised chunk is re-submitted
        with backoff up to its retry budget.  Any failure that propagates
        marks the session broken, so the next call transparently rebuilds
        instead of crashing on stale state.

        ``checkpoint`` (an open durable ledger) pre-fills slots persisted
        by a previous run and write-ahead-records each harvested chunk —
        the rung of recovery that survives this whole *process* dying.
        """
        if policy is None:
            policy = self._backend.fault_policy or FAIL_FAST
        if injector is None:
            injector = self._backend.fault_injector
        self.ensure(plan, network, cache, sum_batch_axes)
        try:
            return self._run_resilient(
                plan, network, assignments, cache, sum_batch_axes, stats,
                policy, injector, checkpoint,
            )
        except BaseException:
            self._broken = True
            raise

    def _submit_chunk(
        self,
        pool: ProcessPoolExecutor,
        chunk: List[Tuple[int, Mapping[str, int]]],
        is_retry: bool,
        injector: Optional[FaultInjector],
    ):
        """Submit one chunk, attaching payload/directive as needed."""
        if is_retry:
            # a retried chunk may land on a worker whose state died with
            # the fault (or on a freshly respawned pool): always carry
            # the payload so the worker can self-initialize
            blob = self._payload_blob
        else:
            blob = self._blob
        directive = (
            injector.directive_for_next_chunk() if injector is not None else None
        )
        return pool.submit(
            _run_chunk, (self._generation, blob, chunk, directive)
        )

    def _run_resilient(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
        stats: Optional[PlanStats],
        policy: FaultPolicy,
        injector: Optional[FaultInjector],
        checkpoint: Optional[CheckpointJob] = None,
    ) -> List[Optional[np.ndarray]]:
        chunks = self._backend._chunks(assignments)
        contributions: List[Optional[np.ndarray]] = [None] * len(assignments)
        if checkpoint is not None:
            for position, loaded in checkpoint.loaded.items():
                contributions[position] = loaded
        # a chunk's *own* raised exceptions, counted against its retry
        # budget.  Pool-wide faults (worker death, a timed-out chunk
        # poisoning the pool) are budgeted separately through ``rebuilds``
        # — a rebuild must not eat an unrelated chunk's documented
        # per-chunk retries.
        failures = [0] * len(chunks)
        # chunks all of whose ordered slots came out of the ledger have
        # nothing left to execute (a partially-covered chunk re-runs
        # whole: deterministic subtasks make the overwrite bit-identical,
        # and already-durable slots are skipped by the ledger's record)
        pending = [
            index
            for index, chunk in enumerate(chunks)
            if any(contributions[position] is None for position, _ in chunk)
        ]
        rebuilds = 0

        def harvest(future) -> None:
            start, results, checksums, local_stats, pid = future.result()
            if not verify_payload(results, checksums):
                # poisoned payload: discard before it can reach an ordered
                # slot or the ledger; raises into the chunk-failure path
                raise ChunkIntegrityError(
                    f"chunk starting at position {start} failed its "
                    f"payload checksum"
                )
            for offset, contribution in enumerate(results):
                contributions[start + offset] = contribution
            if stats is not None:
                stats.merge(local_stats)
            self._confirmed_pids.add(pid)
            if checkpoint is not None:
                checkpoint.record_chunk(
                    range(start, start + len(results)), results
                )
            if injector is not None:
                # coordinator-side faults fire here, after the chunk's
                # slots are durable — InjectedCoordinatorDeath is a
                # BaseException, so no recovery path below intercepts it
                apply_coordinator_directive(
                    injector.coordinator_directive_for_next_harvest()
                )

        while pending:
            pool = self._resources.pool
            assert pool is not None
            submitted: List[Tuple[int, object]] = []
            pool_fault: Optional[BaseException] = None
            try:
                for chunk_index in pending:
                    future = self._submit_chunk(
                        pool,
                        chunks[chunk_index],
                        failures[chunk_index] > 0 or rebuilds > 0,
                        injector,
                    )
                    submitted.append((chunk_index, future))
            except BrokenExecutor as exc:
                pool_fault = exc

            done: List[int] = []
            retry_now: List[int] = []
            if pool_fault is None:
                index_of = {future: chunk_index for chunk_index, future in submitted}
                budgets = {
                    future: policy.chunk_timeout(len(chunks[index]))
                    for future, index in index_of.items()
                }
                # each chunk's deadline starts when it is first observed
                # running (or done), so harvesting happens in completion
                # order and a wedged chunk cannot accrue free time behind
                # slower siblings; observation granularity (the poll
                # interval) is folded into the timeout's safety factor
                deadlines: Dict[object, float] = {}
                outstanding = set(index_of)
                while outstanding and pool_fault is None:
                    now = time.monotonic()
                    wait_timeout: Optional[float] = None
                    for future in outstanding:
                        if future in deadlines or budgets[future] is None:
                            continue
                        if future.running() or future.done():
                            deadlines[future] = now + budgets[future]
                        else:
                            # queued with a timeout: poll until it starts
                            wait_timeout = _TIMEOUT_POLL_SECONDS
                    expired = [
                        index_of[f]
                        for f in outstanding
                        if f in deadlines and deadlines[f] <= now and not f.done()
                    ]
                    if expired:
                        # a timed-out chunk may be wedged inside a live
                        # worker — ProcessPoolExecutor cannot cancel a
                        # running task, so the timeout poisons the pool
                        pool_fault = FuturesTimeoutError(
                            f"chunks {sorted(expired)} exceeded their "
                            f"timeout budgets"
                        )
                        break
                    remaining = [
                        deadlines[f] - now for f in outstanding if f in deadlines
                    ]
                    if remaining:
                        nearest = max(0.0, min(remaining))
                        wait_timeout = (
                            nearest
                            if wait_timeout is None
                            else min(wait_timeout, nearest)
                        )
                    completed, _ = futures_wait(
                        outstanding, timeout=wait_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in completed:
                        chunk_index = index_of[future]
                        outstanding.discard(future)
                        try:
                            harvest(future)
                        except BrokenExecutor as exc:
                            # a dead worker poisons the pool
                            pool_fault = exc
                            break
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:
                            # chunk-level failure: the pool survives, only
                            # this chunk is re-submitted
                            if stats is not None:
                                stats.faults += 1
                            failures[chunk_index] += 1
                            if failures[chunk_index] > policy.chunk_retry_budget:
                                if policy.mode == "fail-fast":
                                    raise
                                raise RecoveryExhaustedError(
                                    f"chunk {chunk_index} failed "
                                    f"{failures[chunk_index]} times: {exc!r}",
                                    contributions,
                                ) from exc
                            retry_now.append(chunk_index)
                        else:
                            done.append(chunk_index)

            if pool_fault is not None:
                # worker death or stuck chunk: the pool is poisoned.
                # Keep every contribution that already completed, then
                # rebuild and re-run only the still-empty slots.
                if stats is not None:
                    stats.faults += 1
                for chunk_index, future in submitted:
                    if chunk_index in done:
                        continue
                    try:
                        if future.done() and future.exception() is None:
                            harvest(future)
                            done.append(chunk_index)
                    except Exception:  # pragma: no cover - defensive
                        pass
                pending = [i for i in pending if i not in done]
                timed_out = isinstance(pool_fault, FuturesTimeoutError)
                if rebuilds >= policy.pool_rebuild_budget:
                    # reset() drains the pool (shutdown(wait=True)), which
                    # a wedged worker would block forever — hard-stop the
                    # workers first so the terminal error actually raises
                    # and a degrading caller can take over
                    _abort_pool(self._resources.pool)
                    self._resources.pool = None
                    self.reset()
                    if policy.mode == "fail-fast":
                        if timed_out:
                            raise ChunkTimeoutError(
                                f"chunk exceeded its timeout budget "
                                f"({len(pending)} chunks unfinished)"
                            ) from pool_fault
                        raise pool_fault
                    raise RecoveryExhaustedError(
                        f"pool fault with rebuild budget exhausted "
                        f"({rebuilds} rebuilds used, {len(pending)} chunks "
                        f"unfinished): {pool_fault!r}",
                        contributions,
                    ) from pool_fault
                rebuilds += 1
                if stats is not None:
                    stats.retries += len(pending)
                self._rebuild_after_fault(
                    plan, network, cache, sum_batch_axes, stats,
                    backoff=policy.backoff(rebuilds - 1),
                )
                continue

            if retry_now:
                with RecoveryClock(stats):
                    if stats is not None:
                        stats.retries += len(retry_now)
                    backoff = max(
                        policy.backoff(failures[i] - 1) for i in retry_now
                    )
                    if backoff > 0:
                        time.sleep(backoff)
            pending = retry_now

        if (
            self._blob is not None
            and len(self._confirmed_pids) >= self._backend.max_workers
        ):
            # every worker the pool will ever have (it never respawns dead
            # ones — it breaks instead) holds this generation: later
            # chunks no longer need to carry the republish payload
            self._blob = None
        return contributions

    def _rebuild_after_fault(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
        stats: Optional[PlanStats],
        backoff: float = 0.0,
    ) -> None:
        """Crash recovery: hard-stop the pool, republish, respawn.

        The dead pool's workers are terminated (a stuck worker would
        otherwise keep its segment attachments alive), the previous
        generation's segments are unlinked and fresh ones published, and
        a new pool is spawned with the new payload as its initializer —
        all through the same :meth:`ensure` path a cold session uses, so
        recovery cannot diverge from a clean start.
        """
        with RecoveryClock(stats):
            _abort_pool(self._resources.pool)
            self._resources.pool = None
            if backoff > 0:
                time.sleep(backoff)
            # pool is gone -> ensure republishes the segments under a new
            # generation and spawns a fresh pool
            self._ensure(plan, network, cache, sum_batch_axes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else ("live" if self.pool_is_live else "idle")
        return (
            f"ExecutionSession({state}, generation={self._generation}, "
            f"pool_launches={self.pool_launches})"
        )


class SharedMemoryProcessPoolBackend(_PooledBackend):
    """Distribute subtask chunks over a shared-memory process pool.

    The invariant cache is warmed once in the parent, then the warm cache
    and the needed leaf buffers are published to workers through
    ``multiprocessing.shared_memory`` — copied into the segments once, not
    per subtask — and subtask chunks are streamed to the pool.  Workers
    return per-subtask contributions which the parent folds strictly in
    assignment order, so the result is bit-identical to
    :class:`SerialBackend` for every worker count and chunk size.

    Pool and segment lifetime is governed by an :class:`ExecutionSession`:
    inside ``with backend.session(plan, network, cache): ...`` (or any
    session opened through :meth:`session`) consecutive ``run_subtasks``
    calls reuse the spawned pool and the published segments, republishing
    only when the leaf-data fingerprint changes.  Without an open session
    each call runs in an ephemeral session (spawn, run, drain, unlink —
    the pre-session behaviour).

    Wins over threads for many-small-subtask workloads, where per-subtask
    interpreter overhead (plan bookkeeping, leaf slicing) dominates the
    GIL-free GEMM time.

    Parameters
    ----------
    max_workers:
        Process count.
    chunk_size:
        Subtasks per work item; default streams ~4 chunks per worker.
    """

    name = "process-pool"

    def __init__(self, max_workers: int, chunk_size: Optional[int] = None) -> None:
        super().__init__(max_workers, chunk_size)
        self._session: Optional[ExecutionSession] = None

    # ------------------------------------------------------------------
    def session(
        self,
        plan: Optional[CompiledPlan] = None,
        network: Optional[TensorNetwork] = None,
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ) -> ExecutionSession:
        """Open (or reuse) the backend's persistent :class:`ExecutionSession`.

        With ``plan`` and ``network`` supplied the session is eagerly
        warmed: the invariant cache is computed, the segments published
        and the pool spawned before the first ``run_subtasks`` call.
        Without them the session starts idle and materializes on first
        use — the form long-lived callers whose plan changes per batch
        (e.g. a sampling run) use.
        """
        session = self._session
        if session is None or session.closed:
            session = ExecutionSession(self)
            self._session = session
        if plan is not None:
            if network is None:
                raise ValueError("session(plan=...) also requires network=")
            self.warm(plan, network, cache, stats)
            session.ensure(plan, network, cache, sum_batch_axes)
        return session

    def close(self) -> None:
        """Close the active session (idempotent)."""
        session, self._session = self._session, None
        if session is not None:
            session.close()

    def reset_session(self) -> None:
        """Rebuild path for axis-order mutations: drop pool and segments."""
        session = self._session
        if session is not None and not session.closed:
            session.reset()

    # ------------------------------------------------------------------
    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> Optional[Tensor]:
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        if policy is None:
            policy = self.fault_policy or FAIL_FAST
        if injector is None:
            injector = self.fault_injector
        if len(assignments) == 1 or self.max_workers == 1:
            return self._run_serially(
                plan, network, assignments, cache, sum_batch_axes, stats,
                checkpoint=checkpoint, injector=injector,
            )
        try:
            session = self._session
            if session is not None and not session.closed:
                contributions = session.run(
                    plan, network, assignments, cache, sum_batch_axes, stats,
                    policy=policy, injector=injector, checkpoint=checkpoint,
                )
            else:
                with ExecutionSession(self) as scratch:
                    contributions = scratch.run(
                        plan, network, assignments, cache, sum_batch_axes,
                        stats, policy=policy, injector=injector,
                        checkpoint=checkpoint,
                    )
        except RecoveryExhaustedError as exc:
            if policy.mode != "degrade":
                raise
            # pool recovery ran out: finish the empty ordered slots on
            # the degradation chain.  Filled slots keep their bit-exact
            # pool-computed contributions, so the final fold is identical
            # to a clean run.
            contributions = list(exc.contributions)
            if len(contributions) != len(assignments):
                contributions = [None] * len(assignments)
            for substrate in policy.degradation_chain:
                try:
                    run_degraded(
                        substrate, plan, network, assignments, contributions,
                        cache, sum_batch_axes, stats, self.max_workers,
                    )
                except Exception:
                    continue
                if stats is not None and stats.degraded_to is None:
                    stats.degraded_to = substrate
                break
            missing = [i for i, c in enumerate(contributions) if c is None]
            if missing:
                raise RecoveryExhaustedError(
                    f"degradation chain {policy.degradation_chain} left "
                    f"{len(missing)} slots unfilled",
                    contributions,
                ) from exc
        return self._merge_ordered(plan, contributions, sum_batch_axes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedMemoryProcessPoolBackend(max_workers={self.max_workers})"
