"""Pluggable execution backends: *what* to contract vs *how* to run it.

The paper's process-level strategy farms the ``prod w(e)`` slicing subtasks
across workers while keeping each worker's footprint under the memory
target.  Which *scheduling substrate* runs the subtasks — in-process serial,
a thread pool, a process pool — is orthogonal to the compiled plan that
describes them, so this module separates the two behind a small protocol
(the split used by engines such as QTensor's backend objects):

``ExecutionBackend.run_subtasks(plan, network, assignments, ...)`` executes
one :class:`~repro.execution.plan.CompiledPlan` for every assignment in the
given order and returns the accumulated result tensor.

Every backend honours the same **ordered-accumulation contract**: subtask
contributions are summed strictly in assignment order, so all backends —
any worker count, any chunk size — produce **bit-identical** results.  The
parallel backends exploit this by shipping per-subtask contributions back
to the caller (cheap: a subtask's result is the small output tensor; the
expensive part is the contraction) and folding them in order.

Backends:

* :class:`SerialBackend` — in-process loop; the baseline substrate.
* :class:`ThreadPoolBackend` — ``concurrent.futures`` threads over subtask
  chunks; numpy releases the GIL inside the contraction kernels, so this
  wins for few large subtasks.
* :class:`SharedMemoryProcessPoolBackend` — a process pool that ships the
  slice-invariant cached intermediates and the leaf buffers to workers via
  ``multiprocessing.shared_memory`` *once*, then streams subtask chunks;
  this sidesteps the interpreter entirely and wins for many small subtasks
  whose per-task Python overhead would serialize a thread pool.

Each worker (and each backend's serial loop) owns a private
:class:`~repro.execution.plan.StemSlots` arena, so the stem's running
tensor reuses two preallocated buffers instead of hitting the allocator
once per stem step.
"""

from __future__ import annotations

import math
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .plan import CompiledPlan, PlanStats, StemSlots

__all__ = [
    "ExecutionBackend",
    "SerialBackend",
    "SharedMemoryProcessPoolBackend",
    "ThreadPoolBackend",
    "resolve_backend",
    "validate_execution_args",
]


# ----------------------------------------------------------------------
# Shared validation (SlicedExecutor, CorrelatedSampler, TreeExecutor)
# ----------------------------------------------------------------------
def validate_execution_args(
    mode: str,
    backend: Optional["ExecutionBackend"] = None,
    max_workers: Optional[int] = None,
) -> None:
    """Validate the mode/parallelism combination with uniform errors.

    Every entry point (sliced executor, tree executor, sampler, planner)
    funnels through this so that the reference mode rejects parallel
    execution with the same ``ValueError`` everywhere.
    """
    if mode not in ("compiled", "reference"):
        raise ValueError(f"unknown execution mode {mode!r}")
    if backend is not None and max_workers:
        raise ValueError("pass either backend= or max_workers=, not both")
    if mode == "reference":
        if max_workers:
            raise ValueError("max_workers requires the compiled mode")
        if backend is not None:
            raise ValueError("backend requires the compiled mode")


def resolve_backend(
    backend: Optional["ExecutionBackend"] = None,
    max_workers: Optional[int] = None,
) -> "ExecutionBackend":
    """Resolve the ``backend=`` / legacy ``max_workers=`` pair to a backend.

    ``max_workers`` is a deprecated shim kept for the pre-backend API: a
    value > 1 maps to ``ThreadPoolBackend(max_workers)``.  Passing both is
    an error.
    """
    if backend is not None:
        if max_workers:
            raise ValueError("pass either backend= or max_workers=, not both")
        return backend
    if max_workers and int(max_workers) > 1:
        warnings.warn(
            "max_workers= is deprecated; pass backend=ThreadPoolBackend(max_workers=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return ThreadPoolBackend(max_workers=int(max_workers))
    return SerialBackend()


# ----------------------------------------------------------------------
# Helpers shared by the backends and the pool workers
# ----------------------------------------------------------------------
def _contribution(tensor: Tensor, sum_batch_axes: int) -> np.ndarray:
    """One subtask's contribution (batched sweeps collapse the batch axes)."""
    data = tensor.require_data()
    if sum_batch_axes:
        return data.sum(axis=tuple(range(sum_batch_axes)))
    return data


def _owned_contribution(tensor: Tensor, sum_batch_axes: int) -> np.ndarray:
    """A contribution buffer the caller may keep and mutate.

    The batch-axis sum already allocates a fresh array; otherwise the
    plan's output may alias the invariant cache or a stem slot and must be
    copied out.
    """
    contribution = _contribution(tensor, sum_batch_axes)
    if sum_batch_axes:
        return contribution
    return np.array(contribution, copy=True)


def _result_tensor(
    plan: CompiledPlan, accumulated: np.ndarray, sum_batch_axes: int
) -> Tensor:
    """Wrap the accumulated array with the plan's (batch-stripped) indices."""
    out_indices = plan.out_indices[sum_batch_axes:]
    sizes = plan.out_sizes
    return Tensor(
        out_indices, data=accumulated, sizes={ix: sizes[ix] for ix in out_indices}
    )


def _serial_accumulate(
    plan: CompiledPlan,
    network: TensorNetwork,
    assignments: Sequence[Mapping[str, int]],
    cache: Optional[Dict[int, np.ndarray]],
    sum_batch_axes: int,
    stats: Optional[PlanStats],
    slots: Optional[StemSlots],
) -> np.ndarray:
    """In-order, in-process accumulation — the reduction all backends match."""
    accumulated: Optional[np.ndarray] = None
    for assignment in assignments:
        tensor = plan.execute(network, assignment, cache=cache, stats=stats, slots=slots)
        if accumulated is None:
            # the first contribution may alias the invariant cache or a
            # stem slot, both overwritten by later subtasks, so take an
            # owned buffer once
            accumulated = _owned_contribution(tensor, sum_batch_axes)
        else:
            accumulated += _contribution(tensor, sum_batch_axes)
    assert accumulated is not None
    return accumulated


def _chunked(items: List, chunk_size: int) -> List[List]:
    """Split ``items`` into contiguous chunks of at most ``chunk_size``."""
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


class ExecutionBackend:
    """Protocol for subtask scheduling substrates.

    A backend executes a compiled plan over a sequence of slicing
    assignments and returns the accumulated result.  Implementations must
    sum contributions strictly in assignment order (the ordered-accumulation
    contract) so that every backend is bit-identical to
    :class:`SerialBackend`.

    Backends are reusable across runs and executors but are not safe for
    *concurrent* ``run_subtasks`` calls on the same instance.
    """

    #: Short name used in benchmark tables and reprs.
    name = "base"

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ) -> Optional[Tensor]:
        """Execute ``plan`` for every assignment and sum the results.

        Parameters
        ----------
        plan:
            The compiled plan (shared, read-only).
        network:
            The concrete network the plan was compiled against.
        assignments:
            Slicing assignments, one per subtask, in accumulation order.
        cache:
            Optional slice-invariant cache.  Warmed here (in the caller's
            process) if cold, so pool workers always receive it warm and
            every invariant contraction still runs exactly once.
        sum_batch_axes:
            Number of leading batch axes each execution collapses (batched
            sweeps); the returned tensor has them stripped.
        stats:
            Optional counters; worker-local stats are merged in.

        Returns the accumulated :class:`Tensor` (a fresh buffer owned by
        the caller), or ``None`` when ``assignments`` is empty.
        """
        raise NotImplementedError

    def warm(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]],
        stats: Optional[PlanStats],
    ) -> None:
        """Warm the invariant cache once, in the calling process."""
        if cache is not None and not plan.cache_is_warm(cache):
            plan.warm_cache(network, cache, stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Run every subtask in the calling thread, in order."""

    name = "serial"

    def __init__(self) -> None:
        self._slots = StemSlots()

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ) -> Optional[Tensor]:
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        accumulated = _serial_accumulate(
            plan, network, assignments, cache, sum_batch_axes, stats, self._slots
        )
        return _result_tensor(plan, accumulated, sum_batch_axes)


class _PooledBackend(ExecutionBackend):
    """Common chunking/merging machinery of the two pool backends."""

    def __init__(self, max_workers: int, chunk_size: Optional[int] = None) -> None:
        self.max_workers = int(max_workers)
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.chunk_size = int(chunk_size) if chunk_size is not None else None
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self._slots = StemSlots()

    def _chunks(self, assignments: Sequence[Mapping[str, int]]) -> List[List]:
        """Positioned chunks; ~4 per worker by default to stream evenly."""
        items = list(enumerate(assignments))
        if self.chunk_size is not None:
            chunk_size = self.chunk_size
        else:
            chunk_size = max(1, math.ceil(len(items) / (4 * self.max_workers)))
        return _chunked(items, chunk_size)

    def _merge_ordered(
        self,
        plan: CompiledPlan,
        contributions: List[Optional[np.ndarray]],
        sum_batch_axes: int,
    ) -> Tensor:
        accumulated = contributions[0]
        assert accumulated is not None
        for contribution in contributions[1:]:
            assert contribution is not None
            accumulated += contribution
        return _result_tensor(plan, accumulated, sum_batch_axes)

    def _run_serially(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
        stats: Optional[PlanStats],
    ) -> Tensor:
        accumulated = _serial_accumulate(
            plan, network, assignments, cache, sum_batch_axes, stats, self._slots
        )
        return _result_tensor(plan, accumulated, sum_batch_axes)


class ThreadPoolBackend(_PooledBackend):
    """Distribute subtask chunks over a thread pool.

    numpy releases the GIL inside the contraction kernels, so threads
    amortize well when each subtask is large; per-subtask Python overhead
    is still serialized, which is where the process pool takes over.

    Parameters
    ----------
    max_workers:
        Thread count.
    chunk_size:
        Subtasks per work item; default streams ~4 chunks per thread.
    """

    name = "threads"

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ) -> Optional[Tensor]:
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        if len(assignments) == 1 or self.max_workers == 1:
            return self._run_serially(
                plan, network, assignments, cache, sum_batch_axes, stats
            )

        contributions: List[Optional[np.ndarray]] = [None] * len(assignments)
        thread_state = threading.local()

        def work(chunk: List[Tuple[int, Mapping[str, int]]]) -> PlanStats:
            local_stats = PlanStats()
            # one arena per pool thread, reused across its chunks
            slots = getattr(thread_state, "slots", None)
            if slots is None:
                slots = thread_state.slots = StemSlots()
            for position, assignment in chunk:
                tensor = plan.execute(
                    network, assignment, cache=cache, stats=local_stats, slots=slots
                )
                contributions[position] = _owned_contribution(tensor, sum_batch_axes)
            return local_stats

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            for local_stats in pool.map(work, self._chunks(assignments)):
                if stats is not None:
                    stats.merge(local_stats)
        return self._merge_ordered(plan, contributions, sum_batch_axes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ThreadPoolBackend(max_workers={self.max_workers})"


# ----------------------------------------------------------------------
# Shared-memory process pool
# ----------------------------------------------------------------------
#: Per-worker state installed by the pool initializer.
_WORKER_STATE: Optional["_WorkerState"] = None


class _LeafStore:
    """Minimal stand-in for :class:`TensorNetwork` inside pool workers.

    The compiled plan only ever calls ``network.tensor(tid)`` while
    executing, so workers rebuild just that mapping from the shared-memory
    leaf buffers.
    """

    def __init__(self, tensors: Dict[int, Tensor]) -> None:
        self._tensors = tensors

    def tensor(self, tid: int) -> Tensor:
        return self._tensors[tid]


class _WorkerState:
    """Plan + shared-memory views held for the lifetime of a pool worker."""

    def __init__(
        self,
        plan: CompiledPlan,
        network: _LeafStore,
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
        segments: List[shared_memory.SharedMemory],
    ) -> None:
        self.plan = plan
        self.network = network
        self.cache = cache
        self.sum_batch_axes = sum_batch_axes
        # keep the SharedMemory handles alive: the ndarray views above
        # borrow their buffers
        self.segments = segments
        self.slots = StemSlots()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a segment the parent owns (and will unlink).

    On Python >= 3.13 the attachment opts out of resource tracking; before
    that the worker's re-registration lands in the tracker process the
    pool shares with the parent, where it is an idempotent set-add that
    the parent's single ``unlink`` cleans up.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track= keyword
        return shared_memory.SharedMemory(name=name)


def _shm_view(meta: Tuple[str, Tuple[int, ...], str], segments: List) -> np.ndarray:
    name, shape, dtype = meta
    segment = _attach_segment(name)
    segments.append(segment)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf)


def _init_worker(
    plan: CompiledPlan,
    leaf_meta: Dict[int, Tuple[str, Tuple[int, ...], str, Tuple[str, ...]]],
    cache_meta: Optional[Dict[int, Tuple[str, Tuple[int, ...], str]]],
    sum_batch_axes: int,
) -> None:
    """Pool initializer: attach the shared buffers once per worker."""
    global _WORKER_STATE
    segments: List[shared_memory.SharedMemory] = []
    tensors: Dict[int, Tensor] = {}
    for tid, (name, shape, dtype, indices) in leaf_meta.items():
        tensors[tid] = Tensor(indices, data=_shm_view((name, shape, dtype), segments))
    cache: Optional[Dict[int, np.ndarray]] = None
    if cache_meta is not None:
        cache = {
            node: _shm_view(meta, segments) for node, meta in cache_meta.items()
        }
    _WORKER_STATE = _WorkerState(
        plan, _LeafStore(tensors), cache, sum_batch_axes, segments
    )


def _run_chunk(
    chunk: List[Tuple[int, Mapping[str, int]]]
) -> Tuple[int, List[np.ndarray], PlanStats]:
    """Execute one chunk in a worker; returns (start position, results, stats)."""
    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    local_stats = PlanStats()
    results: List[np.ndarray] = []
    for _, assignment in chunk:
        tensor = state.plan.execute(
            state.network,  # type: ignore[arg-type]
            assignment,
            cache=state.cache,
            stats=local_stats,
            slots=state.slots,
        )
        results.append(_owned_contribution(tensor, state.sum_batch_axes))
    return chunk[0][0], results, local_stats


class SharedMemoryProcessPoolBackend(_PooledBackend):
    """Distribute subtask chunks over a shared-memory process pool.

    The invariant cache is warmed once in the parent, then the warm cache
    and the needed leaf buffers are published to workers through
    ``multiprocessing.shared_memory`` — copied into the segments once, not
    per subtask — and subtask chunks are streamed to the pool.  Workers
    return per-subtask contributions which the parent folds strictly in
    assignment order, so the result is bit-identical to
    :class:`SerialBackend` for every worker count and chunk size.

    Wins over threads for many-small-subtask workloads, where per-subtask
    interpreter overhead (plan bookkeeping, leaf slicing) dominates the
    GIL-free GEMM time.

    Parameters
    ----------
    max_workers:
        Process count.
    chunk_size:
        Subtasks per work item; default streams ~4 chunks per worker.
    """

    name = "process-pool"

    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ) -> Optional[Tensor]:
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        if len(assignments) == 1 or self.max_workers == 1:
            return self._run_serially(
                plan, network, assignments, cache, sum_batch_axes, stats
            )

        segments: List[shared_memory.SharedMemory] = []

        def publish(array: np.ndarray) -> Tuple[str, Tuple[int, ...], str]:
            array = np.ascontiguousarray(array)
            segment = shared_memory.SharedMemory(
                create=True, size=max(array.nbytes, 1)
            )
            segments.append(segment)
            np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[...] = array
            return segment.name, array.shape, array.dtype.str

        try:
            # ship only what the workers will read: the slice-dependent
            # leaves when the invariant cache covers the rest, every leaf
            # otherwise
            if cache is not None:
                needed = [
                    ls for ls in plan.leaf_steps if ls.node in plan.dependent_nodes
                ]
                cache_meta: Optional[Dict[int, Tuple[str, Tuple[int, ...], str]]] = {
                    node: publish(buffer) for node, buffer in cache.items()
                }
            else:
                needed = list(plan.leaf_steps)
                cache_meta = None
            leaf_meta = {}
            for ls in needed:
                tensor = network.tensor(ls.tid)
                name, shape, dtype = publish(tensor.require_data())
                leaf_meta[ls.tid] = (name, shape, dtype, tensor.indices)

            contributions: List[Optional[np.ndarray]] = [None] * len(assignments)
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(plan, leaf_meta, cache_meta, sum_batch_axes),
            ) as pool:
                for start, results, local_stats in pool.map(
                    _run_chunk, self._chunks(assignments)
                ):
                    for offset, contribution in enumerate(results):
                        contributions[start + offset] = contribution
                    if stats is not None:
                        stats.merge(local_stats)
        finally:
            for segment in segments:
                segment.close()
                segment.unlink()
        return self._merge_ordered(plan, contributions, sum_batch_axes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedMemoryProcessPoolBackend(max_workers={self.max_workers})"
