"""Sliced contraction execution with result accumulation.

The process-level strategy of the paper: after choosing a slicing set ``S``,
the ``prod w(e)`` independent subtasks are executed (in parallel across
nodes on the real machine, sequentially here) and their results are summed.
Each subtask fixes every sliced index to one value and contracts the whole
network with the same contraction tree; because the sliced indices are
inner (summed) indices, the sum of the subtask results equals the unsliced
contraction exactly — a property the test suite checks both exhaustively
and with hypothesis.

:class:`SlicedExecutor` also supports partial execution (a subset of the
subtasks), which is what the sampling workflows use, and reports per-subtask
statistics that the process-level scheduler consumes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .contract import TreeExecutor

__all__ = ["SlicedExecutor", "SubtaskResult"]


@dataclass(frozen=True)
class SubtaskResult:
    """Result of one slicing subtask.

    Attributes
    ----------
    assignment:
        The values assigned to the sliced indices.
    tensor:
        The subtask's (partial) result tensor.
    """

    assignment: Dict[str, int]
    tensor: Tensor


class SlicedExecutor:
    """Executes a sliced contraction and accumulates the subtask results.

    Parameters
    ----------
    network:
        Concrete tensor network.
    tree:
        Contraction tree over the network.
    sliced:
        Slicing set.  Every sliced index must be an *inner* index of the
        network (slicing an open index would partition the output instead of
        decomposing the sum, which is not what the paper's scheme does).
    dtype:
        Optional dtype override for intermediates.
    """

    def __init__(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        sliced: AbstractSet[str],
        dtype: Optional[np.dtype] = None,
    ) -> None:
        self.network = network
        self.tree = tree
        self.sliced: Tuple[str, ...] = tuple(sorted(sliced))
        inner = network.inner_indices()
        bad = [ix for ix in self.sliced if ix not in inner]
        if bad:
            raise ValueError(f"sliced indices {bad} are not inner indices of the network")
        self._sizes = {ix: network.size_of(ix) for ix in self.sliced}
        self._executor = TreeExecutor(dtype=dtype)

    # ------------------------------------------------------------------
    @property
    def num_subtasks(self) -> int:
        """Total number of independent subtasks ``prod w(e)``."""
        out = 1
        for ix in self.sliced:
            out *= self._sizes[ix]
        return out

    def assignments(self) -> Iterator[Dict[str, int]]:
        """Iterate over every slicing assignment in lexicographic order."""
        ranges = [range(self._sizes[ix]) for ix in self.sliced]
        for values in itertools.product(*ranges):
            yield dict(zip(self.sliced, values))

    def assignment(self, subtask_id: int) -> Dict[str, int]:
        """The assignment of subtask ``subtask_id`` (mixed-radix decoding)."""
        if not 0 <= subtask_id < self.num_subtasks:
            raise ValueError(f"subtask id {subtask_id} out of range")
        values: Dict[str, int] = {}
        remaining = subtask_id
        for ix in reversed(self.sliced):
            size = self._sizes[ix]
            values[ix] = remaining % size
            remaining //= size
        return {ix: values[ix] for ix in self.sliced}

    # ------------------------------------------------------------------
    def run_subtask(self, subtask_id: int) -> SubtaskResult:
        """Execute a single subtask."""
        assignment = self.assignment(subtask_id)
        tensor = self._executor.execute(self.network, self.tree, assignment)
        return SubtaskResult(assignment=assignment, tensor=tensor)

    def run(self, subtask_ids: Optional[Sequence[int]] = None) -> Tensor:
        """Execute subtasks and return the accumulated result.

        Parameters
        ----------
        subtask_ids:
            Which subtasks to run; ``None`` runs them all (yielding the
            exact contraction value).  Running a subset gives a partial sum,
            which is only meaningful for diagnostics.
        """
        ids: Iterable[int] = (
            range(self.num_subtasks) if subtask_ids is None else subtask_ids
        )
        accumulated: Optional[np.ndarray] = None
        result_indices: Optional[Tuple[str, ...]] = None
        result_sizes: Optional[Dict[str, int]] = None
        for subtask_id in ids:
            result = self.run_subtask(subtask_id)
            data = result.tensor.require_data()
            if accumulated is None:
                accumulated = np.array(data, copy=True)
                result_indices = result.tensor.indices
                result_sizes = result.tensor.sizes()
            else:
                accumulated = accumulated + data
        if accumulated is None:
            raise ValueError("no subtasks were executed")
        assert result_indices is not None and result_sizes is not None
        return Tensor(result_indices, data=accumulated, sizes=result_sizes)

    def amplitude(self, subtask_ids: Optional[Sequence[int]] = None) -> complex:
        """Accumulated scalar value (requires a closed network)."""
        tensor = self.run(subtask_ids)
        data = tensor.require_data()
        if data.size != 1:
            raise ValueError("network is not closed; use run() instead")
        return complex(data.reshape(()))

    # ------------------------------------------------------------------
    def subtask_cost_estimate(self) -> float:
        """Planned flops of one subtask (scalar multiply-adds, Eq. 1 with S removed)."""
        return self.tree.contraction_cost(frozenset(self.sliced))

    def total_cost_estimate(self) -> float:
        """Planned flops over all subtasks (Eq. 4)."""
        return self.tree.total_cost(frozenset(self.sliced))
