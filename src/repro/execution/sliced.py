"""Sliced contraction execution with result accumulation.

The process-level strategy of the paper: after choosing a slicing set ``S``,
the ``prod w(e)`` independent subtasks are executed (in parallel across
nodes on the real machine; here sequentially, or across a thread pool) and
their results are summed.  Each subtask fixes every sliced index to one
value and contracts the whole network with the same contraction tree;
because the sliced indices are inner (summed) indices, the sum of the
subtask results equals the unsliced contraction exactly — a property the
test suite checks both exhaustively and with hypothesis.

:class:`SlicedExecutor` executes the subtasks through a
:class:`~repro.execution.plan.CompiledPlan` by default (``mode="compiled"``):
the tree is compiled once into ``tensordot`` axis pairs, slice-invariant
intermediates — subtrees no sliced edge's lifetime reaches — are contracted
once and shared across every subtask, and optionally one sliced index is
kept as a leading batch axis so that all of its values are swept in a
single batched contraction (``batch_index=``).  ``mode="reference"``
selects the seed einsum walker, which re-plans and re-contracts everything
per subtask; it is the path everything else is cross-checked against.

:class:`SlicedExecutor` also supports partial execution (a subset of the
subtasks), which is what the sampling workflows use, and reports per-subtask
statistics that the process-level scheduler consumes.
"""

from __future__ import annotations

import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .contract import TreeExecutor
from .plan import CompiledPlan, PlanStats, compile_plan

__all__ = ["SlicedExecutor", "SubtaskResult"]


@dataclass(frozen=True)
class SubtaskResult:
    """Result of one slicing subtask.

    Attributes
    ----------
    assignment:
        The values assigned to the sliced indices.
    tensor:
        The subtask's (partial) result tensor.
    """

    assignment: Dict[str, int]
    tensor: Tensor


class SlicedExecutor:
    """Executes a sliced contraction and accumulates the subtask results.

    Parameters
    ----------
    network:
        Concrete tensor network.
    tree:
        Contraction tree over the network.
    sliced:
        Slicing set.  Every sliced index must be an *inner* index of the
        network (slicing an open index would partition the output instead of
        decomposing the sum, which is not what the paper's scheme does).
    dtype:
        Optional dtype override for intermediates.
    mode:
        ``"compiled"`` (default) executes through a compiled plan;
        ``"reference"`` uses the seed einsum walker.
    cache_invariant:
        Compute slice-invariant intermediates once and reuse them across
        all subtasks (compiled mode only).  Replacing a network tensor via
        ``replace_tensor`` between runs is detected and invalidates the
        cache; mutating a tensor's numpy buffer *in place* is not — treat
        tensor data as immutable (as the rest of the codebase does) or
        construct a fresh executor after such a mutation.
    batch_index:
        Keep one sliced index as a live batch axis so :meth:`run` sweeps
        all of its values in a single batched contraction per remaining
        assignment.  ``"auto"`` picks the largest sliced index; ``None``
        disables batching.  Compiled mode only.
    max_workers:
        When > 1, :meth:`run` distributes subtask chunks over a
        ``concurrent.futures`` thread pool (numpy releases the GIL inside
        the contraction kernels) and merges the partial accumulators.
        Compiled mode only.
    """

    def __init__(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        sliced: AbstractSet[str],
        dtype: Optional[np.dtype] = None,
        mode: str = "compiled",
        cache_invariant: bool = True,
        batch_index: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.network = network
        self.tree = tree
        self.sliced: Tuple[str, ...] = tuple(sorted(sliced))
        inner = network.inner_indices()
        bad = [ix for ix in self.sliced if ix not in inner]
        if bad:
            raise ValueError(f"sliced indices {bad} are not inner indices of the network")
        if mode not in ("compiled", "reference"):
            raise ValueError(f"unknown execution mode {mode!r}")
        self.mode = mode
        self._sizes = {ix: network.size_of(ix) for ix in self.sliced}
        self._dtype = np.dtype(dtype) if dtype is not None else None
        self._cache_invariant = bool(cache_invariant)
        self._max_workers = int(max_workers) if max_workers else None
        if self._max_workers and mode == "reference":
            raise ValueError("max_workers requires the compiled mode")

        self.batch_index: Optional[str] = None
        if batch_index is not None:
            if mode == "reference":
                raise ValueError("batched execution requires the compiled mode")
            if batch_index == "auto":
                if self.sliced:
                    self.batch_index = max(
                        self.sliced, key=lambda ix: (self._sizes[ix], ix)
                    )
            elif batch_index in self.sliced:
                self.batch_index = batch_index
            else:
                raise ValueError(f"batch index {batch_index!r} is not in the sliced set")

        #: Per-node execution counters (compiled mode); the cached path must
        #: keep every slice-invariant node at exactly one execution.
        self.stats = PlanStats()
        self._executor = (
            TreeExecutor(dtype=dtype, compiled=False) if mode == "reference" else None
        )
        self._plan: Optional[CompiledPlan] = None
        self._batched_plan: Optional[CompiledPlan] = None
        self._cache: Optional[Dict[int, np.ndarray]] = None
        self._batched_cache: Optional[Dict[int, np.ndarray]] = None
        self._leaf_tensors: Tuple = ()
        if mode == "compiled":
            self._compile_plans()

    # ------------------------------------------------------------------
    @property
    def plan(self) -> Optional[CompiledPlan]:
        """The compiled per-subtask plan (``None`` in reference mode)."""
        return self._plan

    @property
    def batched_plan(self) -> Optional[CompiledPlan]:
        """The compiled batched-sweep plan, when batching is enabled."""
        return self._batched_plan

    @property
    def num_subtasks(self) -> int:
        """Total number of independent subtasks ``prod w(e)``."""
        out = 1
        for ix in self.sliced:
            out *= self._sizes[ix]
        return out

    @property
    def num_batched_sweeps(self) -> int:
        """Number of batched executions covering all subtasks."""
        if self.batch_index is None:
            return self.num_subtasks
        return self.num_subtasks // self._sizes[self.batch_index]

    def assignments(self) -> Iterator[Dict[str, int]]:
        """Iterate over every slicing assignment in lexicographic order."""
        ranges = [range(self._sizes[ix]) for ix in self.sliced]
        for values in itertools.product(*ranges):
            yield dict(zip(self.sliced, values))

    def assignment(self, subtask_id: int) -> Dict[str, int]:
        """The assignment of subtask ``subtask_id`` (mixed-radix decoding)."""
        if not 0 <= subtask_id < self.num_subtasks:
            raise ValueError(f"subtask id {subtask_id} out of range")
        values: Dict[str, int] = {}
        remaining = subtask_id
        for ix in reversed(self.sliced):
            size = self._sizes[ix]
            values[ix] = remaining % size
            remaining //= size
        return {ix: values[ix] for ix in self.sliced}

    def batched_assignments(self) -> Iterator[Dict[str, int]]:
        """Assignments of the enumerated (non-batch) indices, in order."""
        enumerated = [ix for ix in self.sliced if ix != self.batch_index]
        ranges = [range(self._sizes[ix]) for ix in enumerated]
        for values in itertools.product(*ranges):
            yield dict(zip(enumerated, values))

    # ------------------------------------------------------------------
    def _ensure_cache(self, plan: CompiledPlan, cache: Optional[Dict[int, np.ndarray]]) -> None:
        if cache is not None and not plan.cache_is_warm(cache):
            plan.warm_cache(self.network, cache, self.stats)

    def _compile_plans(self) -> None:
        """(Re)compile the execution plans and reset caches and snapshot."""
        self._plan = compile_plan(
            self.network, self.tree, frozenset(self.sliced), dtype=self._dtype
        )
        self._cache = self._plan.new_cache() if self._cache_invariant else None
        self._batched_plan = None
        self._batched_cache = None
        if self.batch_index is not None:
            self._batched_plan = compile_plan(
                self.network,
                self.tree,
                frozenset(self.sliced),
                batch_index=self.batch_index,
                dtype=self._dtype,
            )
            self._batched_cache = (
                self._batched_plan.new_cache() if self._cache_invariant else None
            )
        self._snapshot_leaves()

    def _snapshot_leaves(self) -> None:
        # Tensor objects are immutable, so identity comparison of the
        # snapshot detects any replace_tensor on a leaf
        self._leaf_tensors = tuple(
            self.network.tensor(tid) for tid in self.tree.leaf_tids
        )

    def _refresh_stale_plans(self) -> None:
        """React to network mutations since the plans were compiled.

        An axis-order change invalidates the baked take/tensordot axes and
        forces a recompile; a data-only change (same index structure)
        keeps the plans but must drop the warmed invariant caches, which
        hold intermediates contracted from the old data.
        """
        if self._plan is None:
            return
        if not self._plan.matches_network(self.network):
            self._compile_plans()
            return
        current = tuple(self.network.tensor(tid) for tid in self.tree.leaf_tids)
        if current != self._leaf_tensors:
            if self._cache is not None:
                self._cache.clear()
            if self._batched_cache is not None:
                self._batched_cache.clear()
            self._leaf_tensors = current

    def run_subtask(self, subtask_id: int) -> SubtaskResult:
        """Execute a single subtask."""
        self._refresh_stale_plans()
        return self._subtask_result(subtask_id)

    def _subtask_result(self, subtask_id: int) -> SubtaskResult:
        """One subtask without the staleness check (hot-loop internal)."""
        assignment = self.assignment(subtask_id)
        if self._plan is not None:
            tensor = self._plan.execute(
                self.network, assignment, cache=self._cache, stats=self.stats
            )
        else:
            assert self._executor is not None
            tensor = self._executor.execute(self.network, self.tree, assignment)
        return SubtaskResult(assignment=assignment, tensor=tensor)

    def run(self, subtask_ids: Optional[Sequence[int]] = None) -> Tensor:
        """Execute subtasks and return the accumulated result.

        Parameters
        ----------
        subtask_ids:
            Which subtasks to run; ``None`` runs them all (yielding the
            exact contraction value).  Running a subset gives a partial sum,
            which is only meaningful for diagnostics.  Batched sweeps only
            apply to full runs; a subset always executes subtask-by-subtask.
        """
        self._refresh_stale_plans()
        if subtask_ids is None and self._batched_plan is not None:
            return self._run_batched()
        ids: List[int] = list(
            range(self.num_subtasks) if subtask_ids is None else subtask_ids
        )
        if not ids:
            raise ValueError("no subtasks were executed")
        if self._plan is not None and self._max_workers and len(ids) > 1:
            return self._run_pooled(ids)
        accumulated: Optional[np.ndarray] = None
        result_indices: Optional[Tuple[str, ...]] = None
        result_sizes: Optional[Dict[str, int]] = None
        for subtask_id in ids:
            result = self._subtask_result(subtask_id)
            data = result.tensor.require_data()
            if accumulated is None:
                # copy once: the first subtask's buffer may be shared with
                # the invariant cache, which later subtasks still read;
                # subsequent subtasks accumulate in place
                accumulated = np.array(data, copy=True)
                result_indices = result.tensor.indices
                result_sizes = result.tensor.sizes()
            else:
                accumulated += data
        assert accumulated is not None
        assert result_indices is not None and result_sizes is not None
        return Tensor(result_indices, data=accumulated, sizes=result_sizes)

    def _accumulate_parallel(self, items: List, partial_fn) -> Tuple[np.ndarray, Tensor]:
        """Run ``partial_fn`` over chunks of ``items`` and merge the sums.

        ``partial_fn`` maps a chunk to ``(partial_sum, sample_tensor,
        stats)``; chunks run on the thread pool when one is configured.
        """
        if self._max_workers and len(items) > 1:
            chunks = _chunk(items, self._max_workers)
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                partials = [p for p in pool.map(partial_fn, chunks) if p]
        else:
            partials = [p for p in [partial_fn(items)] if p]
        accumulated, result = partials[0][:2]
        for other, _, _ in partials[1:]:
            accumulated += other
        for _, _, stats in partials:
            self.stats.merge(stats)
        return accumulated, result

    def _run_batched(self) -> Tensor:
        """Sweep the batch index in bulk, enumerating the remaining indices."""
        plan = self._batched_plan
        assert plan is not None
        self._ensure_cache(plan, self._batched_cache)
        accumulated, result = self._accumulate_parallel(
            list(self.batched_assignments()), self._batched_partial
        )
        out_indices = result.indices[1:]  # drop the leading batch axis
        sizes = {ix: result.size_of(ix) for ix in out_indices}
        return Tensor(out_indices, data=accumulated, sizes=sizes)

    def _partial_sum(
        self,
        plan: CompiledPlan,
        cache: Optional[Dict[int, np.ndarray]],
        assignments: Sequence[Dict[str, int]],
        sum_batch_axis: bool,
    ) -> Optional[Tuple[np.ndarray, Tensor, PlanStats]]:
        """Accumulate plan executions over ``assignments`` with local stats.

        ``sum_batch_axis`` collapses the leading batch axis of every
        execution (batched sweeps); otherwise results are summed as-is.
        """
        stats = PlanStats()
        accumulated: Optional[np.ndarray] = None
        result: Optional[Tensor] = None
        for assignment in assignments:
            tensor = plan.execute(self.network, assignment, cache=cache, stats=stats)
            data = tensor.require_data()
            contribution = data.sum(axis=0) if sum_batch_axis else data
            if accumulated is None:
                # copy unless the sum already allocated a fresh buffer: the
                # first execution may share storage with the invariant cache
                accumulated = (
                    contribution if sum_batch_axis else np.array(contribution, copy=True)
                )
                result = tensor
            else:
                accumulated += contribution
        if accumulated is None or result is None:
            return None
        return accumulated, result, stats

    def _batched_partial(
        self, assignments: Sequence[Dict[str, int]]
    ) -> Optional[Tuple[np.ndarray, Tensor, PlanStats]]:
        assert self._batched_plan is not None
        return self._partial_sum(
            self._batched_plan, self._batched_cache, assignments, sum_batch_axis=True
        )

    def _run_pooled(self, ids: Sequence[int]) -> Tensor:
        """Distribute subtask chunks over a thread pool and merge the sums."""
        plan = self._plan
        assert plan is not None
        # warm the cache once up front so workers share it read-only
        self._ensure_cache(plan, self._cache)
        accumulated, result = self._accumulate_parallel(list(ids), self._chunk_partial)
        return Tensor(result.indices, data=accumulated, sizes=result.sizes())

    def _chunk_partial(
        self, ids: Sequence[int]
    ) -> Optional[Tuple[np.ndarray, Tensor, PlanStats]]:
        assert self._plan is not None
        return self._partial_sum(
            self._plan,
            self._cache,
            [self.assignment(subtask_id) for subtask_id in ids],
            sum_batch_axis=False,
        )

    def amplitude(self, subtask_ids: Optional[Sequence[int]] = None) -> complex:
        """Accumulated scalar value (requires a closed network)."""
        tensor = self.run(subtask_ids)
        data = tensor.require_data()
        if data.size != 1:
            raise ValueError("network is not closed; use run() instead")
        return complex(data.reshape(()))

    # ------------------------------------------------------------------
    def subtask_cost_estimate(self) -> float:
        """Planned flops of one subtask (scalar multiply-adds, Eq. 1 with S removed)."""
        return self.tree.contraction_cost(frozenset(self.sliced))

    def total_cost_estimate(self) -> float:
        """Planned flops over all subtasks (Eq. 4)."""
        return self.tree.total_cost(frozenset(self.sliced))


def _chunk(items: List, num_chunks: int) -> List[List]:
    """Split ``items`` into at most ``num_chunks`` contiguous chunks."""
    num_chunks = max(1, min(num_chunks, len(items)))
    size, extra = divmod(len(items), num_chunks)
    out: List[List] = []
    start = 0
    for i in range(num_chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out
