"""Sliced contraction execution with result accumulation.

The process-level strategy of the paper: after choosing a slicing set ``S``,
the ``prod w(e)`` independent subtasks are executed (in parallel across
nodes on the real machine; here through a pluggable
:class:`~repro.execution.backend.ExecutionBackend`) and their results are
summed.  Each subtask fixes every sliced index to one value and contracts
the whole network with the same contraction tree; because the sliced
indices are inner (summed) indices, the sum of the subtask results equals
the unsliced contraction exactly — a property the test suite checks both
exhaustively and with hypothesis.

:class:`SlicedExecutor` executes the subtasks through a
:class:`~repro.execution.plan.CompiledPlan` by default (``mode="compiled"``):
the tree is compiled once into ``tensordot`` axis pairs, slice-invariant
intermediates — subtrees no sliced edge's lifetime reaches — are contracted
once and shared across every subtask, the stem's running tensor alternates
between two preallocated slots, and optionally a group of sliced indices is
kept as leading batch axes so that all of their value combinations are
swept in a single batched contraction (``batch_indices=``).  With
``fused=True`` (or ``"auto"``) whole stem sub-paths additionally execute
as fused runs — intermediates pinned in the arena, permutations
precompiled via the §5.3.1 reduced maps; see
:mod:`repro.execution.fusion`.  ``mode="reference"`` selects the seed
einsum walker, which re-plans and re-contracts everything per subtask; it
is the path everything else is cross-checked against.

*How* the subtasks run — serial, thread pool, shared-memory process pool —
is the backend's concern (``backend=``); see
:mod:`repro.execution.backend` for the selection guide.  All backends sum
contributions in the same order and are bit-identical to each other.

:class:`SlicedExecutor` also supports partial execution (a subset of the
subtasks), which is what the sampling workflows use, and reports per-subtask
statistics that the process-level scheduler consumes.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs.model import CostModel
    from .faultinject import FaultInjector
    from .resilience import FaultPolicy

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .array_module import ArrayModule, resolve_array_module
from .backend import ExecutionBackend, resolve_backend, validate_execution_args
from .checkpoint import CheckpointJob, CheckpointStore, job_fingerprint
from .contract import TreeExecutor
from .plan import CompiledPlan, PlanStats, compile_plan

__all__ = ["SlicedExecutor", "SubtaskResult"]


@dataclass(frozen=True)
class SubtaskResult:
    """Result of one slicing subtask.

    Attributes
    ----------
    assignment:
        The values assigned to the sliced indices.
    tensor:
        The subtask's (partial) result tensor.
    """

    assignment: Dict[str, int]
    tensor: Tensor


class SlicedExecutor:
    """Executes a sliced contraction and accumulates the subtask results.

    Parameters
    ----------
    network:
        Concrete tensor network.
    tree:
        Contraction tree over the network.
    sliced:
        Slicing set.  Every sliced index must be an *inner* index of the
        network (slicing an open index would partition the output instead of
        decomposing the sum, which is not what the paper's scheme does).
    dtype:
        Optional dtype override for intermediates.
    mode:
        ``"compiled"`` (default) executes through a compiled plan;
        ``"reference"`` uses the seed einsum walker.
    cache_invariant:
        Compute slice-invariant intermediates once and reuse them across
        all subtasks (compiled mode only).  Replacing a network tensor via
        ``replace_tensor`` between runs is detected and invalidates the
        cache; mutating a tensor's numpy buffer *in place* is not — treat
        tensor data as immutable (as the rest of the codebase does) or
        construct a fresh executor after such a mutation.
    batch_index:
        Keep one sliced index as a live batch axis — shorthand for a
        one-element ``batch_indices`` group.  ``"auto"`` picks the largest
        sliced index; ``None`` disables batching.  Compiled mode only.
    batch_indices:
        Keep a *group* of sliced indices as live batch axes so :meth:`run`
        sweeps all ``prod w(e)`` of their value combinations in a single
        batched contraction per remaining assignment (rank permitting: each
        live batch axis raises the intermediate rank by one).  ``"auto"``
        picks the single largest sliced index — unless a memory target is
        known (via ``memory_target_rank=`` or the cost model), in which
        case the lifetime-aware selector keeps the largest *group* whose
        live axes keep every intermediate under the target (an empty
        selection falls back to plain enumeration).  When batching is
        enabled the per-subtask (non-batched) plan and its invariant cache
        are compiled lazily, on first :meth:`run_subtask` or subset
        :meth:`run` — pure batched workloads never pay for them.
    max_workers:
        Deprecated shim: ``max_workers=N`` (N > 1) is equivalent to
        ``backend=ThreadPoolBackend(max_workers=N)``.
    backend:
        The :class:`~repro.execution.backend.ExecutionBackend` that
        schedules the subtasks (default :class:`SerialBackend`).  Compiled
        mode only.  Wrap consecutive :meth:`run` calls in
        ``with executor.session(): ...`` to keep the backend's resident
        state (the process pool and its shared-memory segments) alive
        between them.
    cost_model:
        Optional :class:`~repro.costs.CostModel`.  Supplies the memory
        target for lifetime-aware ``batch_indices="auto"`` group selection
        and lets :meth:`calibration_record` package this executor's
        measured timings for :class:`~repro.costs.CalibratedCostModel`.
        ``None`` keeps every decision bit-identical to the uncalibrated
        behaviour.
    memory_target_rank:
        Explicit memory target for the auto batch group; overrides the
        cost model's.
    branch_buffers:
        Route freed off-stem intermediates through the arena's
        size-bucketed free list (see
        :class:`~repro.execution.plan.StemSlots`).  Values are
        bit-identical with the flag on or off.
    fused:
        Execute stem sub-paths as fused runs (§5 brought into the
        compiled plan; see :mod:`repro.execution.fusion`): within a run
        the running stem tensor stays in the arena's slots and scratch —
        no per-step ``transpose → reshape`` allocation — with operand
        permutations precompiled via the §5.3.1 reduced maps.  ``True``
        fuses under ``fused_cap`` (default: the spec's LDM rank);
        ``"auto"`` asks :func:`repro.costs.fusion.select_fusion_cap` for
        the cost-model-ranked cap and stays step-by-step when the stem
        has nothing to fuse; ``False`` (default) keeps the step-by-step
        path.  Results are bit-identical in every mode and on every
        backend.  Compiled mode only.
    fused_cap:
        Explicit working-set rank cap for the fusion pass's §5 group
        analysis (the LDM-budget analogue); overrides the auto-ranked
        choice.  The cap places group boundaries — it is not a bound on
        this process's peak memory.
    fault_policy:
        Optional :class:`~repro.execution.resilience.FaultPolicy`
        governing crash recovery, retries/timeouts and degradation for
        this executor's runs (default: the backend's own configuration,
        else fail fast — the pre-resilience behaviour).  The policy is
        scoped to this executor: it rides along with every
        ``run_subtasks`` call instead of being installed on the (possibly
        shared) backend.  When a ``cost_model`` is present and the policy
        carries no explicit timeout, per-chunk timeouts are derived from
        the model's predicted subtask seconds
        (:meth:`~repro.costs.CostModel.timeout_budget`).  Recovered runs
        are bit-identical to clean ones.  Compiled mode only.
    fault_injector:
        Optional deterministic
        :class:`~repro.execution.faultinject.FaultInjector` (testing
        hook): injects scheduled worker kills, delays and chunk failures
        at submission time.  Compiled mode only.
    tape_engine:
        Which interpreter walks the fused tape: ``"python"`` keeps the
        pure-Python walker, ``"native"`` lowers the tape into the flat
        numba-JIT program of :mod:`repro.execution.tape` (falling back
        to the Python walker at runtime when the JIT is unavailable),
        and ``"auto"`` (default) selects native exactly when numba is
        importable.  Results are bit-identical across engines; the
        choice also keys the cost model's per-step overhead lookup so
        ``fused="auto"`` ranks caps against the engine that will
        actually run.  Only meaningful together with ``fused``;
        compiled mode only.
    array_module:
        The execution substrate the compiled plans' kernels run on: an
        :class:`~repro.execution.array_module.ArrayModule` instance or a
        name (``"numpy"``/``"cupy"``/``"torch"``).  The default (host
        numpy) is bit-identical to the pre-seam behaviour on every
        engine and backend.  Non-numpy modules stage leaves onto the
        substrate per subtask and the root back to the host (results are
        numerically equal, not bitwise — their BLAS accumulates in a
        different order), force the Python tape walker, and are rejected
        on the shared-memory process pool, whose segments are host-side
        by contract.  Compiled mode only.
    """

    def __init__(
        self,
        network: TensorNetwork,
        tree: ContractionTree,
        sliced: AbstractSet[str],
        dtype: Optional[np.dtype] = None,
        mode: str = "compiled",
        cache_invariant: bool = True,
        batch_index: Optional[str] = None,
        max_workers: Optional[int] = None,
        batch_indices: Union[str, Sequence[str], None] = None,
        backend: Optional[ExecutionBackend] = None,
        cost_model: Optional["CostModel"] = None,
        memory_target_rank: Optional[int] = None,
        branch_buffers: bool = False,
        fused: Union[bool, str] = False,
        fused_cap: Optional[int] = None,
        fault_policy: Optional["FaultPolicy"] = None,
        fault_injector: Optional["FaultInjector"] = None,
        tape_engine: str = "auto",
        array_module=None,
    ) -> None:
        self.network = network
        self.tree = tree
        self.sliced: Tuple[str, ...] = tuple(sorted(sliced))
        inner = network.inner_indices()
        bad = [ix for ix in self.sliced if ix not in inner]
        if bad:
            raise ValueError(f"sliced indices {bad} are not inner indices of the network")
        self._array_module = resolve_array_module(array_module)
        validate_execution_args(
            mode,
            backend=backend,
            max_workers=max_workers,
            array_module=self._array_module,
        )
        self.mode = mode
        self._sizes = {ix: network.size_of(ix) for ix in self.sliced}
        self._dtype = np.dtype(dtype) if dtype is not None else None
        self._cache_invariant = bool(cache_invariant)
        self._backend = (
            resolve_backend(backend, max_workers, array_module=self._array_module)
            if mode == "compiled"
            else None
        )
        self.cost_model = cost_model
        self._memory_target_rank = (
            int(memory_target_rank) if memory_target_rank is not None else None
        )
        self._branch_buffers = bool(branch_buffers)

        self.batch_indices: Tuple[str, ...] = self._normalize_batch(
            batch_index, batch_indices, mode
        )
        self._tape_engine_request = self._normalize_tape_engine(tape_engine, fused, mode)
        self._fused, self._fused_cap = self._normalize_fused(fused, fused_cap, mode)
        self._configure_faults(fault_policy, fault_injector)

        #: Per-node execution counters (compiled mode); the cached path must
        #: keep every slice-invariant node at exactly one execution.
        self.stats = PlanStats()
        self._executor = (
            TreeExecutor(dtype=dtype, compiled=False) if mode == "reference" else None
        )
        self._plan: Optional[CompiledPlan] = None
        self._batched_plan: Optional[CompiledPlan] = None
        self._cache: Optional[Dict[int, np.ndarray]] = None
        self._batched_cache: Optional[Dict[int, np.ndarray]] = None
        self._leaf_tensors: Tuple = ()
        if mode == "compiled":
            # with batching, only the batched plan is compiled eagerly;
            # the per-subtask plan (and its invariant cache) waits for the
            # first run_subtask / subset run, halving the cached footprint
            # of pure batched workloads
            if self.batch_indices:
                self._compile_batched_plan()
            else:
                self._compile_plain_plan()

    def _normalize_batch(
        self,
        batch_index: Optional[str],
        batch_indices: Union[str, Sequence[str], None],
        mode: str,
    ) -> Tuple[str, ...]:
        if batch_index is not None and batch_indices is not None:
            raise ValueError("pass either batch_index or batch_indices, not both")
        spec: Union[str, Sequence[str], None] = (
            batch_indices if batch_indices is not None else batch_index
        )
        if spec is None:
            return ()
        if mode == "reference":
            raise ValueError("batched execution requires the compiled mode")
        if spec == "auto":
            if not self.sliced:
                return ()
            target = self._memory_target_rank
            if target is None and self.cost_model is not None:
                target = self.cost_model.memory_target_rank
            if target is not None:
                # lifetime-aware: the largest group whose live batch axes
                # keep every intermediate under the memory target; an
                # empty group means even one live axis busts the target,
                # so fall back to plain enumeration.  Dispatch through the
                # model when one is present so subclasses can override the
                # admission policy.
                if self.cost_model is not None:
                    return self.cost_model.select_batch_group(
                        self.tree, frozenset(self.sliced), target
                    )
                from ..costs.batching import select_batch_group

                return select_batch_group(self.tree, frozenset(self.sliced), target)
            return (max(self.sliced, key=lambda ix: (self._sizes[ix], ix)),)
        group: Tuple[str, ...] = (spec,) if isinstance(spec, str) else tuple(spec)
        if len(set(group)) != len(group):
            raise ValueError(f"repeated batch indices in {group}")
        for ix in group:
            if ix not in self.sliced:
                raise ValueError(f"batch index {ix!r} is not in the sliced set")
        return group

    def _normalize_tape_engine(
        self,
        tape_engine: str,
        fused: Union[bool, str],
        mode: str,
    ) -> str:
        """Validate the ``tape_engine=`` spec (resolution happens per plan)."""
        if tape_engine not in ("auto", "python", "native"):
            raise ValueError(
                f"tape_engine must be 'auto', 'python' or 'native', got {tape_engine!r}"
            )
        if mode == "reference" and tape_engine != "auto":
            raise ValueError("tape_engine requires the compiled mode")
        if tape_engine == "native" and (fused is False or fused is None):
            raise ValueError("tape_engine='native' requires fused=True or fused='auto'")
        if tape_engine == "native" and not self._array_module.supports_native_tape:
            raise ValueError(
                "tape_engine='native' requires the numpy array module; "
                f"array_module={self._array_module.name!r} runs the Python "
                "tape walker"
            )
        return tape_engine

    def _cost_tape_engine(self) -> str:
        """The engine fused plans would actually run on (cost-lookup key)."""
        if self._tape_engine_request == "python":
            return "python"
        if not self._array_module.supports_native_tape:
            # the numba kernel walks raw numpy buffers only
            return "python"
        from .tape import native_available

        return "native" if native_available() else "python"

    def _normalize_fused(
        self,
        fused: Union[bool, str],
        fused_cap: Optional[int],
        mode: str,
    ) -> Tuple[bool, Optional[int]]:
        """Resolve the ``fused=`` spec to a (flag, working-set cap) pair."""
        if fused is False or fused is None:
            if fused_cap is not None:
                raise ValueError("fused_cap requires fused=True or fused='auto'")
            return False, None
        if mode == "reference":
            raise ValueError("fused execution requires the compiled mode")
        if fused is True:
            return True, fused_cap
        if fused == "auto":
            cap = fused_cap
            if cap is None:
                from ..costs.fusion import select_fusion_cap

                cap = select_fusion_cap(
                    self.tree,
                    frozenset(self.sliced),
                    cost_model=self.cost_model,
                    backend=self._backend.name if self._backend is not None else None,
                    tape_engine=self._cost_tape_engine(),
                    array_module=self._array_module.name,
                )
            if cap is None:  # nothing to fuse: stay step-by-step
                return False, None
            return True, cap
        raise ValueError(f"fused must be True, False or 'auto', got {fused!r}")

    def _configure_faults(
        self,
        fault_policy: Optional["FaultPolicy"],
        fault_injector: Optional["FaultInjector"],
    ) -> None:
        """Resolve the fault policy/injector this executor's runs will use.

        A policy without explicit timeouts borrows its per-chunk budget
        from the cost model's calibrated predictions when one is present
        (``timeout_safety`` times the predicted subtask seconds); a model
        that cannot predict this backend leaves the run timeout-free.

        The resolved pair is kept on the executor and passed to every
        ``run_subtasks`` call, scoping it to this executor's runs: a
        shared backend is never mutated, and other users of the same
        backend keep their own (or no) fault configuration.
        """
        if (fault_policy is not None or fault_injector is not None) and (
            self._backend is None
        ):
            raise ValueError("fault_policy/fault_injector require the compiled mode")
        if fault_policy is not None and self.cost_model is not None:
            assert self._backend is not None
            fault_policy = fault_policy.derived_from(
                self.cost_model,
                self.tree,
                frozenset(self.sliced),
                backend=self._backend.name,
            )
        self._fault_policy = fault_policy
        self._fault_injector = fault_injector

    # ------------------------------------------------------------------
    @property
    def batch_index(self) -> Optional[str]:
        """The single batch index when exactly one is live, else ``None``."""
        if len(self.batch_indices) == 1:
            return self.batch_indices[0]
        return None

    @property
    def backend(self) -> Optional[ExecutionBackend]:
        """The execution backend (``None`` in reference mode)."""
        return self._backend

    @property
    def array_module(self) -> ArrayModule:
        """The execution substrate the compiled plans run on."""
        return self._array_module

    @property
    def fault_policy(self) -> Optional["FaultPolicy"]:
        """The run-scoped fault policy (timeouts already derived), if any."""
        return self._fault_policy

    @property
    def fault_injector(self) -> Optional["FaultInjector"]:
        """The run-scoped fault injector (testing hook), if any."""
        return self._fault_injector

    @property
    def fused(self) -> bool:
        """Whether plans are compiled with the §5 fusion pass."""
        return self._fused

    @property
    def fused_cap(self) -> Optional[int]:
        """The resolved working-set cap of the fusion pass (``None`` = spec)."""
        return self._fused_cap

    @property
    def tape_engine(self) -> str:
        """The resolved tape engine of the primary compiled plan.

        ``"native"`` when the plan carries a lowered JIT program (see
        :mod:`repro.execution.tape`), else ``"python"``.  Before any plan
        exists (reference mode, or a still-lazy plain plan) this reports
        the engine a fused plan *would* resolve to.
        """
        plan = self._batched_plan if self._batched_plan is not None else self._plan
        if plan is not None:
            return plan.tape_engine
        if self.mode != "compiled" or not self._fused:
            return "python"
        return self._cost_tape_engine()

    @property
    def plan(self) -> Optional[CompiledPlan]:
        """The compiled per-subtask plan (``None`` in reference mode).

        With batching enabled this plan is compiled lazily; accessing the
        property forces compilation.
        """
        return self._ensure_plan()

    @property
    def batched_plan(self) -> Optional[CompiledPlan]:
        """The compiled batched-sweep plan, when batching is enabled."""
        return self._batched_plan

    @property
    def num_subtasks(self) -> int:
        """Total number of independent subtasks ``prod w(e)``."""
        out = 1
        for ix in self.sliced:
            out *= self._sizes[ix]
        return out

    @property
    def num_batched_sweeps(self) -> int:
        """Number of batched executions covering all subtasks."""
        if not self.batch_indices:
            return self.num_subtasks
        return self.num_subtasks // math.prod(
            self._sizes[ix] for ix in self.batch_indices
        )

    def assignments(self) -> Iterator[Dict[str, int]]:
        """Iterate over every slicing assignment in lexicographic order."""
        ranges = [range(self._sizes[ix]) for ix in self.sliced]
        for values in itertools.product(*ranges):
            yield dict(zip(self.sliced, values))

    def assignment(self, subtask_id: int) -> Dict[str, int]:
        """The assignment of subtask ``subtask_id`` (mixed-radix decoding)."""
        if not 0 <= subtask_id < self.num_subtasks:
            raise ValueError(f"subtask id {subtask_id} out of range")
        values: Dict[str, int] = {}
        remaining = subtask_id
        for ix in reversed(self.sliced):
            size = self._sizes[ix]
            values[ix] = remaining % size
            remaining //= size
        return {ix: values[ix] for ix in self.sliced}

    def batched_assignments(self) -> Iterator[Dict[str, int]]:
        """Assignments of the enumerated (non-batch) indices, in order."""
        enumerated = [ix for ix in self.sliced if ix not in self.batch_indices]
        ranges = [range(self._sizes[ix]) for ix in enumerated]
        for values in itertools.product(*ranges):
            yield dict(zip(enumerated, values))

    # ------------------------------------------------------------------
    def _compile_plain_plan(self) -> None:
        """Compile the per-subtask plan and reset its cache."""
        self._plan = compile_plan(
            self.network,
            self.tree,
            frozenset(self.sliced),
            dtype=self._dtype,
            branch_buffers=self._branch_buffers,
            fused=self._fused,
            fused_cap=self._fused_cap,
            tape_engine=self._tape_engine_request if self._fused else "python",
            array_module=self._array_module,
        )
        self._cache = self._plan.new_cache() if self._cache_invariant else None
        self._stamp_plan_stats(self._plan)
        self._snapshot_leaves()

    def _compile_batched_plan(self) -> None:
        """Compile the batched-sweep plan and reset its cache."""
        self._batched_plan = compile_plan(
            self.network,
            self.tree,
            frozenset(self.sliced),
            batch_indices=self.batch_indices,
            dtype=self._dtype,
            branch_buffers=self._branch_buffers,
            fused=self._fused,
            fused_cap=self._fused_cap,
            tape_engine=self._tape_engine_request if self._fused else "python",
            array_module=self._array_module,
        )
        self._batched_cache = (
            self._batched_plan.new_cache() if self._cache_invariant else None
        )
        self._stamp_plan_stats(self._batched_plan)
        self._snapshot_leaves()

    def _stamp_plan_stats(self, plan: CompiledPlan) -> None:
        """Record compile-time plan facts (fusion split reasons) in stats."""
        if plan.fusion_breaks and not self.stats.fusion_breaks:
            self.stats.fusion_breaks = plan.fusion_breaks

    def _ensure_plan(self) -> Optional[CompiledPlan]:
        """The per-subtask plan, compiling it on first use (lazy path)."""
        if self._plan is None and self.mode == "compiled":
            self._compile_plain_plan()
        return self._plan

    def _snapshot_leaves(self) -> None:
        # Tensor objects are immutable, so identity comparison of the
        # snapshot detects any replace_tensor on a leaf
        self._leaf_tensors = tuple(
            self.network.tensor(tid) for tid in self.tree.leaf_tids
        )

    def _refresh_stale_plans(self) -> None:
        """React to network mutations since the plans were compiled.

        An axis-order change invalidates the baked take/tensordot axes and
        forces a recompile; a data-only change (same index structure)
        keeps the plans but must drop the warmed invariant caches, which
        hold intermediates contracted from the old data.
        """
        primary = self._batched_plan if self._batched_plan is not None else self._plan
        if primary is None:
            return
        if not primary.matches_network(self.network):
            # recompile whatever was compiled; a still-lazy plan stays lazy.
            # An axis-order mutation invalidates every buffer a backend
            # session published, so the session is rebuilt from scratch.
            if self._batched_plan is not None:
                self._compile_batched_plan()
            if self._plan is not None:
                self._compile_plain_plan()
            if self._backend is not None:
                self._backend.reset_session()
            return
        current = tuple(self.network.tensor(tid) for tid in self.tree.leaf_tids)
        if current != self._leaf_tensors:
            if self._cache is not None:
                self._cache.clear()
            if self._batched_cache is not None:
                self._batched_cache.clear()
            self._leaf_tensors = current

    def session(self):
        """Open (or reuse) the backend's persistent execution session.

        Scopes pool/segment reuse across consecutive :meth:`run` calls on
        this executor::

            with executor.session():
                first = executor.run()     # spawns the pool, publishes
                second = executor.run()    # reuses both — warm

        The session is primed with whichever plan :meth:`run` will execute
        (the batched-sweep plan when batching is enabled, the per-subtask
        plan otherwise).  In-process backends return a no-op session, so
        the pattern is uniform across backends; results are bit-identical
        with and without a session.  Compiled mode only.
        """
        if self._backend is None:
            raise ValueError("session requires the compiled mode")
        self._refresh_stale_plans()
        if self._batched_plan is not None:
            plan: Optional[CompiledPlan] = self._batched_plan
            cache = self._batched_cache
            sum_batch_axes = self._batched_plan.num_batch_axes
            num_assignments = self.num_batched_sweeps
        else:
            plan = self._ensure_plan()
            cache = self._cache
            sum_batch_axes = 0
            num_assignments = self.num_subtasks
        assert plan is not None
        if num_assignments <= 1:
            # a one-assignment run always takes the backend's in-process
            # serial path, so don't eagerly spawn a pool it will never use
            return self._backend.session()
        return self._backend.session(
            plan,
            self.network,
            cache,
            sum_batch_axes=sum_batch_axes,
            stats=self.stats,
        )

    def run_subtask(self, subtask_id: int) -> SubtaskResult:
        """Execute a single subtask."""
        self._refresh_stale_plans()
        return self._subtask_result(subtask_id)

    def _subtask_result(self, subtask_id: int) -> SubtaskResult:
        """One subtask without the staleness check (hot-loop internal)."""
        assignment = self.assignment(subtask_id)
        plan = self._ensure_plan()
        if plan is not None:
            tensor = plan.execute(
                self.network, assignment, cache=self._cache, stats=self.stats
            )
        else:
            assert self._executor is not None
            tensor = self._executor.execute(self.network, self.tree, assignment)
        return SubtaskResult(assignment=assignment, tensor=tensor)

    def run(
        self,
        subtask_ids: Optional[Sequence[int]] = None,
        resume: Union[CheckpointStore, str, "os.PathLike", None] = None,
    ) -> Tensor:
        """Execute subtasks and return the accumulated result.

        Parameters
        ----------
        subtask_ids:
            Which subtasks to run; ``None`` runs them all (yielding the
            exact contraction value).  Running a subset gives a partial sum,
            which is only meaningful for diagnostics.  Batched sweeps only
            apply to full runs; a subset always executes subtask-by-subtask.
        resume:
            Arm durable checkpointing through a
            :class:`~repro.execution.checkpoint.CheckpointStore` (or a
            directory path one is opened on).  Each completed ordered slot
            is write-ahead persisted; if this run (or a previous one with
            the same content fingerprint) is interrupted — including a
            coordinator crash — calling :meth:`run` again with the same
            store re-runs only the missing slots and returns a result
            bit-identical to an uninterrupted run.  A fingerprint mismatch
            invalidates the old ledger and starts clean.  A
            :class:`~repro.execution.resilience.FaultPolicy` carrying
            ``checkpoint_dir`` arms the same machinery without the
            explicit argument.  Compiled mode only.
        """
        self._refresh_stale_plans()
        store = self._checkpoint_store(resume)
        if subtask_ids is None and self._batched_plan is not None:
            return self._run_batched(store)
        ids: List[int] = list(
            range(self.num_subtasks) if subtask_ids is None else subtask_ids
        )
        if not ids:
            raise ValueError("no subtasks were executed")
        plan = self._ensure_plan()
        if plan is not None:
            assert self._backend is not None
            assignments = [self.assignment(subtask_id) for subtask_id in ids]
            checkpoint = self._open_checkpoint_job(store, plan, assignments, 0)
            try:
                result = self._backend.run_subtasks(
                    plan,
                    self.network,
                    assignments,
                    cache=self._cache,
                    stats=self.stats,
                    policy=self._fault_policy,
                    injector=self._fault_injector,
                    checkpoint=checkpoint,
                )
            except BaseException:
                # keep the ledger (flushed + unlocked) for the next attempt
                if checkpoint is not None:
                    checkpoint.close()
                raise
            if checkpoint is not None:
                checkpoint.complete()
            assert result is not None
            return result
        return self._run_reference(ids)

    def _checkpoint_store(
        self, resume: Union[CheckpointStore, str, "os.PathLike", None]
    ) -> Optional[CheckpointStore]:
        """Resolve the checkpoint store arming this run, if any.

        Explicit ``resume`` wins; otherwise a fault policy carrying
        ``checkpoint_dir`` auto-arms (which is how per-bitstring executors
        built by :class:`~repro.sampling.CorrelatedSampler` inherit
        durability).  Construction fails fast on unwritable roots.
        """
        if isinstance(resume, CheckpointStore):
            store: Optional[CheckpointStore] = resume
        elif resume is not None:
            store = CheckpointStore(resume)
        elif (
            self._fault_policy is not None
            and self._fault_policy.checkpoint_dir is not None
        ):
            store = CheckpointStore(self._fault_policy.checkpoint_dir)
        else:
            store = None
        if store is not None and self.mode != "compiled":
            raise ValueError("checkpointed execution requires the compiled mode")
        return store

    def _open_checkpoint_job(
        self,
        store: Optional[CheckpointStore],
        plan: CompiledPlan,
        assignments: Sequence[Dict[str, int]],
        sum_batch_axes: int,
    ) -> Optional[CheckpointJob]:
        """Open (or resume) this run's ledger and bind the live stats.

        The job is keyed by :func:`~repro.execution.checkpoint.job_fingerprint`
        over the leaf data, tree, assignment schedule, batch-axis count,
        policy shape and chunking — so a resumed ledger is only trusted for
        byte-for-byte the same run, on any backend/engine combination.
        """
        if store is None:
            return None
        chunk_size = getattr(self._backend, "chunk_size", None)
        fingerprint = job_fingerprint(
            self.network,
            self.tree,
            self.sliced,
            assignments,
            sum_batch_axes=sum_batch_axes,
            dtype=getattr(plan, "dtype", None) or self._dtype,
            policy=self._fault_policy,
            chunk_size=chunk_size,
        )
        job = store.job(
            fingerprint,
            len(assignments),
            every=(
                self._fault_policy.checkpoint_every
                if self._fault_policy is not None
                else 1
            ),
            policy=self._fault_policy,
            chunk_size=chunk_size,
        )
        job.attach_stats(self.stats)
        return job

    def _run_reference(self, ids: Sequence[int]) -> Tensor:
        """Accumulate subtasks through the reference einsum walker."""
        accumulated: Optional[np.ndarray] = None
        result_indices: Optional[Tuple[str, ...]] = None
        result_sizes: Optional[Dict[str, int]] = None
        for subtask_id in ids:
            result = self._subtask_result(subtask_id)
            data = result.tensor.require_data()
            if accumulated is None:
                accumulated = np.array(data, copy=True)
                result_indices = result.tensor.indices
                result_sizes = result.tensor.sizes()
            else:
                accumulated += data
        assert accumulated is not None
        assert result_indices is not None and result_sizes is not None
        return Tensor(result_indices, data=accumulated, sizes=result_sizes)

    def _run_batched(self, store: Optional[CheckpointStore] = None) -> Tensor:
        """Sweep the batch group in bulk, enumerating the remaining indices."""
        plan = self._batched_plan
        assert plan is not None and self._backend is not None
        assignments = list(self.batched_assignments())
        checkpoint = self._open_checkpoint_job(
            store, plan, assignments, plan.num_batch_axes
        )
        try:
            result = self._backend.run_subtasks(
                plan,
                self.network,
                assignments,
                cache=self._batched_cache,
                sum_batch_axes=plan.num_batch_axes,
                stats=self.stats,
                policy=self._fault_policy,
                injector=self._fault_injector,
                checkpoint=checkpoint,
            )
        except BaseException:
            if checkpoint is not None:
                checkpoint.close()
            raise
        if checkpoint is not None:
            checkpoint.complete()
        assert result is not None
        return result

    def amplitude(
        self,
        subtask_ids: Optional[Sequence[int]] = None,
        resume: Union[CheckpointStore, str, "os.PathLike", None] = None,
    ) -> complex:
        """Accumulated scalar value (requires a closed network)."""
        tensor = self.run(subtask_ids, resume=resume)
        data = tensor.require_data()
        if data.size != 1:
            raise ValueError("network is not closed; use run() instead")
        return complex(data.reshape(()))

    # ------------------------------------------------------------------
    def calibration_record(self, backend_name: Optional[str] = None):
        """Package this executor's measured timings for model calibration.

        Returns a :class:`~repro.costs.CalibrationRecord` built from the
        per-subtask wall times accumulated in :attr:`stats`; feed a list
        of them to :meth:`~repro.costs.CalibratedCostModel.fit`.  Only
        meaningful for non-batched runs (a batched sweep's ``execute``
        covers many subtasks at once, so its samples are not per-subtask).
        """
        from ..costs.calibration import CalibrationRecord

        if self.batch_indices:
            raise ValueError(
                "calibration records require non-batched execution; "
                "re-run without batch_indices"
            )
        if backend_name is None:
            backend_name = self._backend.name if self._backend is not None else "serial"
        return CalibrationRecord.from_stats(
            self.stats, self.tree, frozenset(self.sliced), backend_name
        )

    def subtask_cost_estimate(self) -> float:
        """Planned flops of one subtask (scalar multiply-adds, Eq. 1 with S removed)."""
        return self.tree.contraction_cost(frozenset(self.sliced))

    def total_cost_estimate(self) -> float:
        """Planned flops over all subtasks (Eq. 4)."""
        return self.tree.total_cost(frozenset(self.sliced))
