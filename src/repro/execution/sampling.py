"""Correlated-sample generation and cross-entropy benchmarking utilities.

The paper's headline workload is not a single amplitude but "1 M correlated
samples": a batch of bitstrings that agree on most qubits and differ on a
small *open* subset, obtained by leaving those qubits' output indices
uncontracted so that one tensor-network contraction yields ``2^k`` amplitudes
at once.  The frequentist sampling of the 2021 Gordon Bell work (and of the
Sycamore experiment's verification) then draws bitstrings from this batch
and estimates the linear cross-entropy benchmarking (XEB) fidelity.

This module implements that workflow on top of the planning/execution stack:

* :class:`CorrelatedSampleBatch` — the result of contracting a network with
  ``k`` open output qubits: a ``2^k`` amplitude tensor over the open qubits
  with the remaining qubits fixed to a base bitstring;
* :class:`CorrelatedSampler` — plans and executes such batches (numerically
  for laptop-scale circuits, abstractly for planning-only studies);
* :func:`linear_xeb_fidelity` — the standard XEB estimator
  ``F = 2^n <p(x)> - 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..paths.optimizer import HyperOptimizer
from ..tensornet.circuit_to_tn import CircuitToTensorNetwork
from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.simplify import simplify_network
from .backend import (
    ExecutionBackend,
    NullExecutionSession,
    resolve_backend,
    validate_execution_args,
)
from .contract import TreeExecutor
from .plan import PlanStats
from .sliced import SlicedExecutor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faultinject import FaultInjector
    from .resilience import FaultPolicy

__all__ = ["CorrelatedSampleBatch", "CorrelatedSampler", "linear_xeb_fidelity"]


@dataclass
class CorrelatedSampleBatch:
    """A batch of correlated amplitudes.

    Attributes
    ----------
    base_bitstring:
        The bit values of the *closed* qubits (entries for open qubits are
        placeholders and ignored).
    open_qubits:
        The qubits whose output indices were left uncontracted, in the axis
        order of ``amplitudes``.
    amplitudes:
        Complex array of shape ``(2,) * len(open_qubits)``; entry
        ``amplitudes[b1, ..., bk]`` is the amplitude of the bitstring that
        agrees with ``base_bitstring`` everywhere except on the open qubits,
        which take the values ``b1 ... bk``.
    """

    base_bitstring: Tuple[int, ...]
    open_qubits: Tuple[int, ...]
    amplitudes: np.ndarray

    @property
    def num_open_qubits(self) -> int:
        """Number of open (varying) qubits."""
        return len(self.open_qubits)

    @property
    def num_samples(self) -> int:
        """Number of correlated amplitudes in the batch (2^k)."""
        return int(self.amplitudes.size)

    def bitstrings(self) -> np.ndarray:
        """All bitstrings covered by the batch, shape ``(2^k, num_qubits)``."""
        n = len(self.base_bitstring)
        out = np.tile(np.asarray(self.base_bitstring, dtype=np.int8), (self.num_samples, 1))
        for row, values in enumerate(np.ndindex(*self.amplitudes.shape)):
            for qubit, bit in zip(self.open_qubits, values):
                out[row, qubit] = bit
        return out

    def probabilities(self) -> np.ndarray:
        """Probability of each covered bitstring, shape ``(2^k,)``."""
        flat = self.amplitudes.reshape(-1)
        return (flat.real**2 + flat.imag**2).astype(np.float64)

    def amplitude_of(self, bitstring: Sequence[int]) -> complex:
        """Amplitude of a full bitstring covered by this batch."""
        if len(bitstring) != len(self.base_bitstring):
            raise ValueError("bitstring length mismatch")
        for qubit, bit in enumerate(bitstring):
            if qubit in self.open_qubits:
                continue
            if int(bit) != self.base_bitstring[qubit]:
                raise ValueError(
                    f"bitstring differs from the batch's base on closed qubit {qubit}"
                )
        index = tuple(int(bitstring[q]) for q in self.open_qubits)
        return complex(self.amplitudes[index])

    def sample(self, num_samples: int, seed: Optional[int] = None) -> np.ndarray:
        """Draw bitstrings from the batch's (renormalised) distribution."""
        rng = np.random.default_rng(seed)
        probs = self.probabilities()
        total = probs.sum()
        if total <= 0:
            raise ValueError("batch has zero total probability")
        picks = rng.choice(probs.size, size=num_samples, p=probs / total)
        return self.bitstrings()[picks]


class CorrelatedSampler:
    """Plans and executes correlated-amplitude batches for a circuit.

    Parameters
    ----------
    circuit:
        The circuit to sample from.
    open_qubits:
        Qubits whose output indices stay open (the "correlated" directions).
        The paper's production runs open 20 qubits to produce 1 M correlated
        samples per contraction; laptop-scale runs should open at most ~16.
    target_rank:
        Memory target for process-level slicing.
    max_trials, seed:
        Path-search configuration.
    executor_mode:
        ``"compiled"`` (default) contracts batches through the compiled
        plan with slice-invariant caching; ``"reference"`` uses the einsum
        walker (useful for cross-checking).
    max_workers:
        Deprecated shim: any non-``None`` value warns once (at
        construction) and resolves through
        :func:`~repro.execution.backend.resolve_backend` (> 1 maps to a
        thread pool).  Mutually exclusive with ``backend``.
    backend:
        Optional :class:`~repro.execution.backend.ExecutionBackend` for
        batch execution (sliced runs and the single contraction of an
        unsliced batch).  Compiled mode only (the same rule
        :class:`SlicedExecutor` enforces).  A sampling run that computes
        many batches against one circuit is the prime beneficiary of the
        backend's persistent session — wrap the loop in
        ``with sampler.session(): ...`` so the process pool is spawned
        once and only the per-batch segments are republished.
    fault_policy:
        Optional :class:`~repro.execution.resilience.FaultPolicy` for
        batch execution: a long sampling run survives worker crashes and
        stuck chunks (bounded retries, pool rebuilds, degradation) with
        every recovered batch bit-identical to a clean run.  Requires a
        ``backend``; scoped to this sampler's batches (the backend itself
        is never reconfigured, so other users of a shared backend are
        unaffected).  Recovery counters accumulate across batches in
        :attr:`stats`.  A policy carrying ``checkpoint_dir`` additionally
        arms durable checkpointing per base bitstring: each batch
        contracts a different network, so each gets its own
        content-fingerprinted ledger in the same
        :class:`~repro.execution.checkpoint.CheckpointStore`, and a
        sampling run interrupted by a coordinator crash resumes with only
        the missing slots of the in-flight batch re-executed
        (bit-identical results; see :mod:`repro.execution.checkpoint`).
    fault_injector:
        Optional deterministic
        :class:`~repro.execution.faultinject.FaultInjector` (testing
        hook).  Requires a ``backend``.

    Attributes
    ----------
    stats:
        :class:`~repro.execution.plan.PlanStats` accumulated across every
        :meth:`compute_batch` call — including the resilience counters
        (``retries``, ``faults``, ``degraded_to``, ``recovery_seconds``).
    """

    def __init__(
        self,
        circuit: Circuit,
        open_qubits: Sequence[int],
        target_rank: Optional[int] = None,
        max_trials: int = 8,
        seed: Optional[int] = None,
        executor_mode: str = "compiled",
        max_workers: Optional[int] = None,
        backend: Optional[ExecutionBackend] = None,
        fault_policy: Optional["FaultPolicy"] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.circuit = circuit
        self.open_qubits = tuple(sorted(set(int(q) for q in open_qubits)))
        if not self.open_qubits:
            raise ValueError("at least one open qubit is required")
        for q in self.open_qubits:
            if not 0 <= q < circuit.num_qubits:
                raise ValueError(f"open qubit {q} out of range")
        self.target_rank = target_rank
        self.max_trials = int(max_trials)
        self.seed = seed
        validate_execution_args(executor_mode, backend=backend, max_workers=max_workers)
        self.executor_mode = executor_mode
        self.max_workers = max_workers
        if max_workers is not None:
            # resolve the legacy shim eagerly so the DeprecationWarning
            # fires exactly once, here, instead of once per compute_batch
            backend = resolve_backend(backend, max_workers)
        self.backend = backend
        if (fault_policy is not None or fault_injector is not None) and backend is None:
            raise ValueError("fault_policy/fault_injector require a backend")
        # kept on the sampler and forwarded per batch, so a shared backend
        # is never mutated and other users of it keep their own (or no)
        # fault configuration
        self.fault_policy = fault_policy
        self.fault_injector = fault_injector
        #: PlanStats accumulated across compute_batch calls (includes the
        #: resilience counters: retries, faults, degraded_to, recovery_seconds)
        self.stats = PlanStats()

    # ------------------------------------------------------------------
    def build_network(
        self, base_bitstring: Sequence[int], concrete: bool = True
    ) -> Tuple[TensorNetwork, Dict[int, str], complex]:
        """Build the partially-open network for one base bitstring.

        Returns the simplified network, the mapping from open qubit to its
        dangling index, and the simplifier's scalar prefactor.
        """
        if len(base_bitstring) != self.circuit.num_qubits:
            raise ValueError("base bitstring length mismatch")
        converter = CircuitToTensorNetwork(concrete=concrete)
        result = converter.convert(self.circuit)
        network = result.network
        open_index_of_qubit: Dict[int, str] = {}
        from ..tensornet.tensor import Tensor

        # basis vectors follow the network's dtype (complex64 circuits
        # must not get upcast through result_type by complex128 kets)
        basis_dtype = np.dtype(np.complex128)
        for tensor in network.tensors().values():
            if tensor.data is not None:
                basis_dtype = tensor.data.dtype
                break
        for qubit, index in result.output_index_of_qubit.items():
            if qubit in self.open_qubits:
                open_index_of_qubit[qubit] = index
                continue
            bit = int(base_bitstring[qubit])
            data = None
            if concrete:
                data = np.array([1.0, 0.0] if bit == 0 else [0.0, 1.0], dtype=basis_dtype)
            network.add_tensor(
                Tensor((index,), data=data, sizes={index: 2}, tags=("output", f"qubit:{qubit}"))
            )
        network.set_output_indices(list(open_index_of_qubit.values()))
        report = simplify_network(network)
        # simplification may re-route an open index onto a merged tensor but
        # never renames it, so the mapping stays valid
        return network, open_index_of_qubit, report.scalar_prefactor

    def plan_tree(self, network: TensorNetwork) -> ContractionTree:
        """Contraction tree for a batch network."""
        optimizer = HyperOptimizer(
            max_trials=self.max_trials,
            minimize="combo",
            memory_target_rank=self.target_rank,
            seed=self.seed,
        )
        return optimizer.search(network)

    # ------------------------------------------------------------------
    def session(self):
        """Open (or reuse) the backend's persistent execution session.

        Each :meth:`compute_batch` call builds a fresh network and plan
        for its base bitstring, so what the session amortizes across
        batches is the expensive part of the pool backend's start-up: the
        worker processes themselves.  Segments and the pickled plan are
        republished per batch; the pool is spawned once::

            with sampler.session():
                batches = [sampler.compute_batch(b) for b in bases]

        Backends without resident state return a no-op session.
        """
        if self.backend is None:
            return NullExecutionSession(None)
        return self.backend.session()

    def close(self) -> None:
        """Release the backend's resident session state (idempotent)."""
        if self.backend is not None:
            self.backend.close()

    def __enter__(self) -> "CorrelatedSampler":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def compute_batch(
        self,
        base_bitstring: Sequence[int],
        sliced: Optional[Iterable[str]] = None,
    ) -> CorrelatedSampleBatch:
        """Numerically compute the 2^k correlated amplitudes for one base bitstring.

        Parameters
        ----------
        base_bitstring:
            Values of the closed qubits (open-qubit entries ignored).
        sliced:
            Optional explicit slicing set (inner indices).  ``None`` derives
            one from the planner when the tree exceeds ``target_rank``.
        """
        network, open_index_of_qubit, prefactor = self.build_network(
            base_bitstring, concrete=True
        )
        tree = self.plan_tree(network)

        slicing: frozenset
        if sliced is not None:
            slicing = frozenset(sliced)
        elif self.target_rank is not None and tree.max_rank() > self.target_rank:
            from ..core.slice_finder import LifetimeSliceFinder

            result = LifetimeSliceFinder(self.target_rank).find(tree)
            inner = network.inner_indices()
            slicing = frozenset(ix for ix in result.sliced if ix in inner)
        else:
            slicing = frozenset()

        if slicing:
            # max_workers was already resolved into self.backend at
            # construction, so only the backend is forwarded here; the
            # fault policy/injector ride along per batch (run-scoped)
            executor = SlicedExecutor(
                network,
                tree,
                slicing,
                mode=self.executor_mode,
                backend=self.backend,
                fault_policy=self.fault_policy,
                fault_injector=self.fault_injector,
            )
            tensor = executor.run()
            # roll the batch's counters (including retries/faults/
            # recovery_seconds) into the sampler-lifetime stats
            self.stats.merge(executor.stats)
        else:
            tensor = TreeExecutor(
                compiled=self.executor_mode == "compiled",
                backend=self.backend,
            ).execute(network, tree)

        order = tuple(open_index_of_qubit[q] for q in self.open_qubits)
        tensor = tensor.transposed(order)
        amplitudes = np.asarray(tensor.require_data()) * prefactor
        base = tuple(
            0 if q in self.open_qubits else int(base_bitstring[q])
            for q in range(self.circuit.num_qubits)
        )
        return CorrelatedSampleBatch(
            base_bitstring=base,
            open_qubits=self.open_qubits,
            amplitudes=amplitudes,
        )


def linear_xeb_fidelity(probabilities: Sequence[float], num_qubits: int) -> float:
    """Linear cross-entropy benchmarking fidelity ``F = 2^n <p> - 1``.

    ``probabilities`` are the ideal-circuit probabilities of the bitstrings
    actually sampled (from hardware or from a simulator); an ideal device
    scores ≈ 1, a uniform sampler ≈ 0.
    """
    if not len(probabilities):
        raise ValueError("at least one probability is required")
    return (2.0**num_qubits) * float(np.mean(np.asarray(probabilities, dtype=np.float64))) - 1.0
