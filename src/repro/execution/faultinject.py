"""Deterministic, seeded fault injection for the execution backends.

Every recovery path of the resilience layer
(:mod:`repro.execution.resilience`) is exercisable on demand and
*reproducibly*: a :class:`FaultInjector` holds a list of
:class:`FaultSpec` entries, each naming a fault kind and the 0-based
**chunk submission ordinal** it fires on.  Ordinals are assigned in the
parent, in submission order (retries increment the counter too), so a
given injector produces the same fault sequence on every run — no race,
no wall-clock dependence, no RNG in the worker.

The injector itself never crosses the process boundary.  At submission
time the parent asks :meth:`FaultInjector.directive_for_next_chunk` for a
small picklable *directive* tuple that travels with the chunk task; the
worker applies it via :func:`apply_directive` before executing the chunk:

========================= ============================================== =
kind                      worker-side effect                 recovery path
========================= ============================================== =
``"kill-worker"``         ``os._exit(1)`` — hard death, no    pool rebuild
                          teardown hooks run (the SIGKILL
                          analogue)
``"delay-chunk"``         sleeps ``seconds`` before           chunk timeout
                          executing
``"fail-segment-attach"`` drops the worker's shared-memory    chunk retry +
                          state, then raises as a failed      payload
                          segment attach                      re-install
``"poison-pickle"``       raises ``pickle.UnpicklingError``   chunk retry
                          as a corrupt chunk payload would
``"drop-connection"``     severs the worker's coordinator     rebalance onto
                          socket mid-chunk, then exits — the  survivors /
                          cut-network-link analogue for the   respawn
                          distributed backend (elsewhere it
                          behaves like ``"kill-worker"``)
``"corrupt-result"``      flips one seeded bit in the chunk's checksum verify
                          returned payload *after* its        at harvest →
                          checksums were computed             chunk retry
                          (:func:`corrupt_payload`; the
                          silent-data-corruption analogue)
``"kill-coordinator"``    fires in the *coordinator* at a     durable chunk
                          harvest ordinal, not in a worker:   ledger +
                          raises                              ``resume=``
                          :exc:`InjectedCoordinatorDeath`     (see
                          (a ``BaseException``) that escapes  :mod:`.checkpoint`)
                          every recovery path and takes the
                          whole process down mid-run
========================= ============================================== =

The last two kinds were added with the durable-checkpoint layer
(:mod:`repro.execution.checkpoint`): ``"corrupt-result"`` proves a
poisoned payload is caught by the end-to-end checksums before a ledger
slot is persisted, and ``"kill-coordinator"`` drives the
restart-and-resume harness.  Coordinator-side faults consume a separate
**harvest ordinal** counter (:attr:`FaultInjector.harvested`, consulted
via :meth:`FaultInjector.coordinator_directive_for_next_harvest`), so
arming them never shifts the submission ordinals worker-side specs fire
on.

Injection is **opt-in** end to end: backends consult an injector only
when one was configured (``configure_faults(injector=...)``, or the
``fault_injector=`` argument of :class:`~repro.execution.SlicedExecutor`
and friends), and a ``None`` directive is the hot path.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "InjectedCoordinatorDeath",
    "InjectedFault",
    "apply_coordinator_directive",
    "apply_directive",
    "corrupt_payload",
]

#: Fault kinds applied inside the unit that executes chunks.  This is the
#: default draw set for :meth:`FaultInjector.seeded` — deliberately frozen
#: at the original five kinds so existing seeds keep producing the exact
#: same fault sequences.
WORKER_FAULT_KINDS = (
    "kill-worker",
    "delay-chunk",
    "fail-segment-attach",
    "poison-pickle",
    "drop-connection",
)

#: Fault kinds applied in the coordinator, at harvest ordinals.
COORDINATOR_FAULT_KINDS = ("kill-coordinator",)

#: Every injectable fault kind.
FAULT_KINDS = WORKER_FAULT_KINDS + ("corrupt-result",) + COORDINATOR_FAULT_KINDS

#: A picklable directive: ``(kind, seconds)``.
Directive = Tuple[str, float]


class InjectedFault(RuntimeError):
    """Raised inside a worker (or thread) by an injected fault directive."""


class InjectedCoordinatorDeath(BaseException):
    """Injected death of the coordinator process itself.

    Deliberately a ``BaseException``: every recovery path in
    :mod:`repro.execution.resilience` and the backends catches
    ``Exception``, and a real coordinator death (SIGKILL, OOM) is exactly
    the failure none of them can intercept.  Raising this mid-harvest
    unwinds through the session (marking it broken), kills the process
    with a nonzero exit, and still lets interpreter-shutdown finalizers
    unlink shared-memory segments — which an ``os._exit`` would leak.
    The durable write-ahead ledger (:mod:`repro.execution.checkpoint`)
    fsyncs each record before it is acknowledged, so the resume path this
    exercises is byte-for-byte the one a SIGKILL would leave behind.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    chunk:
        The 0-based ordinal the fault fires on: the chunk *submission*
        ordinal for worker-side kinds, the chunk *harvest* ordinal for
        ``"kill-coordinator"``.  Each counter is global across a run,
        including re-submissions, so a single-shot spec consumed by
        chunk ``n`` does not re-fire when chunk ``n`` is retried (the
        retry has a later ordinal).
    seconds:
        Sleep length for ``"delay-chunk"``; for ``"corrupt-result"`` the
        integer part is reused as the seeded *bit index* to flip (the
        directive wire format is a fixed ``(kind, seconds)`` tuple).
        Ignored by the other kinds.
    times:
        How many eligible ordinals (>= ``chunk``) the spec fires on
        before it is spent.  The default single shot models a transient
        fault; larger values model a persistent one (e.g. a worker that
        dies every time, forcing degradation).
    """

    kind: str
    chunk: int = 0
    seconds: float = 0.05
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.chunk < 0:
            raise ValueError("chunk ordinal must be >= 0")
        if self.times < 1:
            raise ValueError("times must be >= 1")


@dataclass
class FaultInjector:
    """Deterministic fault scheduler consulted at chunk submission time.

    Attributes
    ----------
    faults:
        The scheduled :class:`FaultSpec` list.  Multiple specs may be
        armed; at most one fires per ordinal (first eligible wins).
    submitted:
        Chunks submitted so far (the worker-side ordinal counter).
    harvested:
        Chunk results harvested so far (the coordinator-side ordinal
        counter — a separate stream, so coordinator faults never shift
        the submission ordinals worker-side specs key on).
    fired:
        ``(ordinal, kind)`` log of every directive handed out — what
        tests assert reproducibility against.
    """

    faults: List[FaultSpec] = field(default_factory=list)
    submitted: int = 0
    harvested: int = 0
    fired: List[Tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.faults = list(self.faults)
        self._remaining = [spec.times for spec in self.faults]

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: Sequence[str] = WORKER_FAULT_KINDS,
        num_chunks: int = 8,
        num_faults: int = 1,
        seconds: float = 0.05,
    ) -> "FaultInjector":
        """An injector whose fault kinds/ordinals are drawn from ``seed``.

        Deterministic: the same seed always schedules the same faults at
        the same submission ordinals — the property-test entry point.
        Uses a local PRNG so global RNG state is untouched.  The default
        draw set is :data:`WORKER_FAULT_KINDS` (not :data:`FAULT_KINDS`):
        it predates the coordinator-side kinds, and keeping it fixed
        keeps every existing seed's fault sequence stable.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        specs = [
            FaultSpec(
                kind=kinds[int(rng.integers(len(kinds)))],
                chunk=int(rng.integers(max(1, num_chunks))),
                seconds=seconds,
            )
            for _ in range(num_faults)
        ]
        return cls(faults=specs)

    # ------------------------------------------------------------------
    def directive_for_next_chunk(self) -> Optional[Directive]:
        """Consume one submission ordinal; the directive to attach, if any.

        Coordinator-side specs are skipped (without being consumed) —
        they key on the harvest counter via
        :meth:`coordinator_directive_for_next_harvest`.
        """
        ordinal = self.submitted
        self.submitted += 1
        for index, spec in enumerate(self.faults):
            if spec.kind in COORDINATOR_FAULT_KINDS:
                continue
            if self._remaining[index] <= 0:
                continue
            if ordinal < spec.chunk:
                continue
            self._remaining[index] -= 1
            self.fired.append((ordinal, spec.kind))
            return (spec.kind, spec.seconds)
        return None

    def coordinator_directive_for_next_harvest(self) -> Optional[Directive]:
        """Consume one harvest ordinal; the coordinator directive, if any.

        Called by the coordinator's harvest paths right after a chunk's
        contributions have been verified, written into their ordered
        slots and (when a checkpoint is armed) recorded to the ledger —
        so an injected coordinator death at harvest ordinal ``n`` leaves
        chunks ``0..n`` durable, the exact state a resume must complete
        from.
        """
        ordinal = self.harvested
        self.harvested += 1
        for index, spec in enumerate(self.faults):
            if spec.kind not in COORDINATOR_FAULT_KINDS:
                continue
            if self._remaining[index] <= 0:
                continue
            if ordinal < spec.chunk:
                continue
            self._remaining[index] -= 1
            self.fired.append((ordinal, spec.kind))
            return (spec.kind, spec.seconds)
        return None

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        return all(remaining <= 0 for remaining in self._remaining)

    def reset(self) -> None:
        """Re-arm every spec and rewind both ordinal counters."""
        self.submitted = 0
        self.harvested = 0
        self.fired = []
        self._remaining = [spec.times for spec in self.faults]


def apply_directive(directive: Optional[Directive], in_process: bool = False) -> None:
    """Apply a fault directive at the start of a chunk (worker side).

    Called by the pool worker's chunk runner and by the thread backend's
    in-thread chunk loop.  ``None`` (the hot path) returns immediately.
    With ``in_process=True`` (thread backend) a ``"kill-worker"``
    directive raises instead of exiting — a thread cannot be killed, and
    taking down the calling process would fault the wrong unit.
    """
    if directive is None:
        return
    kind, seconds = directive
    if kind == "kill-worker":
        if in_process:
            raise InjectedFault("injected worker death (thread substrate: raised)")
        # a hard death: no atexit hooks, no teardown — the closest
        # in-process analogue of a SIGKILLed (or OOM-killed) worker
        os._exit(1)
    if kind == "delay-chunk":
        time.sleep(seconds)
        return
    if kind == "fail-segment-attach":
        if not in_process:
            # drop this worker's shared-memory state first so the retry
            # must re-install it from the chunk payload, exercising the
            # republish path end to end
            from . import backend as _backend

            _backend._teardown_worker()
        raise InjectedFault("injected shared-memory segment attach failure")
    if kind == "poison-pickle":
        raise pickle.UnpicklingError("injected poisoned chunk payload")
    if kind == "drop-connection":
        # the distributed worker intercepts this kind *before* calling
        # apply_directive so it can shut its socket down first; on the
        # other substrates a dropped connection degenerates to a death
        if in_process:
            raise InjectedFault("injected dropped connection (thread substrate: raised)")
        os._exit(1)
    if kind == "corrupt-result":
        # fires *after* the chunk computes, via corrupt_payload() in the
        # chunk runner — nothing to do before execution
        return
    raise ValueError(f"unknown fault directive kind {kind!r}")


def apply_coordinator_directive(directive: Optional[Directive]) -> None:
    """Apply a coordinator-side directive at a harvest ordinal.

    ``None`` (the hot path) returns immediately; ``"kill-coordinator"``
    raises :exc:`InjectedCoordinatorDeath`.
    """
    if directive is None:
        return
    kind, _seconds = directive
    if kind == "kill-coordinator":
        raise InjectedCoordinatorDeath(
            "injected coordinator death at harvest ordinal"
        )
    raise ValueError(f"unknown coordinator directive kind {kind!r}")


def corrupt_payload(directive: Optional[Directive], arrays: List) -> None:
    """Apply a ``"corrupt-result"`` directive to a chunk's result payload.

    Called by the chunk runners *after* :func:`~repro.execution.checkpoint.
    payload_checksums` has been computed over the honest results, so the
    corruption models silent bit-rot in transit: the shipped checksums
    describe the true data and the coordinator's verification must catch
    the mismatch.  Flips exactly one bit — index ``int(seconds)`` modulo
    the payload's bit length (the directive's fixed ``(kind, seconds)``
    wire tuple is reused to carry the seeded bit index) — in the first
    non-empty array, replacing that list entry with the corrupted copy.
    No-op for ``None`` or any other kind.
    """
    if directive is None or directive[0] != "corrupt-result":
        return
    import numpy as np

    _kind, seconds = directive
    for index, array in enumerate(arrays):
        if getattr(array, "size", 0) == 0:
            continue
        corrupted = np.ascontiguousarray(array).copy()
        flat = corrupted.view(np.uint8).reshape(-1)
        bit = int(seconds) % (flat.size * 8)
        flat[bit // 8] ^= np.uint8(1 << (bit % 8))
        arrays[index] = corrupted.reshape(np.shape(array))
        return
