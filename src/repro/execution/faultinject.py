"""Deterministic, seeded fault injection for the execution backends.

Every recovery path of the resilience layer
(:mod:`repro.execution.resilience`) is exercisable on demand and
*reproducibly*: a :class:`FaultInjector` holds a list of
:class:`FaultSpec` entries, each naming a fault kind and the 0-based
**chunk submission ordinal** it fires on.  Ordinals are assigned in the
parent, in submission order (retries increment the counter too), so a
given injector produces the same fault sequence on every run — no race,
no wall-clock dependence, no RNG in the worker.

The injector itself never crosses the process boundary.  At submission
time the parent asks :meth:`FaultInjector.directive_for_next_chunk` for a
small picklable *directive* tuple that travels with the chunk task; the
worker applies it via :func:`apply_directive` before executing the chunk:

========================= ============================================== =
kind                      worker-side effect                 recovery path
========================= ============================================== =
``"kill-worker"``         ``os._exit(1)`` — hard death, no    pool rebuild
                          teardown hooks run (the SIGKILL
                          analogue)
``"delay-chunk"``         sleeps ``seconds`` before           chunk timeout
                          executing
``"fail-segment-attach"`` drops the worker's shared-memory    chunk retry +
                          state, then raises as a failed      payload
                          segment attach                      re-install
``"poison-pickle"``       raises ``pickle.UnpicklingError``   chunk retry
                          as a corrupt chunk payload would
``"drop-connection"``     severs the worker's coordinator     rebalance onto
                          socket mid-chunk, then exits — the  survivors /
                          cut-network-link analogue for the   respawn
                          distributed backend (elsewhere it
                          behaves like ``"kill-worker"``)
========================= ============================================== =

Injection is **opt-in** end to end: backends consult an injector only
when one was configured (``configure_faults(injector=...)``, or the
``fault_injector=`` argument of :class:`~repro.execution.SlicedExecutor`
and friends), and a ``None`` directive is the hot path.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

__all__ = ["FaultInjector", "FaultSpec", "InjectedFault", "apply_directive"]

#: The injectable fault kinds.
FAULT_KINDS = (
    "kill-worker",
    "delay-chunk",
    "fail-segment-attach",
    "poison-pickle",
    "drop-connection",
)

#: A picklable directive: ``(kind, seconds)``.
Directive = Tuple[str, float]


class InjectedFault(RuntimeError):
    """Raised inside a worker (or thread) by an injected fault directive."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    chunk:
        The 0-based chunk submission ordinal the fault fires on.  The
        counter is global across a run, including re-submissions, so a
        single-shot spec consumed by chunk ``n`` does not re-fire when
        chunk ``n`` is retried (the retry has a later ordinal).
    seconds:
        Sleep length for ``"delay-chunk"`` (ignored by the other kinds).
    times:
        How many eligible submissions (ordinal >= ``chunk``) the spec
        fires on before it is spent.  The default single shot models a
        transient fault; larger values model a persistent one (e.g. a
        worker that dies every time, forcing degradation).
    """

    kind: str
    chunk: int = 0
    seconds: float = 0.05
    times: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if self.chunk < 0:
            raise ValueError("chunk ordinal must be >= 0")
        if self.times < 1:
            raise ValueError("times must be >= 1")


@dataclass
class FaultInjector:
    """Deterministic fault scheduler consulted at chunk submission time.

    Attributes
    ----------
    faults:
        The scheduled :class:`FaultSpec` list.  Multiple specs may be
        armed; at most one fires per submission (first eligible wins).
    submitted:
        Chunks submitted so far (the ordinal counter).
    fired:
        ``(ordinal, kind)`` log of every directive handed out — what
        tests assert reproducibility against.
    """

    faults: List[FaultSpec] = field(default_factory=list)
    submitted: int = 0
    fired: List[Tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.faults = list(self.faults)
        self._remaining = [spec.times for spec in self.faults]

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        kinds: Sequence[str] = FAULT_KINDS,
        num_chunks: int = 8,
        num_faults: int = 1,
        seconds: float = 0.05,
    ) -> "FaultInjector":
        """An injector whose fault kinds/ordinals are drawn from ``seed``.

        Deterministic: the same seed always schedules the same faults at
        the same submission ordinals — the property-test entry point.
        Uses a local PRNG so global RNG state is untouched.
        """
        import numpy as np

        rng = np.random.default_rng(seed)
        specs = [
            FaultSpec(
                kind=kinds[int(rng.integers(len(kinds)))],
                chunk=int(rng.integers(max(1, num_chunks))),
                seconds=seconds,
            )
            for _ in range(num_faults)
        ]
        return cls(faults=specs)

    # ------------------------------------------------------------------
    def directive_for_next_chunk(self) -> Optional[Directive]:
        """Consume one submission ordinal; the directive to attach, if any."""
        ordinal = self.submitted
        self.submitted += 1
        for index, spec in enumerate(self.faults):
            if self._remaining[index] <= 0:
                continue
            if ordinal < spec.chunk:
                continue
            self._remaining[index] -= 1
            self.fired.append((ordinal, spec.kind))
            return (spec.kind, spec.seconds)
        return None

    @property
    def exhausted(self) -> bool:
        """Whether every scheduled fault has fired."""
        return all(remaining <= 0 for remaining in self._remaining)

    def reset(self) -> None:
        """Re-arm every spec and rewind the ordinal counter."""
        self.submitted = 0
        self.fired = []
        self._remaining = [spec.times for spec in self.faults]


def apply_directive(directive: Optional[Directive], in_process: bool = False) -> None:
    """Apply a fault directive at the start of a chunk (worker side).

    Called by the pool worker's chunk runner and by the thread backend's
    in-thread chunk loop.  ``None`` (the hot path) returns immediately.
    With ``in_process=True`` (thread backend) a ``"kill-worker"``
    directive raises instead of exiting — a thread cannot be killed, and
    taking down the calling process would fault the wrong unit.
    """
    if directive is None:
        return
    kind, seconds = directive
    if kind == "kill-worker":
        if in_process:
            raise InjectedFault("injected worker death (thread substrate: raised)")
        # a hard death: no atexit hooks, no teardown — the closest
        # in-process analogue of a SIGKILLed (or OOM-killed) worker
        os._exit(1)
    if kind == "delay-chunk":
        time.sleep(seconds)
        return
    if kind == "fail-segment-attach":
        if not in_process:
            # drop this worker's shared-memory state first so the retry
            # must re-install it from the chunk payload, exercising the
            # republish path end to end
            from . import backend as _backend

            _backend._teardown_worker()
        raise InjectedFault("injected shared-memory segment attach failure")
    if kind == "poison-pickle":
        raise pickle.UnpicklingError("injected poisoned chunk payload")
    if kind == "drop-connection":
        # the distributed worker intercepts this kind *before* calling
        # apply_directive so it can shut its socket down first; on the
        # other substrates a dropped connection degenerates to a death
        if in_process:
            raise InjectedFault("injected dropped connection (thread substrate: raised)")
        os._exit(1)
    raise ValueError(f"unknown fault directive kind {kind!r}")
