"""Fused sub-path execution: §5 secondary slicing inside the compiled plan.

The paper's single-node win comes from executing whole stem sub-paths
without round-tripping the running tensor through main memory: one load,
several contraction steps inside the LDM, one store, with the operand
permutations compressed by the §5.3.1 recursion formula.  Until this
module that schedule existed only as the analytical
:class:`~repro.execution.fused.ThreadLevelSimulator`; the actual hot path
(:meth:`~repro.execution.plan.CompiledPlan.execute`) materialized a
``transpose → reshape → dot → reshape`` round-trip per step, paying one
fresh allocation for every non-trivial operand permutation.

This module is the *real* counterpart, mapped onto a cache-hierarchy CPU:

* a **fusion pass** (:func:`compile_fused_runs`) partitions the stem's
  tensordot steps into :class:`FusedRun` groups.  Group boundaries come
  from :class:`~repro.core.secondary.SecondarySlicer` — the same
  longest-lifetime window growth, bounded by a working-set cap analogous
  to the LDM rank budget.  Every group's *kept rank* (what a CPE grid
  would hold after distributing the secondary-sliced indices) respects
  the cap by construction (property-tested); note that this executor
  runs the full unsliced tensors, so on the CPU the cap governs where
  group boundaries fall, not this process's peak memory;
* every operand permutation inside a run is **precompiled once** into a
  :class:`PermKernel` built on
  :class:`~repro.core.permutation_map.ReducedPermutationMap`: identity
  permutations compile to pure reshape views (no copy, no kernel), all
  others to a single vectorised gather over the reduced ``N / 2^m`` core
  map, written into a recycled scratch buffer of the
  :class:`~repro.execution.plan.StemSlots` arena — no per-step
  allocations;
* the GEMM of each fused op writes directly into the arena's alternating
  stem slots, and interior intermediates never enter the executor's
  ``live`` table: within a run the running tensor exists only in slots
  and scratch (the CPU analogue of "stays in LDM").

Bit-identity with the step-by-step path holds by construction: a gather
through a correct permutation map produces exactly the array
``np.transpose(a, perm).reshape(m, k)`` would, and the ``np.dot`` calls
then see identical operands in identical layouts.  The equivalence tests
assert exact equality across all execution backends.

Cost-model-ranked selection of the working-set cap (which fixes the
group boundaries) lives in :mod:`repro.costs.fusion`; the analytical
Sunway-level timing story stays in :mod:`repro.execution.fused`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..core.permutation_map import PermutationSpec, ReducedPermutationMap
from ..core.secondary import FusedPlan, SecondarySlicer
from ..core.stem import extract_stem
from ..tensornet.contraction_tree import ContractionTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import ContractStep, StemSlots

__all__ = [
    "FusedOp",
    "FusedRun",
    "PermKernel",
    "compile_fused_runs",
    "compile_step_tapes",
]


#: Scratch keys in the :class:`~repro.execution.plan.StemSlots` arena used
#: for permuted operands.  One buffer per side suffices: a permuted copy is
#: consumed by the very next ``np.dot`` before the key is reused.
SCRATCH_LHS = "fused-lhs"
SCRATCH_RHS = "fused-rhs"


#: Minimum contiguous suffix block (elements) for the reduced-map gather
#: to beat a strided copy: below this the gather moves near-scalar rows
#: and numpy's optimized nd-strided copy loop wins.
GATHER_MIN_SUFFIX = 8


@dataclass(frozen=True, eq=False)
class PermKernel:
    """One precompiled operand permutation of a fused GEMM.

    Three strategies, chosen at compile time from the §5.3.1 structure of
    the permutation (its fixed leading/trailing blocks):

    * ``"view"`` — the permutation is the identity: a reshape view,
      nothing moves;
    * ``"gather"`` — the source is viewed as
      ``(prefix_size, core_size, suffix_size)`` and a single ``take``
      along the core axis (into arena scratch, never a fresh allocation)
      realises the whole transpose; ``core_map`` stores only
      ``N / (prefix_size · suffix_size)`` entries, exactly the paper's
      recursion-formula saving.  Used when the fixed trailing block is
      large enough that each gathered row is a sizable contiguous run;
    * ``"copy"`` — a strided ``copyto`` from the transposed view into
      scratch (numpy's nd copy loop), for permutations whose suffix block
      is too small for an efficient gather.

    All three produce the exact array ``np.transpose(a, perm).reshape``
    would, so the GEMMs stay bit-identical to the step-by-step path.

    ``out2d`` is the staged GEMM operand shape: ``(m, k)`` / ``(k, n)``
    for plain ``dot`` steps, ``(w, m, k)`` / ``(w, k, n)`` for batched
    (``bmm``) steps — a ``bmm`` step's leading batch axis lands in the
    permutation's fixed prefix (the §5.3.1 reduced core map is
    batch-invariant, see
    :meth:`~repro.core.permutation_map.PermutationSpec.with_leading_batch`),
    so the same three strategies serve both step kinds unchanged.
    """

    strategy: str
    out2d: Tuple[int, ...]
    perm: Tuple[int, ...] = ()
    target_shape: Tuple[int, ...] = ()
    prefix_size: int = 1
    core_size: int = 1
    suffix_size: int = 1
    core_map: Optional[np.ndarray] = None
    #: Space saving of the reduced map vs a full address map (diagnostics).
    reduction_factor: float = 1.0

    @property
    def identity(self) -> bool:
        """Whether the kernel is a pure reshape view."""
        return self.strategy == "view"

    def apply(
        self, array: np.ndarray, scratch_key: str, slots: "StemSlots", module=None
    ) -> np.ndarray:
        """The permuted 2-D GEMM operand (view or scratch-backed copy).

        ``module`` selects the execution substrate
        (:class:`~repro.execution.array_module.ArrayModule`); the default
        is host numpy, which performs the identical calls the pre-seam
        code did.
        """
        if self.strategy == "view":
            return array.reshape(self.out2d)
        if self.strategy == "gather":
            source = array.reshape(
                self.prefix_size, self.core_size, self.suffix_size
            )
            target = slots.scratch(
                scratch_key,
                (self.prefix_size, self.core_size, self.suffix_size),
                array.dtype,
            )
            if module is None:
                np.take(source, self.core_map, axis=1, out=target)
            else:
                module.take(source, self.core_map, 1, target)
            return target.reshape(self.out2d)
        target = slots.scratch(scratch_key, self.target_shape, array.dtype)
        if module is None:
            np.copyto(target, np.transpose(array, self.perm))
        else:
            module.copyto(target, module.transpose(array, self.perm))
        return target.reshape(self.out2d)


#: Largest tensor (elements) whose kernels the process-wide LRU retains.
#: A gather kernel's core map can hold up to ``N`` int64 entries, so
#: caching kernels of unboundedly large tensors would pin arbitrary
#: memory past their plans' lifetimes; big kernels are built per compile
#: instead (the vectorised table build keeps that cheap relative to the
#: executions the plan amortizes it over).
PERM_CACHE_MAX_ELEMENTS = 1 << 16


def _perm_kernel(
    perm: Tuple[int, ...], shape: Tuple[int, ...], out2d: Tuple[int, ...]
) -> PermKernel:
    """Compile one permutation; identity collapses to a reshape view.

    Kernels are pure functions of ``(perm, shape, out2d)`` and immutable
    (the core map is only ever read), so small ones are shared through a
    process-wide LRU — recompiling a plan, or compiling many plans over
    structurally similar trees, reuses the reduced maps instead of
    rebuilding them.  Kernels of tensors above
    :data:`PERM_CACHE_MAX_ELEMENTS` bypass the cache so it stays bounded
    in bytes, not just entry count.
    """
    size = 1
    for dim in shape:
        size *= dim
    if size <= PERM_CACHE_MAX_ELEMENTS:
        return _cached_perm_kernel(perm, shape, out2d)
    return _build_perm_kernel(perm, shape, out2d)


@lru_cache(maxsize=2048)
def _cached_perm_kernel(
    perm: Tuple[int, ...], shape: Tuple[int, ...], out2d: Tuple[int, ...]
) -> PermKernel:
    return _build_perm_kernel(perm, shape, out2d)


def _build_perm_kernel(
    perm: Tuple[int, ...], shape: Tuple[int, ...], out2d: Tuple[int, ...]
) -> PermKernel:
    spec = PermutationSpec(perm=tuple(perm), shape=tuple(shape))
    if spec.is_identity:
        return PermKernel(strategy="view", out2d=out2d)
    reduced = ReducedPermutationMap(spec)
    if reduced.suffix_size >= GATHER_MIN_SUFFIX:
        return PermKernel(
            strategy="gather",
            out2d=out2d,
            perm=spec.perm,
            target_shape=spec.target_shape,
            prefix_size=reduced.prefix_size,
            core_size=reduced.core_size,
            suffix_size=reduced.suffix_size,
            core_map=reduced.core_map,
            reduction_factor=reduced.reduction_factor,
        )
    # the copy strategy keeps the reduced core map too: the python walker
    # never reads it, but it documents the reduced form the native tape
    # lowering rebuilds when it rewrites every copy as a compiled gather
    # loop (see execution/tape.py), and the tests cross-check against it
    return PermKernel(
        strategy="copy",
        out2d=out2d,
        perm=spec.perm,
        target_shape=spec.target_shape,
        prefix_size=reduced.prefix_size,
        core_size=reduced.core_size,
        suffix_size=reduced.suffix_size,
        core_map=reduced.core_map,
        reduction_factor=reduced.reduction_factor,
    )


def _step_kernels(
    step: "ContractStep",
    shape_of: Mapping[int, Tuple[int, ...]],
    cache: Dict[int, Tuple[PermKernel, PermKernel]],
) -> Tuple[PermKernel, PermKernel]:
    """Both operand kernels of a GEMM-shaped step, memoized per node.

    Serves ``tensordot`` steps (2-D ``(m, k) × (k, n)`` layouts) and
    ``bmm`` steps (3-D ``(w, m, k) × (w, k, n)`` layouts whose leading
    batch axis the reduced maps absorb into their fixed prefix).  The
    same step appears in the full runs, the cache-clipped runs and the
    plain-step tapes; one kernel pair serves all three.
    """
    kernels = cache.get(step.node)
    if kernels is None:
        if step.kind == "bmm":
            assert step.bmm_lhs_shape is not None
            kernels = (
                _perm_kernel(
                    step.bmm_perm_lhs, shape_of[step.lhs], step.bmm_lhs_shape
                ),
                _perm_kernel(
                    step.bmm_perm_rhs, shape_of[step.rhs], step.bmm_rhs_shape
                ),
            )
        else:
            assert step.td_mkn is not None
            m, k, n = step.td_mkn
            kernels = (
                _perm_kernel(step.td_perm_lhs, shape_of[step.lhs], (m, k)),
                _perm_kernel(step.td_perm_rhs, shape_of[step.rhs], (k, n)),
            )
        cache[step.node] = kernels
    return kernels


def _step_gemm_dims(
    step: "ContractStep",
) -> Tuple[bool, Tuple[int, ...], Optional[Tuple[int, ...]]]:
    """``(is_bmm, gemm_out_dims, reshape_or_None)`` of a GEMM-shaped step.

    ``gemm_out_dims`` is the raw GEMM output shape — ``(m, n)`` for a
    ``dot`` step, ``(w, m, n)`` for a batched matmul — and the third
    element is the step's logical output shape when it differs (``None``
    when the GEMM output already is the step output).
    """
    if step.kind == "bmm":
        assert step.bmm_lhs_shape is not None and step.bmm_rhs_shape is not None
        dims: Tuple[int, ...] = (
            step.bmm_lhs_shape[0],
            step.bmm_lhs_shape[1],
            step.bmm_rhs_shape[2],
        )
        out_shape = step.bmm_out_shape
        return True, dims, None if out_shape == dims else out_shape
    assert step.td_mkn is not None
    m, _, n = step.td_mkn
    dims = (m, n)
    return False, dims, None if step.out_shape == dims else step.out_shape


@dataclass(frozen=True, eq=False)
class FusedOp:
    """One GEMM inside a fused run.

    ``step`` is the underlying compiled
    :class:`~repro.execution.plan.ContractStep` (node id, stem slot,
    ``(m, k, n)`` extents, output shape).  ``stem_on_lhs`` records which
    operand is the running stem tensor — it arrives through scratch, not
    the ``live`` table.  The free lists are the step's with the incoming
    stem operand removed for interior ops (it was never materialized into
    ``live``).
    """

    step: "ContractStep"
    stem_on_lhs: bool
    perm_lhs: PermKernel
    perm_rhs: PermKernel
    free_full: Tuple[int, ...]
    free_cached: Tuple[int, ...]


#: Tape modes of a flattened perm kernel (see :func:`_kernel_tape`).
TAPE_VIEW, TAPE_GATHER, TAPE_COPY = 0, 1, 2


def _kernel_tape(kernel: PermKernel) -> Tuple:
    """Flatten one perm kernel for the executor's inlined hot loop.

    Entry layout is ``(mode, p1, p2, out2d)``: the gather mode carries the
    3-D reduced view shape and the core map, the copy mode the source
    permutation and the target shape.

    :meth:`PermKernel.apply` is the readable reference implementation of
    this layout; the executor deliberately inlines it (twice — plain tape
    entries and fused runs in ``plan.py``) because a per-operand function
    call costs what the fused mode exists to save.  Any change here must
    land in all three places; the bit-identity equivalence suite
    (``tests/test_fusion.py``) catches divergence.
    """
    if kernel.strategy == "view":
        return (TAPE_VIEW, None, None, kernel.out2d)
    if kernel.strategy == "gather":
        shape3 = (kernel.prefix_size, kernel.core_size, kernel.suffix_size)
        return (TAPE_GATHER, shape3, kernel.core_map, kernel.out2d)
    return (TAPE_COPY, kernel.perm, kernel.target_shape, kernel.out2d)


@dataclass(frozen=True, eq=False)
class FusedRun:
    """A maximal fused sub-path: consecutive stem GEMMs with no round-trip.

    Attributes
    ----------
    ops:
        The fused GEMMs, in stem order.
    first_stem:
        Node id of the initial running tensor — the only stem operand read
        from the executor's ``live`` table (a leaf, a branch result, or a
        cached frontier intermediate).
    secondary_sliced:
        The §5 longest-lifetime slicing set of the covering
        :class:`~repro.core.secondary.FusedGroup` (diagnostics: these are
        the indices a CPE grid would distribute).
    kept_rank:
        Working-set rank of the covering group — guaranteed to respect
        the fusion pass's cap.

    ``__post_init__`` flattens the ops into a *tape* of plain tuples — the
    executor's hot loop unpacks these instead of chasing dataclass
    attributes and numpy wrapper functions, which is where a per-GEMM
    schedule at these tensor sizes actually spends its time.
    """

    ops: Tuple[FusedOp, ...]
    first_stem: int
    secondary_sliced: FrozenSet[str]
    kept_rank: int

    def __post_init__(self) -> None:
        tape = []
        free_full = []
        free_cached = []
        for op in self.ops:
            step = op.step
            assert step.slot is not None
            is_bmm, dims, out_shape = _step_gemm_dims(step)
            tape.append(
                (
                    step.node,
                    step.lhs,
                    step.rhs,
                    op.stem_on_lhs,
                    _kernel_tape(op.perm_lhs),
                    _kernel_tape(op.perm_rhs),
                    step.slot,
                    dims,
                    out_shape,
                    is_bmm,
                )
            )
            free_full.append(op.free_full)
            free_cached.append(op.free_cached)
        object.__setattr__(self, "tape", tuple(tape))
        object.__setattr__(self, "tape_free_full", tuple(free_full))
        object.__setattr__(self, "tape_free_cached", tuple(free_cached))
        object.__setattr__(
            self, "tape_nodes", tuple(op.step.node for op in self.ops)
        )

    @property
    def nodes(self) -> Tuple[int, ...]:
        """Tree node ids covered by this run, in execution order."""
        return tuple(op.step.node for op in self.ops)

    @property
    def num_steps(self) -> int:
        """Number of GEMMs fused into the run."""
        return len(self.ops)

    @property
    def gathers_skipped(self) -> int:
        """Operand permutations that compiled to identity views."""
        return sum(
            int(op.perm_lhs.identity) + int(op.perm_rhs.identity) for op in self.ops
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FusedRun(steps={self.num_steps}, first_stem={self.first_stem}, "
            f"kept_rank={self.kept_rank})"
        )


def compile_step_tapes(
    tree: ContractionTree,
    steps: Sequence["ContractStep"],
    shape_of: Mapping[int, Tuple[int, ...]],
    kernel_cache: Optional[Dict[int, Tuple[PermKernel, PermKernel]]] = None,
) -> Dict[int, Tuple]:
    """Precompiled inline entries for every plain GEMM-shaped step.

    A fused plan runs its off-run ``tensordot`` *and* ``bmm`` steps
    (branch subtrees, unfused stem stubs) through the same inlined tape
    loop as the fused runs — operands staged through the precompiled
    permutation kernels, the GEMM written into a stem slot or a recycled
    free-list buffer — instead of the allocating ``np.tensordot`` /
    ``np.matmul`` wrappers.  Entry layout::

        (node, lhs, rhs, lhs_kernel, rhs_kernel, slot, gemm_dims,
         out_shape_or_None, is_root, free_full, free_cached, is_bmm)

    ``gemm_dims`` is ``(m, n)`` for ``dot`` steps and ``(w, m, n)`` for
    batched matmuls; ``out_shape`` is ``None`` when the GEMM output
    already is the step's output shape.  The root is flagged because its
    buffer is handed to the caller and must not come from the recycled
    pools.
    """
    if kernel_cache is None:
        kernel_cache = {}
    tapes: Dict[int, Tuple] = {}
    for step in steps:
        if step.kind == "tensordot":
            if step.td_mkn is None:
                continue
        elif step.kind == "bmm":
            if step.bmm_lhs_shape is None:
                continue
        else:
            continue
        is_bmm, dims, out_shape = _step_gemm_dims(step)
        perm_lhs, perm_rhs = _step_kernels(step, shape_of, kernel_cache)
        lhs_kernel = _kernel_tape(perm_lhs)
        rhs_kernel = _kernel_tape(perm_rhs)
        tapes[step.node] = (
            step.node,
            step.lhs,
            step.rhs,
            lhs_kernel,
            rhs_kernel,
            step.slot,
            dims,
            out_shape,
            step.node == tree.root,
            step.free_full,
            step.free_cached,
            is_bmm,
        )
    return tapes


def _build_run(
    chain: List[Tuple[int, "ContractStep"]],
    stem_child_of: Mapping[int, int],
    shape_of: Mapping[int, Tuple[int, ...]],
    group_sliced: FrozenSet[str],
    group_kept_rank: int,
    kernel_cache: Dict[int, Tuple[PermKernel, PermKernel]],
) -> FusedRun:
    """Compile one contiguous chain of fusable stem steps into a run."""
    ops: List[FusedOp] = []
    for position, (_, step) in enumerate(chain):
        stem_child = stem_child_of[step.node]
        stem_on_lhs = step.lhs == stem_child
        perm_lhs, perm_rhs = _step_kernels(step, shape_of, kernel_cache)
        if position == 0:
            free_full = step.free_full
            free_cached = step.free_cached
        else:
            # the stem operand came through scratch, never through ``live``
            free_full = tuple(c for c in step.free_full if c != stem_child)
            free_cached = tuple(c for c in step.free_cached if c != stem_child)
        ops.append(
            FusedOp(
                step=step,
                stem_on_lhs=stem_on_lhs,
                perm_lhs=perm_lhs,
                perm_rhs=perm_rhs,
                free_full=free_full,
                free_cached=free_cached,
            )
        )
    return FusedRun(
        ops=tuple(ops),
        first_stem=stem_child_of[chain[0][1].node],
        secondary_sliced=group_sliced,
        kept_rank=group_kept_rank,
    )


def compile_fused_runs(
    tree: ContractionTree,
    steps: Sequence["ContractStep"],
    enumerated: AbstractSet[str],
    dependent: AbstractSet[int],
    shape_of: Mapping[int, Tuple[int, ...]],
    cap: Optional[int] = None,
    max_fused_steps: Optional[int] = None,
    kernel_cache: Optional[Dict[int, Tuple[PermKernel, PermKernel]]] = None,
) -> Tuple[
    Tuple[FusedRun, ...],
    Tuple[FusedRun, ...],
    Optional[FusedPlan],
    Dict[str, int],
]:
    """The fusion pass: partition the stem into executable fused runs.

    Group boundaries come from
    :meth:`~repro.core.secondary.SecondarySlicer.plan` over the stem with
    the enumerated slicing already removed — the working-set cap plays the
    role of the LDM rank budget, so every group's kept rank is ``<= cap``.
    Within each group, maximal chains of *fusable* steps (``tensordot``
    or ``bmm`` kind with a precompiled GEMM layout and a stem slot;
    ``einsum`` steps break the chain) of length >= 2 become
    :class:`FusedRun` objects.

    Two run sets are returned: ``runs_full`` for uncached execution (the
    whole plan runs, so invariant and dependent steps may share a run)
    and ``runs_cached`` for cache-warm execution, where each run is
    clipped to its slice-dependent suffix — the invariant prefix executes
    once inside ``warm_cache`` and the clipped run's first stem operand is
    then a cached frontier intermediate.  Also returns the underlying
    :class:`~repro.core.secondary.FusedPlan` for diagnostics (``None``
    when the tree has no stem to fuse), plus a ``fusion_breaks`` counter
    dict recording *why* stem steps stayed outside fused runs (reason →
    count): ``"einsum"`` for hyper-index fallback steps, ``"no-layout"``
    for GEMM steps compiled without an explicit layout, ``"no-slot"`` for
    steps off the slot schedule, ``"short-chain"`` for fusable chains of
    length 1 dropped at a group or kind boundary.  Before ``bmm`` steps
    became fusable these splits were silent, which made unfused batched
    hot paths invisible; the counters land on
    :attr:`~repro.execution.plan.PlanStats.fusion_breaks`.
    """
    breaks: Dict[str, int] = {}
    if tree.num_leaves < 2:
        return (), (), None, breaks
    stem = extract_stem(tree)
    if stem.length < 2:
        return (), (), None, breaks
    if kernel_cache is None:
        kernel_cache = {}
    slicer = SecondarySlicer(ldm_rank=cap, max_fused_steps=max_fused_steps)
    secondary_plan = slicer.plan(stem, process_sliced=frozenset(enumerated))
    step_of: Dict[int, "ContractStep"] = {s.node: s for s in steps}
    stem_child_of = {s.node: s.stem_child for s in stem.steps}

    runs_full: List[FusedRun] = []
    runs_cached: List[FusedRun] = []

    def flush(chain: List[Tuple[int, "ContractStep"]], group) -> None:
        if len(chain) >= 2:
            runs_full.append(
                _build_run(
                    chain,
                    stem_child_of,
                    shape_of,
                    group.secondary_sliced,
                    group.kept_rank,
                    kernel_cache,
                )
            )
        elif len(chain) == 1:
            # a fusable step stranded alone between boundaries: it will
            # run as a plain tape entry, not inside a run
            breaks["short-chain"] = breaks.get("short-chain", 0) + 1
        # cache-warm execution only runs the slice-dependent steps; the
        # dependent set is closed upward, so it is a suffix of the chain
        variant = [entry for entry in chain if entry[1].node in dependent]
        if len(variant) >= 2:
            runs_cached.append(
                _build_run(
                    variant,
                    stem_child_of,
                    shape_of,
                    group.secondary_sliced,
                    group.kept_rank,
                    kernel_cache,
                )
            )

    def unfusable_reason(step: Optional["ContractStep"]) -> Optional[str]:
        if step is None:
            return "missing-step"
        if step.kind == "einsum":
            return "einsum"
        if step.kind == "tensordot" and step.td_mkn is None:
            return "no-layout"
        if step.kind == "bmm" and step.bmm_lhs_shape is None:
            return "no-layout"
        if step.slot is None:
            return "no-slot"
        return None

    for group in secondary_plan.groups:
        chain: List[Tuple[int, "ContractStep"]] = []
        for position in range(group.start, group.stop):
            node = stem.steps[position].node
            step = step_of.get(node)
            reason = unfusable_reason(step)
            if reason is not None:
                breaks[reason] = breaks.get(reason, 0) + 1
                flush(chain, group)
                chain = []
                continue
            chain.append((position, step))
        flush(chain, group)

    return tuple(runs_full), tuple(runs_cached), secondary_plan, breaks
