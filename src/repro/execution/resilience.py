"""Fault tolerance for the execution stack: policies, recovery, degradation.

The paper's sliced decomposition (§6) is naturally restartable: every
subtask assignment is an independent, deterministic unit, and the backends
accumulate per-position contributions that are folded strictly in
assignment order *after* all positions are filled.  Recovery therefore
never perturbs the ordered-accumulation contract — a chunk that crashed,
timed out, or was poisoned is simply re-run (on the rebuilt pool, or on a
degraded substrate) until its ordered slot is filled, and the final fold
is bit-identical to a clean :class:`~repro.execution.backend.SerialBackend`
run.

This module carries the *policy* side of that story:

* :class:`FaultPolicy` — what to do when a chunk fails: fail fast (the
  default, and the pre-resilience behaviour), retry with exponential
  backoff and bounded pool rebuilds, or retry and then *degrade* down a
  substrate chain (process pool → thread pool → serial).  Per-chunk
  timeouts can be given explicitly or derived from the calibrated cost
  model's predicted subtask seconds
  (:meth:`~repro.costs.CostModel.timeout_budget`).
* :exc:`FaultError` / :exc:`ChunkTimeoutError` /
  :exc:`RecoveryExhaustedError` — the failure taxonomy the backends raise.
* :func:`fill_missing_serial` / :func:`fill_missing_threads` — the
  degradation executors: given a partially-filled per-position
  contribution list, they re-run exactly the assignments whose ordered
  slots are still empty, in-process.

The *mechanics* of pool crash recovery (worker-death detection, segment
republication under a new generation, re-running only the missing chunks)
live in :class:`~repro.execution.backend.ExecutionSession`; deterministic
fault *injection* lives in :mod:`repro.execution.faultinject`.

Everything above recovers within one coordinator process.  The rung
above — surviving the coordinator itself dying — is the durable chunk
ledger in :mod:`repro.execution.checkpoint`: arming
:attr:`FaultPolicy.checkpoint_dir` (or passing ``resume=`` to
:meth:`~repro.execution.SlicedExecutor.run`) write-ahead-persists each
harvested ordered slot, every ``checkpoint_every`` completions, so an
interrupted run resumes bit-identically in a fresh process with only the
missing slots re-executed.  :exc:`ChunkIntegrityError` is the checksum
half of that story: a harvested payload that fails its end-to-end CRC
(see the ``"corrupt-result"`` fault kind) is treated as an ordinary
chunk failure — retried under the same budget, never persisted.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs.model import CostModel
    from ..tensornet.contraction_tree import ContractionTree
    from ..tensornet.network import TensorNetwork
    from .plan import CompiledPlan, PlanStats

__all__ = [
    "ChunkIntegrityError",
    "ChunkTimeoutError",
    "FaultError",
    "FaultPolicy",
    "RecoveryClock",
    "RecoveryExhaustedError",
    "fill_missing_serial",
    "fill_missing_threads",
    "run_degraded",
]

#: The substrates a degrading pool run falls back to, in order.
DEFAULT_DEGRADATION_CHAIN: Tuple[str, ...] = ("threads", "serial")

_MODES = ("fail-fast", "retry", "degrade")


class FaultError(RuntimeError):
    """Base class for execution-fault errors raised by the backends."""


class ChunkTimeoutError(FaultError):
    """A subtask chunk exceeded its per-chunk timeout budget."""


class ChunkIntegrityError(FaultError):
    """A harvested chunk payload failed its end-to-end checksum.

    Raised by the coordinator's harvest paths when a contribution does
    not match the CRC its chunk runner shipped with it (silent data
    corruption in transit — or the injected ``"corrupt-result"`` fault).
    Routed through the same per-chunk retry budget as any other chunk
    failure; the poisoned payload is discarded before it can reach an
    ordered slot or the durable ledger."""


class RecoveryExhaustedError(FaultError):
    """Retries/rebuilds ran out with ordered slots still empty.

    Attributes
    ----------
    contributions:
        The per-position contribution list at the moment recovery gave
        up: filled slots hold bit-exact results that a degrading caller
        keeps; ``None`` slots are the assignments still to be re-run.
    """

    def __init__(
        self, message: str, contributions: Optional[List[Optional[np.ndarray]]] = None
    ) -> None:
        super().__init__(message)
        self.contributions: List[Optional[np.ndarray]] = (
            contributions if contributions is not None else []
        )


@dataclass(frozen=True)
class FaultPolicy:
    """How a backend responds to worker crashes, timeouts and bad chunks.

    The default-constructed policy is **fail-fast**: the first fault marks
    the session broken and propagates — exactly the pre-resilience
    behaviour, so the zero-fault hot path pays nothing.  Use
    :meth:`retrying` or :meth:`degrading` (or construct explicitly) to opt
    into recovery.

    Parameters
    ----------
    mode:
        ``"fail-fast"`` raises on the first fault; ``"retry"`` re-runs
        failed chunks (rebuilding a broken pool) up to the bounds below
        and raises :exc:`RecoveryExhaustedError` when they run out;
        ``"degrade"`` additionally falls back down
        :attr:`degradation_chain` once pool recovery is exhausted, so the
        run still completes (bit-identically) on a slower substrate.
    max_retries:
        Re-submissions allowed per chunk before recovery gives up.
    max_pool_rebuilds:
        Pool respawn + segment republish cycles allowed per run; ``None``
        defaults to ``max_retries``.
    backoff_seconds / backoff_multiplier:
        Deterministic exponential backoff: re-submission attempt ``k``
        (0-based) sleeps ``backoff_seconds * backoff_multiplier**k``.
    chunk_timeout_seconds:
        Hard wall-time budget for waiting on one chunk; ``None`` disables
        chunk timeouts (unless :attr:`subtask_timeout_seconds` is set).
    subtask_timeout_seconds:
        Per-subtask budget; a chunk of ``n`` subtasks gets
        ``max(min_timeout_seconds, n * subtask_timeout_seconds)``.
        Usually derived from the cost model via :meth:`derived_from`.
    min_timeout_seconds:
        Floor under any derived chunk timeout (predictions for tiny
        subtasks would otherwise produce hair-trigger budgets).
    timeout_safety:
        Multiplier applied to the cost model's predicted subtask seconds
        when :meth:`derived_from` fills :attr:`subtask_timeout_seconds`.
    degradation_chain:
        Substrate names tried, in order, after pool recovery is exhausted
        in ``"degrade"`` mode (subset of ``("threads", "serial")``).
    checkpoint_dir:
        Root directory of a durable
        :class:`~repro.execution.checkpoint.CheckpointStore`.  When set,
        executors arm the write-ahead chunk ledger automatically: every
        run persists harvested slots there and resumes from a matching
        ledger on restart.  Fail-fast semantics — an unwritable root
        raises :exc:`~repro.execution.checkpoint.CheckpointError` at run
        start rather than silently running without durability.  ``None``
        (the default) keeps the hot path ledger-free.
    checkpoint_every:
        Flush the ledger every this many completed slots (>= 1).  A crash
        loses at most ``checkpoint_every - 1`` unflushed slots; raising
        it amortises the fsync cost on small-chunk workloads.
    """

    mode: str = "fail-fast"
    max_retries: int = 2
    max_pool_rebuilds: Optional[int] = None
    backoff_seconds: float = 0.02
    backoff_multiplier: float = 2.0
    chunk_timeout_seconds: Optional[float] = None
    subtask_timeout_seconds: Optional[float] = None
    min_timeout_seconds: float = 1.0
    timeout_safety: float = 50.0
    degradation_chain: Tuple[str, ...] = DEFAULT_DEGRADATION_CHAIN
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 1

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.max_pool_rebuilds is not None and self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.backoff_seconds < 0 or self.backoff_multiplier <= 0:
            raise ValueError("backoff must be non-negative with a positive multiplier")
        for substrate in self.degradation_chain:
            if substrate not in DEFAULT_DEGRADATION_CHAIN:
                raise ValueError(
                    f"unknown degradation substrate {substrate!r} "
                    f"(chain must draw from {DEFAULT_DEGRADATION_CHAIN})"
                )

    # ------------------------------------------------------------------
    @classmethod
    def fail_fast(cls) -> "FaultPolicy":
        """The zero-recovery policy: first fault propagates immediately."""
        return cls(mode="fail-fast", max_retries=0, max_pool_rebuilds=0)

    @classmethod
    def retrying(cls, max_retries: int = 2, **kwargs: object) -> "FaultPolicy":
        """Bounded retries + pool rebuilds; raises when they run out."""
        return cls(mode="retry", max_retries=max_retries, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def degrading(cls, max_retries: int = 1, **kwargs: object) -> "FaultPolicy":
        """Retry, then fall back process pool → thread pool → serial."""
        return cls(mode="degrade", max_retries=max_retries, **kwargs)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    @property
    def pool_rebuild_budget(self) -> int:
        """Pool rebuilds allowed per run (``max_pool_rebuilds`` or retries)."""
        if self.mode == "fail-fast":
            return 0
        if self.max_pool_rebuilds is not None:
            return self.max_pool_rebuilds
        return self.max_retries

    @property
    def chunk_retry_budget(self) -> int:
        """Re-submissions allowed per chunk (0 in fail-fast mode)."""
        return 0 if self.mode == "fail-fast" else self.max_retries

    def chunk_timeout(self, num_subtasks: int) -> Optional[float]:
        """Wall-time budget for one chunk of ``num_subtasks`` subtasks."""
        if self.chunk_timeout_seconds is not None:
            return max(self.chunk_timeout_seconds, self.min_timeout_seconds)
        if self.subtask_timeout_seconds is not None:
            return max(
                self.min_timeout_seconds,
                self.subtask_timeout_seconds * max(1, num_subtasks),
            )
        return None

    def backoff(self, attempt: int) -> float:
        """Deterministic exponential backoff before re-submission ``attempt``."""
        return self.backoff_seconds * self.backoff_multiplier ** max(0, attempt)

    def derived_from(
        self,
        cost_model: "CostModel",
        tree: "ContractionTree",
        sliced: frozenset = frozenset(),
        backend: Optional[str] = None,
    ) -> "FaultPolicy":
        """A copy with timeouts budgeted from the cost model's predictions.

        Explicit timeouts are respected (the policy is returned
        unchanged); otherwise ``subtask_timeout_seconds`` becomes
        ``timeout_safety`` times the model's predicted per-subtask
        seconds (:meth:`~repro.costs.CostModel.timeout_budget`).  A model
        that cannot predict this backend leaves the policy timeout-free
        rather than failing the run.
        """
        if (
            self.chunk_timeout_seconds is not None
            or self.subtask_timeout_seconds is not None
        ):
            return self
        from ..costs.model import CostModelError

        try:
            budget = cost_model.timeout_budget(
                tree,
                sliced,
                backend=backend,
                subtasks=1,
                safety=self.timeout_safety,
                floor=0.0,
            )
        except CostModelError:
            return self
        return replace(self, subtask_timeout_seconds=budget)


#: The module-wide default: bit-for-bit the pre-resilience behaviour.
FAIL_FAST = FaultPolicy.fail_fast()


# ----------------------------------------------------------------------
# Degradation executors
# ----------------------------------------------------------------------
def _missing_positions(contributions: List[Optional[np.ndarray]]) -> List[int]:
    return [i for i, c in enumerate(contributions) if c is None]


def fill_missing_serial(
    plan: "CompiledPlan",
    network: "TensorNetwork",
    assignments: Sequence[Mapping[str, int]],
    contributions: List[Optional[np.ndarray]],
    cache: Optional[Dict[int, np.ndarray]],
    sum_batch_axes: int,
    stats: Optional["PlanStats"],
    slots: Optional[object] = None,
) -> None:
    """Fill every empty ordered slot by executing its subtask in-process.

    Only assignments whose slot is still ``None`` run; filled slots keep
    their (bit-exact) pool-computed contributions.  Because each subtask
    is deterministic, the final ordered fold is bit-identical to a clean
    serial run regardless of which slots were recovered.
    """
    from .backend import _owned_contribution
    from .plan import StemSlots

    arena = slots if slots is not None else StemSlots()
    for position in _missing_positions(contributions):
        tensor = plan.execute(
            network, assignments[position], cache=cache, stats=stats, slots=arena
        )
        contributions[position] = _owned_contribution(tensor, sum_batch_axes)


def fill_missing_threads(
    plan: "CompiledPlan",
    network: "TensorNetwork",
    assignments: Sequence[Mapping[str, int]],
    contributions: List[Optional[np.ndarray]],
    cache: Optional[Dict[int, np.ndarray]],
    sum_batch_axes: int,
    stats: Optional["PlanStats"],
    max_workers: int,
) -> None:
    """Thread-pool variant of :func:`fill_missing_serial`.

    numpy releases the GIL inside the contraction kernels, so this is the
    preferred first fallback of a degrading process-pool run: no worker
    processes to respawn, shared address space, still parallel.
    """
    from concurrent.futures import ThreadPoolExecutor

    from .backend import _owned_contribution
    from .plan import PlanStats, StemSlots

    missing = _missing_positions(contributions)
    if not missing:
        return
    thread_state = threading.local()

    def work(position: int) -> "PlanStats":
        local_stats = PlanStats()
        arena = getattr(thread_state, "slots", None)
        if arena is None:
            arena = thread_state.slots = StemSlots()
        tensor = plan.execute(
            network,
            assignments[position],
            cache=cache,
            stats=local_stats,
            slots=arena,
        )
        contributions[position] = _owned_contribution(tensor, sum_batch_axes)
        return local_stats

    with ThreadPoolExecutor(max_workers=max(1, max_workers)) as pool:
        for local_stats in pool.map(work, missing):
            if stats is not None:
                stats.merge(local_stats)


def run_degraded(
    substrate: str,
    plan: "CompiledPlan",
    network: "TensorNetwork",
    assignments: Sequence[Mapping[str, int]],
    contributions: List[Optional[np.ndarray]],
    cache: Optional[Dict[int, np.ndarray]],
    sum_batch_axes: int,
    stats: Optional["PlanStats"],
    max_workers: int,
) -> None:
    """Dispatch one degradation-chain substrate by name."""
    if substrate == "threads":
        fill_missing_threads(
            plan,
            network,
            assignments,
            contributions,
            cache,
            sum_batch_axes,
            stats,
            max_workers,
        )
    elif substrate == "serial":
        fill_missing_serial(
            plan, network, assignments, contributions, cache, sum_batch_axes, stats
        )
    else:  # pragma: no cover - guarded by FaultPolicy validation
        raise ValueError(f"unknown degradation substrate {substrate!r}")


class RecoveryClock:
    """Accumulates wall time spent inside recovery actions onto stats."""

    def __init__(self, stats: Optional["PlanStats"]) -> None:
        self._stats = stats
        self._start: Optional[float] = None

    def __enter__(self) -> "RecoveryClock":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        if self._stats is not None and self._start is not None:
            self._stats.recovery_seconds += time.perf_counter() - self._start
        self._start = None
