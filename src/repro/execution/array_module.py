"""The array-module seam: device-pluggable kernels behind one boundary.

Every hot-path kernel of the execution layer — the :class:`StemSlots`
arena allocations, the stepwise ``transpose → reshape → dot`` staging,
the fused tape walker's permutation gathers, the batched-GEMM sweeps —
used to call ``np.*`` directly.  This module factors those call sites
behind an :class:`ArrayModule`: a small namespace object exposing exactly
the operations the compiled plans consume (``empty``,
``ascontiguousarray``, ``transpose``, ``reshape``, ``dot(out=)``,
``take``, ``copyto``, ``einsum``, ``tensordot``, ``result_type``, the
``batched_gemm`` entry point, and ``to_host``/``from_host`` staging),
plus dtype and device identity.  ``compile_plan(...,
array_module=)`` / ``SlicedExecutor(..., array_module=)`` thread an
instance through every layer, so plans can execute on any substrate with
this surface — numpy (the default), CuPy on a CUDA device, or torch CPU
tensors through their numpy interop.

**Host-staging contract at the shared-memory boundary.**  Network leaf
tensors, the published shared-memory segments of
:class:`~repro.execution.backend.ExecutionSession`, and every accumulated
result are *host-side numpy arrays* — always.  A non-numpy module stages
per subtask instead: :meth:`ArrayModule.from_host` moves each sliced leaf
onto the module's substrate inside ``CompiledPlan._load_leaf``, the whole
contraction runs on module arrays, and :meth:`ArrayModule.to_host` moves
the root back before the backend's ordered accumulation.  Segments
therefore never hold device memory, worker processes never need a device
context, and the transfer cost lands inside the timed per-subtask window
— which is exactly where the calibration layer's per-module coefficient
keys (``"<backend>+<engine>+<module>"``, see
:mod:`repro.costs.calibration`) price it.  Because device arrays cannot
cross the pickled/shm boundary, non-numpy modules are rejected on
:class:`~repro.execution.backend.SharedMemoryProcessPoolBackend` until
device-aware sessions exist (see
:func:`~repro.execution.backend.validate_execution_args`).

For :class:`NumpyModule` every method is the numpy function itself (or
the identity, for the staging pair), so the seamed hot path executes the
very same C kernels in the very same order as the pre-seam code — the
refactor is **bit-identical** with the default module on every engine,
backend and fault path.  Non-numpy modules are allclose-gated instead:
their BLAS accumulates in a different order, so equality is numerical,
not bitwise.

The native numba tape engine (:mod:`repro.execution.tape`) operates on
raw numpy buffers and stays numpy-only: with a non-numpy module
``tape_engine="auto"`` resolves to the Python walker and ``"native"`` is
rejected at compile time.

``CupyModule``/``TorchModule`` are import-guarded the way QTensor lazily
imports cupy: constructing one raises a clear ``ImportError`` when the
library is absent, and nothing in this package imports either library at
module scope.
"""

from __future__ import annotations

import operator
from typing import Optional, Tuple, Union

import numpy as np

__all__ = [
    "ArrayModule",
    "CupyModule",
    "NumpyModule",
    "TorchModule",
    "numpy_batched_gemm",
    "resolve_array_module",
]


def numpy_batched_gemm(a3: np.ndarray, b3: np.ndarray, out3: np.ndarray) -> None:
    """Slicewise 2-D GEMM — the one ``bmm`` primitive every engine shares.

    ``np.matmul`` over a 3-D stack is *not* bitwise identical to a loop
    of 2-D GEMMs (its batched path accumulates differently), and the
    numba tape kernel (:mod:`repro.execution.tape`) can only express the
    loop — so the stepwise walker, the fused Python walker and the native
    kernel all contract the batch axis this way, keeping every
    backend/engine combination bit-identical.
    """
    if a3.dtype != out3.dtype:
        a3 = a3.astype(out3.dtype)
    if b3.dtype != out3.dtype:
        b3 = b3.astype(out3.dtype)
    for i in range(out3.shape[0]):
        np.dot(a3[i], b3[i], out=out3[i])


class ArrayModule:
    """Protocol for execution substrates the compiled plans run on.

    Implementations supply array construction, layout and GEMM kernels
    with numpy semantics (C-order staging, ``out=`` writes) plus the
    host staging pair.  Arrays handed between the methods of one module
    are always that module's native array type; dtype objects likewise
    flow in the module's native currency (``a.dtype`` of its arrays and
    the output of :meth:`result_type`), with :meth:`dtype_key` providing
    a hashable string form for the arena's free-list buckets.
    """

    #: Module identity — the third component of calibration keys.
    name: str = "abstract"
    #: Where the module's arrays live (``"cpu"`` or ``"cuda"``).
    device: str = "cpu"
    #: Whether the native numba tape kernel can walk this module's
    #: buffers directly (raw numpy only).
    supports_native_tape: bool = False

    @property
    def is_host(self) -> bool:
        """Whether arrays are plain host numpy (no staging, shm-safe)."""
        return self.name == "numpy"

    # -- construction and layout ---------------------------------------
    def empty(self, shape, dtype):
        raise NotImplementedError

    def ascontiguousarray(self, a):
        raise NotImplementedError

    def transpose(self, a, axes):
        raise NotImplementedError

    def reshape(self, a, shape):
        raise NotImplementedError

    def take(self, a, indices, axis, out=None):
        raise NotImplementedError

    def copyto(self, dst, src):
        raise NotImplementedError

    def asarray(self, a, dtype=None):
        raise NotImplementedError

    # -- contraction kernels -------------------------------------------
    def dot(self, a, b, out=None):
        raise NotImplementedError

    def batched_gemm(self, a3, b3, out3) -> None:
        """In-place slicewise GEMM over the leading batch axis."""
        raise NotImplementedError

    def tensordot(self, a, b, axes):
        raise NotImplementedError

    def einsum(self, a, sub_a, b, sub_b, sub_out, out=None):
        """Interleaved integer-sublist pairwise einsum (hyper-index fallback)."""
        raise NotImplementedError

    # -- dtype and buffer identity -------------------------------------
    def result_type(self, a, b):
        raise NotImplementedError

    def dtype_key(self, dtype) -> str:
        """Hashable identity of a module-native dtype (free-list buckets)."""
        raise NotImplementedError

    def size_of(self, a) -> int:
        """Element count of a module array."""
        raise NotImplementedError

    def nbytes_of(self, a) -> int:
        """Byte size of a module array."""
        raise NotImplementedError

    def owner_of(self, a):
        """The array owning ``a``'s buffer (walks the view chain)."""
        raise NotImplementedError

    # -- host staging ---------------------------------------------------
    def to_host(self, a) -> np.ndarray:
        """A host numpy array of ``a`` (identity for the numpy module)."""
        raise NotImplementedError

    def from_host(self, a):
        """A module array of host data ``a`` (identity for numpy)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"


class NumpyModule(ArrayModule):
    """The default host substrate: every kernel *is* the numpy function.

    ``to_host``/``from_host`` are the identity (no copy), so a plan
    seamed through this module performs byte-for-byte the same operations
    — same C kernels, same call order, same aliasing — as the pre-seam
    code.  The existing cross-engine/cross-backend bit-identity contract
    therefore carries over unchanged.
    """

    name = "numpy"
    device = "cpu"
    supports_native_tape = True

    #: The raw namespace, for callers that want ``xp.*`` style access.
    xp = np

    empty = staticmethod(np.empty)
    ascontiguousarray = staticmethod(np.ascontiguousarray)
    # the unbound C method descriptors, not the ``np.*`` Python wrappers:
    # ``np.take``/``np.transpose``/``np.reshape`` delegate to exactly
    # these (bit-identical), but each wrapper frame costs real time in
    # the per-step tape loop — the pre-seam code called the methods
    # directly, and the seam must not slow that hot path down
    transpose = staticmethod(np.ndarray.transpose)
    reshape = staticmethod(np.ndarray.reshape)
    take = staticmethod(np.ndarray.take)
    copyto = staticmethod(np.copyto)
    asarray = staticmethod(np.asarray)
    dot = staticmethod(np.dot)
    tensordot = staticmethod(np.tensordot)
    batched_gemm = staticmethod(numpy_batched_gemm)
    result_type = staticmethod(np.result_type)
    # C-level attribute access for the arena's per-step buffer checks
    size_of = staticmethod(operator.attrgetter("size"))
    nbytes_of = staticmethod(operator.attrgetter("nbytes"))

    @staticmethod
    def einsum(a, sub_a, b, sub_b, sub_out, out=None):
        if out is None:
            return np.einsum(a, sub_a, b, sub_b, sub_out)
        np.einsum(a, sub_a, b, sub_b, sub_out, out=out)
        return out

    # C-level: the arena's free-list keys always pass real ``np.dtype``
    # instances (``a.dtype`` / ``result_type(...)``), for which
    # ``np.dtype(d).str == d.str`` — and the recycling path runs once per
    # fused branch step, so the wrapper frame would be measurable
    dtype_key = staticmethod(operator.attrgetter("str"))

    @staticmethod
    def owner_of(a):
        # walk to the owning ndarray; stop at non-ndarray bases (e.g. the
        # mmap behind a shared-memory view) — those are foreign by
        # definition, arena loans are always backed by plain ndarrays
        owner = a
        while isinstance(owner.base, np.ndarray):
            owner = owner.base
        return owner

    @staticmethod
    def to_host(a) -> np.ndarray:
        return a

    @staticmethod
    def from_host(a):
        return a


#: The process-wide default module every plan and arena binds unless told
#: otherwise.  A singleton so identity checks (``module is NUMPY_MODULE``)
#: stay cheap on the hot path.
NUMPY_MODULE = NumpyModule()


class CupyModule(ArrayModule):
    """CUDA substrate through CuPy's numpy-compatible namespace.

    Import-guarded: constructing one without an importable ``cupy``
    raises ``ImportError`` immediately with an actionable message.
    Leaves stage host→device per subtask and the root stages back — the
    shared-memory boundary stays host-side (see the module docstring).
    """

    name = "cupy"
    device = "cuda"
    supports_native_tape = False

    def __init__(self) -> None:
        try:
            import cupy  # noqa: PLC0415 - lazy by design
        except ImportError as error:  # pragma: no cover - env-dependent
            raise ImportError(
                "array_module='cupy' requires the cupy package (and a CUDA "
                "device); install cupy or use the default numpy module"
            ) from error
        self.xp = cupy

    def empty(self, shape, dtype):
        return self.xp.empty(shape, dtype=dtype)

    def ascontiguousarray(self, a):
        return self.xp.ascontiguousarray(a)

    def transpose(self, a, axes):
        return self.xp.transpose(a, axes)

    def reshape(self, a, shape):
        return self.xp.reshape(a, shape)

    def take(self, a, indices, axis, out=None):
        return self.xp.take(a, self.xp.asarray(indices), axis=axis, out=out)

    def copyto(self, dst, src):
        self.xp.copyto(dst, src)

    def asarray(self, a, dtype=None):
        return self.xp.asarray(a, dtype=dtype)

    def dot(self, a, b, out=None):
        return self.xp.dot(a, b, out=out)

    def batched_gemm(self, a3, b3, out3) -> None:
        if a3.dtype != out3.dtype:
            a3 = a3.astype(out3.dtype)
        if b3.dtype != out3.dtype:
            b3 = b3.astype(out3.dtype)
        for i in range(out3.shape[0]):
            self.xp.dot(a3[i], b3[i], out=out3[i])

    def tensordot(self, a, b, axes):
        return self.xp.tensordot(a, b, axes=axes)

    def einsum(self, a, sub_a, b, sub_b, sub_out, out=None):
        result = self.xp.einsum(a, sub_a, b, sub_b, sub_out)
        if out is None:
            return result
        self.xp.copyto(out, result)
        return out

    def result_type(self, a, b):
        return np.result_type(a.dtype, b.dtype)

    def dtype_key(self, dtype) -> str:
        return np.dtype(dtype).str

    def size_of(self, a) -> int:
        return a.size

    def nbytes_of(self, a) -> int:
        return a.nbytes

    def owner_of(self, a):
        owner = a
        while getattr(owner, "base", None) is not None:
            owner = owner.base
        return owner

    def to_host(self, a) -> np.ndarray:
        return self.xp.asnumpy(a)

    def from_host(self, a):
        return self.xp.asarray(a)


class TorchModule(ArrayModule):
    """Torch substrate through CPU tensors and their numpy interop.

    The CPU leg exists so the seam is exercisable in CI without a GPU:
    ``from_host`` wraps host arrays via ``torch.from_numpy`` (zero-copy
    when contiguous and writable) and ``to_host`` hands back ``.numpy()``
    views.  Construction is import-guarded like :class:`CupyModule`.
    Torch's BLAS groups its accumulations differently from numpy's, so
    results through this module are allclose to the numpy path, not
    bit-identical — the seam equivalence suite gates it accordingly.
    """

    name = "torch"
    supports_native_tape = False

    def __init__(self, device: str = "cpu") -> None:
        try:
            import torch  # noqa: PLC0415 - lazy by design
        except ImportError as error:  # pragma: no cover - env-dependent
            raise ImportError(
                "array_module='torch' requires the torch package; install "
                "torch (CPU wheels suffice) or use the default numpy module"
            ) from error
        self.xp = torch
        self.device = device

    def _torch_dtype(self, dtype):
        if isinstance(dtype, self.xp.dtype):
            return dtype
        # generic numpy→torch dtype mapping via the interop itself
        return self.xp.from_numpy(np.empty(0, dtype=np.dtype(dtype))).dtype

    def empty(self, shape, dtype):
        return self.xp.empty(shape, dtype=self._torch_dtype(dtype), device=self.device)

    def ascontiguousarray(self, a):
        return a.contiguous()

    def transpose(self, a, axes):
        return a.permute(axes)

    def reshape(self, a, shape):
        return a.reshape(shape)

    def take(self, a, indices, axis, out=None):
        index = self.xp.as_tensor(
            np.ascontiguousarray(indices), device=a.device
        )
        if out is None:
            return self.xp.index_select(a, axis, index)
        self.xp.index_select(a, axis, index, out=out)
        return out

    def copyto(self, dst, src):
        dst.copy_(src)

    def asarray(self, a, dtype=None):
        tensor = self.xp.as_tensor(a, device=self.device)
        if dtype is not None:
            tensor = tensor.to(self._torch_dtype(dtype))
        return tensor

    def dot(self, a, b, out=None):
        return self.xp.mm(a, b, out=out)

    def batched_gemm(self, a3, b3, out3) -> None:
        if a3.dtype != out3.dtype:
            a3 = a3.to(out3.dtype)
        if b3.dtype != out3.dtype:
            b3 = b3.to(out3.dtype)
        for i in range(out3.shape[0]):
            self.xp.mm(a3[i], b3[i], out=out3[i])

    def tensordot(self, a, b, axes):
        return self.xp.tensordot(a, b, dims=(list(axes[0]), list(axes[1])))

    def einsum(self, a, sub_a, b, sub_b, sub_out, out=None):
        # torch.einsum lacks the interleaved integer-sublist form with
        # out=; hyper-index fallback steps are rare, so round-trip them
        # through the host einsum
        result = self.from_host(
            np.einsum(self.to_host(a), sub_a, self.to_host(b), sub_b, sub_out)
        )
        if out is None:
            return result
        out.copy_(result)
        return out

    def result_type(self, a, b):
        return self.xp.result_type(a, b)

    def dtype_key(self, dtype) -> str:
        return str(dtype)

    def size_of(self, a) -> int:
        return a.numel()

    def nbytes_of(self, a) -> int:
        return a.numel() * a.element_size()

    def owner_of(self, a):
        owner = a
        while getattr(owner, "_base", None) is not None:
            owner = owner._base
        return owner

    def to_host(self, a) -> np.ndarray:
        return a.detach().cpu().numpy()

    def from_host(self, a):
        host = np.ascontiguousarray(a)
        if not host.flags.writeable:
            # torch.from_numpy refuses (or warns on) read-only buffers
            # such as shared-memory views; stage through an owned copy
            host = host.copy()
        tensor = self.xp.from_numpy(host)
        if self.device != "cpu":  # pragma: no cover - needs a GPU
            tensor = tensor.to(self.device)
        return tensor


def resolve_array_module(
    module: Union[str, ArrayModule, None],
) -> ArrayModule:
    """Resolve an ``array_module=`` spec to a module instance.

    ``None`` and ``"numpy"`` yield the process-wide :data:`NUMPY_MODULE`
    singleton; ``"cupy"``/``"torch"`` construct the import-guarded
    modules (raising ``ImportError`` when the library is absent); an
    :class:`ArrayModule` instance passes through unchanged.
    """
    if module is None:
        return NUMPY_MODULE
    if isinstance(module, ArrayModule):
        return module
    if isinstance(module, str):
        if module == "numpy":
            return NUMPY_MODULE
        if module == "cupy":
            return CupyModule()
        if module == "torch":
            return TorchModule()
        raise ValueError(
            f"unknown array module {module!r}; expected 'numpy', 'cupy', "
            "'torch' or an ArrayModule instance"
        )
    raise TypeError(
        f"array_module must be a name or ArrayModule instance, got {module!r}"
    )
