"""Remote worker entrypoint for the distributed execution backend.

Run one of::

    python -m repro.execution.worker --connect HOST:PORT   # dial a coordinator
    python -m repro.execution.worker --listen HOST:PORT    # await coordinators
    python -m repro.execution.worker --mpi                 # MPI rank worker

``--connect`` is what :class:`~repro.execution.distributed.LocalSocketTransport`
spawns: the worker dials the coordinator's listener, sends a ``hello``
frame, then serves chunk frames until EOF or a ``shutdown`` frame.
``--listen`` inverts the direction for multi-node use: start one listener
per node, point the coordinator's
:class:`~repro.execution.distributed.SocketTransport` at the addresses;
the listener serves one coordinator at a time and re-accepts after each
session, so a long-lived node survives many runs.  ``--mpi`` serves the
same frames over ``mpi4py`` point-to-point messages from rank 0
(requires launching under ``mpiexec``).

The frame protocol is defined in :mod:`repro.execution.distributed`.  A
worker holds one plan generation and one data generation at a time; the
coordinator syncs a lagging worker right before its next chunk, so a
generation-mismatched chunk frame means lost sync and is answered with an
``error`` frame rather than a stale-state computation.

Faults: chunk exceptions are reported as ``("error", (chunk id,
repr(exc), traceback))`` frames — the worker survives and keeps serving.
An injected ``"drop-connection"`` directive severs the socket *before*
the generic :func:`~repro.execution.faultinject.apply_directive` handling
and exits, modelling a cut network link rather than a clean error reply.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
import traceback
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..tensornet.tensor import Tensor
from .backend import _LeafStore, _owned_contribution
from .checkpoint import payload_checksums
from .distributed import TransportClosed, TransportError, recv_frame, send_frame
from .faultinject import apply_directive, corrupt_payload
from .plan import CompiledPlan, PlanStats, StemSlots

__all__ = ["WorkerRuntime", "main", "serve"]


class WorkerRuntime:
    """Per-connection execution state: installed plan, data, arena."""

    def __init__(self) -> None:
        self.plan: Optional[CompiledPlan] = None
        self.sum_batch_axes = 0
        self.network: Optional[_LeafStore] = None
        self.cache: Optional[Dict[int, np.ndarray]] = None
        self.plan_generation = -1
        self.data_generation = -1
        self.slots = StemSlots()

    def install_plan(self, generation: int, blob: bytes) -> None:
        self.plan, self.sum_batch_axes = pickle.loads(blob)
        self.plan_generation = generation
        # payload layouts belong to a plan generation: a new plan
        # invalidates any installed data until the next data frame
        self.network = None
        self.cache = None
        self.data_generation = -1
        self.slots = StemSlots()
        if self.plan is not None and self.plan.tape_engine == "native":
            # JIT the tape kernel now so numba compilation lands in
            # bring-up, not in the first chunk's round-trip time
            from .tape import warm_kernel

            warm_kernel(getattr(self.plan, "dtype", None) or np.complex128)

    def install_data(self, generation: int, blob: bytes) -> None:
        leaves, cache = pickle.loads(blob)
        self.network = _LeafStore(
            {
                tid: Tensor(indices, data=array)
                for tid, (indices, array) in leaves.items()
            }
        )
        self.cache = cache
        self.data_generation = generation

    def run_chunk(
        self,
        chunk_id: int,
        plan_generation: int,
        data_generation: int,
        items: List[Tuple[int, Mapping[str, int]]],
    ) -> Tuple[List[np.ndarray], List[int], PlanStats]:
        if self.plan is None or plan_generation != self.plan_generation:
            raise RuntimeError(
                f"worker holds plan generation {self.plan_generation}, "
                f"chunk {chunk_id} needs {plan_generation}"
            )
        if self.network is None or data_generation != self.data_generation:
            raise RuntimeError(
                f"worker holds data generation {self.data_generation}, "
                f"chunk {chunk_id} needs {data_generation}"
            )
        local_stats = PlanStats()
        results: List[np.ndarray] = []
        for _, assignment in items:
            tensor = self.plan.execute(
                self.network,  # type: ignore[arg-type]
                assignment,
                cache=self.cache,
                stats=local_stats,
                slots=self.slots,
            )
            results.append(_owned_contribution(tensor, self.sum_batch_axes))
        # per-contribution CRC-32s travel with the results so the
        # coordinator can verify the payload survived the wire intact
        # (see repro.execution.checkpoint.verify_payload)
        return results, payload_checksums(results), local_stats


def serve(sock: socket.socket) -> None:
    """Serve one coordinator connection until EOF or shutdown."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    runtime = WorkerRuntime()
    send_frame(sock, ("hello", os.getpid()))
    while True:
        try:
            message, _ = recv_frame(sock)
        except TransportClosed:
            return  # coordinator is gone; nothing left to serve
        kind, payload = message
        if kind == "shutdown":
            return
        if kind == "plan":
            runtime.install_plan(*payload)
        elif kind == "data":
            runtime.install_data(*payload)
        elif kind == "chunk":
            chunk_id, plan_generation, data_generation, items, directive = payload
            if directive is not None and directive[0] == "drop-connection":
                # model a cut link, not a clean error reply: sever the
                # socket first so the coordinator sees EOF mid-chunk,
                # then die the way a partitioned node does
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:  # pragma: no cover - already severed
                    pass
                sock.close()
                os._exit(1)
            try:
                apply_directive(directive)
                results, checksums, local_stats = runtime.run_chunk(
                    chunk_id, plan_generation, data_generation, items
                )
                # injected payload corruption happens after checksumming,
                # so the coordinator's verification must catch it
                corrupt_payload(directive, results)
            except Exception as exc:
                # the original exception class may not unpickle on the
                # coordinator — ship repr + traceback text instead
                reply = ("error", (chunk_id, repr(exc), traceback.format_exc()))
            else:
                reply = ("result", (chunk_id, results, checksums, local_stats))
            try:
                send_frame(sock, reply)
            except TransportClosed:
                # the coordinator gave up on us (e.g. chunk timeout severed
                # the link); exit quietly instead of crashing with noise
                return
        else:
            raise TransportError(f"unexpected frame kind {kind!r} from coordinator")


def _parse_host_port(spec: str) -> Tuple[str, int]:
    host, _, port = spec.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"bad address {spec!r} (expected HOST:PORT)")
    return host, int(port)


def _serve_connect(address: str) -> None:
    host, port = _parse_host_port(address)
    with socket.create_connection((host, port)) as sock:
        serve(sock)


def _serve_listen(address: str) -> None:
    host, port = _parse_host_port(address)
    with socket.create_server((host, port)) as listener:
        bound_host, bound_port = listener.getsockname()[:2]
        # announce the concrete endpoint (port 0 binds ephemerally) so
        # spawning harnesses can scrape it from stdout
        print(f"LISTENING {bound_host} {bound_port}", flush=True)
        while True:
            conn, _ = listener.accept()
            with conn:
                serve(conn)


def _serve_mpi() -> None:  # pragma: no cover - requires an MPI stack
    try:
        from mpi4py import MPI
    except ImportError:
        raise SystemExit(
            "--mpi requires mpi4py, which is not installed; "
            "use --connect/--listen with the socket transport instead"
        )
    from .distributed import MpiTransport

    comm = MPI.COMM_WORLD
    if comm.Get_rank() == 0:
        raise SystemExit("rank 0 is the coordinator; workers are ranks >= 1")
    tag = MpiTransport._FRAME_TAG
    runtime = WorkerRuntime()
    comm.send(("hello", os.getpid()), dest=0, tag=tag)
    while True:
        kind, payload = comm.recv(source=0, tag=tag)
        if kind == "shutdown":
            return
        if kind == "plan":
            runtime.install_plan(*payload)
        elif kind == "data":
            runtime.install_data(*payload)
        elif kind == "chunk":
            chunk_id, plan_generation, data_generation, items, directive = payload
            try:
                apply_directive(directive)
                results, checksums, local_stats = runtime.run_chunk(
                    chunk_id, plan_generation, data_generation, items
                )
                corrupt_payload(directive, results)
            except Exception as exc:
                comm.send(
                    ("error", (chunk_id, repr(exc), traceback.format_exc())),
                    dest=0,
                    tag=tag,
                )
            else:
                comm.send(
                    ("result", (chunk_id, results, checksums, local_stats)),
                    dest=0,
                    tag=tag,
                )


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.execution.worker",
        description="Distributed execution worker (see repro.execution.distributed).",
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--connect", metavar="HOST:PORT", help="dial a coordinator's listener"
    )
    group.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="await coordinator connections (port 0 binds ephemerally; the "
        "bound endpoint is printed as 'LISTENING HOST PORT')",
    )
    group.add_argument(
        "--mpi", action="store_true", help="serve as an MPI rank worker (mpi4py)"
    )
    ns = parser.parse_args(argv)
    if ns.connect:
        _serve_connect(ns.connect)
    elif ns.listen:
        _serve_listen(ns.listen)
    else:
        _serve_mpi()  # pragma: no cover - requires an MPI stack


if __name__ == "__main__":
    main(sys.argv[1:])
