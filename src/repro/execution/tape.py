"""Native-speed fused tape: the §5 sub-path schedule without Python.

The fused executor (:mod:`repro.execution.fusion` +
:meth:`~repro.execution.plan.CompiledPlan.execute`) removed the
per-step allocations from the hot path, but every tape entry still
round-trips through the Python interpreter — tuple unpacking, attribute
lookups, numpy wrapper calls — which at circuit-simulation tensor sizes
costs a sizable fraction of each GEMM.  This module removes that last
layer: the fused execution sequence is **lowered** once, at plan-compile
time, into a flat array-of-structs :class:`TapeProgram` — an opcode
table plus integer operand/register/axis arrays and one preallocated
scratch arena — that a numba-``@njit`` kernel walks with zero per-step
Python.

This is the CPU analogue of the paper's §5.3.1 *thread-level* fused
kernel (modelled analytically by
:class:`~repro.execution.fused.ThreadLevelSimulator` in
:mod:`repro.execution.fused`): where the Sunway kernel streams sub-path
steps through the 64 CPEs' LDM with reduced permutation maps resident,
the tape program streams them through a compiled loop with the same
§5.3.1 reduced core maps baked into one concatenated index table.  Every
operand permutation — including the Python walker's strided-``copyto``
cases — lowers to the recursion-formula gather
``dst[(p·C + c)·S + s] = src[(p·C + map[c])·S + s]``, which a compiled
loop executes efficiently at any suffix size, so one op shape serves all
permutations.  Batched (``bmm``) steps lower to a batched-GEMM op whose
leading batch axis sits in the permutation's fixed prefix (see
:meth:`~repro.core.permutation_map.PermutationSpec.with_leading_batch`),
so the stored maps stay batch-invariant.

Engine contract
---------------
* **Import-guarded**: numba (and scipy, whose ``cython_blas`` numba's
  ``np.dot`` lowering requires) are *optional*.  Without them
  :func:`native_available` is ``False``, plans compiled with
  ``tape_engine="auto"`` carry no program, and explicitly requested
  native plans fall back — bit-identically — to the Python walker at
  execution time.
* **Picklable**: a :class:`TapeProgram` is plain ndarrays and tuples, so
  fused plans ship to pool workers unchanged; the JIT kernel itself is
  process-local and compiles lazily on first use in each worker
  (:func:`warm_kernel` lets the pool pay that at spawn instead of on the
  first chunk).
* **Bit-identical**: the kernel performs exactly the loads, gathers and
  BLAS GEMMs of the Python walker, in the same order, on the same
  operand layouts.  :func:`interpret_program` is the pure-numpy
  executable specification of the kernel's semantics; the equivalence
  tests pin both against the stepwise oracle.
* **Self-disarming**: any kernel failure poisons the engine for the
  process (:func:`run_native` returns ``False`` forever after), so a
  broken JIT environment degrades to the Python walker instead of
  failing runs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..core.permutation_map import PermutationSpec, ReducedPermutationMap
from .fusion import TAPE_COPY, TAPE_GATHER, TAPE_VIEW, FusedRun

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .plan import PlanStats, StemSlots

__all__ = [
    "TapeProgram",
    "interpret_program",
    "lower_entries",
    "native_available",
    "run_native",
    "warm_kernel",
]


#: Opcodes of the lowered program.
OP_DOT, OP_BMM = 0, 1

#: Scratch keys in the :class:`~repro.execution.plan.StemSlots` arena for
#: the kernel's permutation staging (kept separate from the Python
#: walker's keys so a runtime fallback never churns buffer generations).
SCRATCH_TAPE_LHS = "tape-lhs"
SCRATCH_TAPE_RHS = "tape-rhs"

#: Dtypes numba's BLAS-backed ``np.dot`` supports; anything else runs the
#: Python walker.
_NATIVE_DTYPES = frozenset(("float32", "float64", "complex64", "complex128"))


# ----------------------------------------------------------------------
# Optional numba import + kernel definition
# ----------------------------------------------------------------------
try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
    from scipy.linalg import cython_blas as _cython_blas  # noqa: F401

    _HAVE_NUMBA = True
except Exception:  # pragma: no cover - the numba-free default environment
    _numba = None
    _HAVE_NUMBA = False

#: Set on the first kernel failure: the engine disarms itself for the
#: rest of the process and every fused execution uses the Python walker.
_BROKEN = False


def native_available() -> bool:
    """Whether the native tape engine can run in this process."""
    return _HAVE_NUMBA and not _BROKEN


if _HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @_numba.njit(cache=True, nogil=True, inline="always")
    def _gather(src, dst, prefix, core, suffix, maps, offset):  # pragma: no cover
        # the §5.3.1 recursion formula as a compiled loop:
        #   dst[(p*C + c)*S + s] = src[(p*C + map[c])*S + s]
        for p in range(prefix):
            base = p * core * suffix
            for c in range(core):
                src_off = base + maps[offset + c] * suffix
                dst_off = base + c * suffix
                for s in range(suffix):
                    dst[dst_off + s] = src[src_off + s]

    @_numba.njit(cache=True, nogil=True)
    def _walk(
        ops, dims, lhs_perm, rhs_perm, core_maps, regs, scratch_a, scratch_b
    ):  # pragma: no cover
        for i in range(ops.shape[0]):
            w = dims[i, 0]
            m = dims[i, 1]
            k = dims[i, 2]
            n = dims[i, 3]
            a = regs[ops[i, 1]]
            b = regs[ops[i, 2]]
            if lhs_perm[i, 0] == 1:
                _gather(
                    a,
                    scratch_a,
                    lhs_perm[i, 1],
                    lhs_perm[i, 2],
                    lhs_perm[i, 3],
                    core_maps,
                    lhs_perm[i, 4],
                )
                a = scratch_a
            if rhs_perm[i, 0] == 1:
                _gather(
                    b,
                    scratch_b,
                    rhs_perm[i, 1],
                    rhs_perm[i, 2],
                    rhs_perm[i, 3],
                    core_maps,
                    rhs_perm[i, 4],
                )
                b = scratch_b
            if ops[i, 0] == 0:
                a2 = a[: m * k].reshape(m, k)
                b2 = b[: k * n].reshape(k, n)
                out = np.dot(a2, b2)
                regs[ops[i, 3]] = out.reshape(m * n)
            else:
                a3 = a[: w * m * k].reshape(w, m, k)
                b3 = b[: w * k * n].reshape(w, k, n)
                out = np.empty(w * m * n, a.dtype)
                out3 = out.reshape(w, m, n)
                for bi in range(w):
                    out3[bi] = np.dot(a3[bi], b3[bi])
                regs[ops[i, 3]] = out


# ----------------------------------------------------------------------
# The lowered program
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TapeProgram:
    """A fused execution sequence lowered to array-of-structs form.

    All step state lives in parallel int64 tables (one row per GEMM), so
    the kernel's walk touches no Python objects:

    * ``ops[i] = (opcode, lhs_reg, rhs_reg, out_reg)`` — ``OP_DOT`` or
      ``OP_BMM`` over a flat *register file* of 1-D buffers;
    * ``dims[i] = (w, m, k, n)`` — GEMM extents (``w = 1`` for ``dot``);
    * ``lhs_perm[i]`` / ``rhs_perm[i]`` =
      ``(mode, prefix, core, suffix, map_offset)`` — ``mode 0`` passes
      the register through (identity permutation), ``mode 1`` runs the
      reduced-map gather whose core map lives at ``map_offset`` in the
      shared ``core_maps`` table;
    * ``core_maps`` — every step's §5.3.1 reduced core map, concatenated.

    ``inputs`` names the ``(node, register)`` pairs the shim loads from
    the executor's ``live`` table before the walk; ``nodes`` are the tree
    nodes the program computes (for stats parity with the Python walker);
    ``root``/``root_reg``/``root_shape`` locate and shape the result.
    ``scratch_lhs``/``scratch_rhs`` size the two staging buffers
    (elements), and the ``*_steps`` counters mirror the Python walker's
    ``slot_writes``/``branch_writes``/``fused_steps`` accounting.

    Instances contain only ndarrays and tuples: they pickle to pool
    workers with the plan, and each process JIT-compiles the kernel
    lazily on first use.
    """

    ops: np.ndarray
    dims: np.ndarray
    lhs_perm: np.ndarray
    rhs_perm: np.ndarray
    core_maps: np.ndarray
    num_regs: int
    inputs: Tuple[Tuple[int, int], ...]
    nodes: Tuple[int, ...]
    root: int
    root_reg: int
    root_shape: Tuple[int, ...]
    scratch_lhs: int
    scratch_rhs: int
    slot_steps: int
    branch_steps: int
    fused_steps: int

    @property
    def num_steps(self) -> int:
        """Number of GEMMs in the program."""
        return int(self.ops.shape[0])


class _Lowering:
    """Builder state for one :func:`lower_entries` pass."""

    def __init__(self) -> None:
        self.rows: List[Tuple[int, int, int, int]] = []
        self.dims: List[Tuple[int, int, int, int]] = []
        self.lhs_perm: List[Tuple[int, int, int, int, int]] = []
        self.rhs_perm: List[Tuple[int, int, int, int, int]] = []
        self.map_parts: List[np.ndarray] = []
        self.map_offset = 0
        self.reg_of: Dict[int, int] = {}
        self.free_regs: List[int] = []
        self.next_reg = 0
        self.inputs: List[Tuple[int, int]] = []
        self.nodes: List[int] = []
        self.scratch_lhs = 0
        self.scratch_rhs = 0
        self.slot_steps = 0
        self.branch_steps = 0
        self.fused_steps = 0

    def alloc(self) -> int:
        if self.free_regs:
            return self.free_regs.pop()
        reg = self.next_reg
        self.next_reg += 1
        return reg

    def operand_reg(self, node: int) -> int:
        reg = self.reg_of.get(node)
        if reg is None:
            # read but never produced by the sequence: an input (leaf
            # slice or cached frontier intermediate).  Inputs are all
            # loaded before the walk starts, so their registers must be
            # fresh — a recycled register could be written by a step
            # that runs before this operand's first read, clobbering
            # the preloaded value.  Once freed (after its last read) the
            # register joins the pool for later *outputs*, which is safe.
            reg = self.next_reg
            self.next_reg += 1
            self.reg_of[node] = reg
            self.inputs.append((node, reg))
        return reg

    def free_node(self, node: int) -> None:
        reg = self.reg_of.pop(node, None)
        if reg is not None:
            self.free_regs.append(reg)

    def perm_descriptor(self, kernel_tape: Tuple) -> Tuple[int, int, int, int, int]:
        """Lower one flattened perm kernel to ``(mode, P, C, S, offset)``.

        Identity permutations stay mode 0.  Both the walker's gather and
        copy strategies become the reduced-map gather: the gather tape
        already carries ``(P, C, S)`` and the core map, the copy tape
        carries ``(perm, target_shape)`` from which the source shape —
        and hence the same reduced map the gather would use — is
        reconstructed.  A compiled loop has no minimum-suffix economics
        (the walker's ``GATHER_MIN_SUFFIX`` exists because ``np.take``
        on near-scalar rows loses to numpy's strided copy), so one op
        shape serves every permutation.
        """
        mode, p1, p2, _ = kernel_tape
        if mode == TAPE_VIEW:
            return (0, 1, 1, 1, 0)
        if mode == TAPE_GATHER:
            prefix, core, suffix = p1
            core_map = p2
        else:
            assert mode == TAPE_COPY
            perm, target_shape = p1, p2
            source_shape = [0] * len(perm)
            for position, axis in enumerate(perm):
                source_shape[axis] = target_shape[position]
            reduced = ReducedPermutationMap(
                PermutationSpec(perm=tuple(perm), shape=tuple(source_shape))
            )
            prefix = reduced.prefix_size
            core = reduced.core_size
            suffix = reduced.suffix_size
            core_map = reduced.core_map
        offset = self.map_offset
        self.map_parts.append(np.asarray(core_map, dtype=np.int64))
        self.map_offset += int(core_map.size)
        return (1, int(prefix), int(core), int(suffix), offset)

    def emit(
        self,
        node: int,
        lhs: int,
        rhs: int,
        lhs_kernel: Tuple,
        rhs_kernel: Tuple,
        is_bmm: bool,
    ) -> None:
        lhs_out = lhs_kernel[3]
        rhs_out = rhs_kernel[3]
        if is_bmm:
            w, m, k = lhs_out
            n = rhs_out[2]
        else:
            w = 1
            m, k = lhs_out
            n = rhs_out[1]
        lhs_reg = self.operand_reg(lhs)
        rhs_reg = self.operand_reg(rhs)
        lhs_desc = self.perm_descriptor(lhs_kernel)
        rhs_desc = self.perm_descriptor(rhs_kernel)
        if lhs_desc[0] == 1:
            self.scratch_lhs = max(self.scratch_lhs, w * m * k)
        if rhs_desc[0] == 1:
            self.scratch_rhs = max(self.scratch_rhs, w * k * n)
        out_reg = self.alloc()
        self.rows.append((OP_BMM if is_bmm else OP_DOT, lhs_reg, rhs_reg, out_reg))
        self.dims.append((w, m, k, n))
        self.lhs_perm.append(lhs_desc)
        self.rhs_perm.append(rhs_desc)
        self.reg_of[node] = out_reg
        self.nodes.append(node)


def lower_entries(
    entries: Optional[Tuple[object, ...]],
    root: int,
    cached: bool,
) -> Optional[TapeProgram]:
    """Lower one fused execution sequence into a :class:`TapeProgram`.

    ``entries`` is a :meth:`CompiledPlan._interleave` sequence: inline
    tape tuples, :class:`~repro.execution.fusion.FusedRun` objects, and
    (for hyper-index einsum fallbacks) plain ``ContractStep`` objects.
    Einsum steps have no GEMM form, so a sequence containing one cannot
    be lowered — the function returns ``None`` and the plan keeps the
    Python walker.  ``cached`` selects which free schedule drives
    register recycling (it must match the sequence being lowered).
    """
    if not entries:
        return None
    state = _Lowering()
    for entry in entries:
        kind = type(entry)
        if kind is tuple:
            (
                node,
                lhs,
                rhs,
                lhs_kernel,
                rhs_kernel,
                slot,
                _dims,
                _out_shape,
                is_root,
                free_full,
                free_cached,
                is_bmm,
            ) = entry
            state.emit(node, lhs, rhs, lhs_kernel, rhs_kernel, is_bmm)
            if slot is not None:
                state.slot_steps += 1
            elif not is_root:
                state.branch_steps += 1
            for child in free_cached if cached else free_full:
                state.free_node(child)
        elif kind is FusedRun:
            free_lists = (
                entry.tape_free_cached if cached else entry.tape_free_full
            )
            previous: Optional[int] = None
            for tape_entry, frees in zip(entry.tape, free_lists):
                (
                    node,
                    lhs,
                    rhs,
                    _stem_on_lhs,
                    lhs_kernel,
                    rhs_kernel,
                    _slot,
                    _dims,
                    _out_shape,
                    is_bmm,
                ) = tape_entry
                state.emit(node, lhs, rhs, lhs_kernel, rhs_kernel, is_bmm)
                state.slot_steps += 1
                state.fused_steps += 1
                for child in frees:
                    state.free_node(child)
                if previous is not None:
                    # the interior stem intermediate was consumed by this
                    # op; the plan's free lists never mention it because
                    # the Python walker keeps it out of ``live``
                    state.free_node(previous)
                previous = node
        else:
            return None  # einsum fallback step: no GEMM form to lower
    root_reg = state.reg_of.get(root)
    if root_reg is None:
        return None
    # the root's logical shape: its producing entry's reshape (or raw
    # GEMM dims when no reshape was needed)
    root_shape: Optional[Tuple[int, ...]] = None
    for entry in entries:
        if type(entry) is tuple and entry[0] == root:
            root_shape = entry[7] if entry[7] is not None else entry[6]
        elif type(entry) is FusedRun:
            for tape_entry in entry.tape:
                if tape_entry[0] == root:
                    root_shape = (
                        tape_entry[8] if tape_entry[8] is not None else tape_entry[7]
                    )
    if root_shape is None:
        return None
    return TapeProgram(
        ops=np.asarray(state.rows, dtype=np.int64),
        dims=np.asarray(state.dims, dtype=np.int64),
        lhs_perm=np.asarray(state.lhs_perm, dtype=np.int64),
        rhs_perm=np.asarray(state.rhs_perm, dtype=np.int64),
        core_maps=(
            np.concatenate(state.map_parts)
            if state.map_parts
            else np.empty(0, dtype=np.int64)
        ),
        num_regs=state.next_reg,
        inputs=tuple(state.inputs),
        nodes=tuple(state.nodes),
        root=root,
        root_reg=root_reg,
        root_shape=tuple(root_shape),
        scratch_lhs=state.scratch_lhs,
        scratch_rhs=state.scratch_rhs,
        slot_steps=state.slot_steps,
        branch_steps=state.branch_steps,
        fused_steps=state.fused_steps,
    )


# ----------------------------------------------------------------------
# Reference interpreter (the kernel's executable specification)
# ----------------------------------------------------------------------
def _stage_reference(
    flat: np.ndarray, descriptor: np.ndarray, core_maps: np.ndarray
) -> np.ndarray:
    mode, prefix, core, suffix = (
        int(descriptor[0]),
        int(descriptor[1]),
        int(descriptor[2]),
        int(descriptor[3]),
    )
    if mode == 0:
        return flat
    core_map = core_maps[int(descriptor[4]) : int(descriptor[4]) + core]
    source = flat[: prefix * core * suffix].reshape(prefix, core, suffix)
    return np.take(source, core_map, axis=1).reshape(-1)


def interpret_program(
    program: TapeProgram,
    inputs: Mapping[int, np.ndarray],
    dtype: Optional[np.dtype] = None,
) -> np.ndarray:
    """Execute a lowered program in pure numpy (the kernel's reference).

    Semantically identical, op for op, to the njit ``_walk`` kernel —
    same register file, same reduced-map gathers, same per-batch-slice
    ``np.dot`` calls — so the numba-free test environment can pin the
    lowering against the stepwise oracle, and CI (with numba installed)
    pins the kernel against *this*.  Returns the root array, reshaped.
    """
    if dtype is None:
        dtype = np.result_type(*(inputs[node] for node, _ in program.inputs))
    regs: List[Optional[np.ndarray]] = [None] * program.num_regs
    for node, reg in program.inputs:
        regs[reg] = np.ascontiguousarray(inputs[node], dtype=dtype).reshape(-1)
    for i in range(program.num_steps):
        opcode, lhs_reg, rhs_reg, out_reg = (int(v) for v in program.ops[i])
        w, m, k, n = (int(v) for v in program.dims[i])
        a = _stage_reference(regs[lhs_reg], program.lhs_perm[i], program.core_maps)
        b = _stage_reference(regs[rhs_reg], program.rhs_perm[i], program.core_maps)
        if opcode == OP_DOT:
            out = np.dot(a[: m * k].reshape(m, k), b[: k * n].reshape(k, n))
            regs[out_reg] = out.reshape(m * n)
        else:
            a3 = a[: w * m * k].reshape(w, m, k)
            b3 = b[: w * k * n].reshape(w, k, n)
            out3 = np.empty((w, m, n), dtype=a3.dtype)
            for bi in range(w):
                out3[bi] = np.dot(a3[bi], b3[bi])
            regs[out_reg] = out3.reshape(-1)
    return regs[program.root_reg].reshape(program.root_shape)


# ----------------------------------------------------------------------
# Native execution
# ----------------------------------------------------------------------
def _mark_broken() -> None:
    global _BROKEN
    _BROKEN = True


def run_native(
    program: TapeProgram,
    live: Dict[int, np.ndarray],
    slots: "StemSlots",
    stats: Optional["PlanStats"],
) -> bool:
    """Run one lowered program through the njit kernel.

    Returns ``True`` on success (``live[root]`` holds the result and the
    stats mirror the Python walker's accounting exactly); ``False`` when
    the native path cannot or should not run — numba absent, a prior
    kernel failure, mixed or unsupported operand dtypes — in which case
    ``live`` is untouched and the caller falls back to the Python
    walker.  A kernel exception disarms the engine for the process.
    """
    if _BROKEN or not _HAVE_NUMBA:
        return False
    first = live[program.inputs[0][0]]
    dtype = first.dtype
    if dtype.name not in _NATIVE_DTYPES:
        return False
    for node, _ in program.inputs:
        if live[node].dtype != dtype:
            return False  # mixed dtypes: per-step result_type applies
    try:
        from numba.typed import List as NumbaList

        placeholder = np.empty(0, dtype=dtype)
        arrays: List[np.ndarray] = [placeholder] * program.num_regs
        for node, reg in program.inputs:
            flat = np.ascontiguousarray(live[node]).reshape(-1)
            if not flat.flags.writeable:
                # the register file is a single typed list: read-only
                # views (e.g. memory-mapped leaves) would change its
                # element type, so copy them out
                flat = flat.copy()
            arrays[reg] = flat
        regs = NumbaList()
        for array in arrays:
            regs.append(array)
        scratch_a = slots.scratch(
            SCRATCH_TAPE_LHS, (max(program.scratch_lhs, 1),), dtype
        )
        scratch_b = slots.scratch(
            SCRATCH_TAPE_RHS, (max(program.scratch_rhs, 1),), dtype
        )
        start = time.perf_counter() if stats is not None else 0.0
        _walk(
            program.ops,
            program.dims,
            program.lhs_perm,
            program.rhs_perm,
            program.core_maps,
            regs,
            scratch_a,
            scratch_b,
        )
        live[program.root] = np.asarray(regs[program.root_reg]).reshape(
            program.root_shape
        )
    except Exception:
        _mark_broken()
        return False
    if stats is not None:
        stats.tape_engine = "native"
        counts = stats.node_counts
        for node in program.nodes:
            counts[node] = counts.get(node, 0) + 1
        stats.slot_writes += program.slot_steps
        stats.branch_writes += program.branch_steps
        stats.fused_steps += program.fused_steps
        stats.record_stage("fused_kernel", time.perf_counter() - start)
    return True


def warm_kernel(dtype: np.dtype = np.complex128) -> bool:
    """JIT-compile the kernel for ``dtype`` by running a 1×1 program.

    Pool workers call this at spawn (see ``execution/backend.py``) so
    the one-time numba compilation cost lands in worker start-up rather
    than the first chunk's latency.  Returns whether the kernel is
    usable; failures disarm the engine exactly like a runtime failure.
    """
    if _BROKEN or not _HAVE_NUMBA:
        return False
    try:
        from numba.typed import List as NumbaList

        dtype = np.dtype(dtype)
        regs = NumbaList()
        regs.append(np.ones(1, dtype=dtype))
        regs.append(np.ones(1, dtype=dtype))
        regs.append(np.empty(0, dtype=dtype))
        _walk(
            np.asarray([[OP_DOT, 0, 1, 2]], dtype=np.int64),
            np.asarray([[1, 1, 1, 1]], dtype=np.int64),
            np.asarray([[0, 1, 1, 1, 0]], dtype=np.int64),
            np.asarray([[0, 1, 1, 1, 0]], dtype=np.int64),
            np.empty(0, dtype=np.int64),
            regs,
            np.empty(1, dtype=dtype),
            np.empty(1, dtype=dtype),
        )
    except Exception:
        _mark_broken()
        return False
    return True
