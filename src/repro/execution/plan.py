"""Compiled contraction plans: plan once, execute ``prod w(e)`` times.

The sliced execution model of the paper runs the *same* contraction tree for
every subtask — only the values assigned to the sliced indices change.  The
reference executor (:class:`~repro.execution.contract.TreeExecutor`'s einsum
walker) rebuilds einsum spec strings, re-slices every leaf and re-contracts
the entire tree for each subtask; all of that work is slice-invariant and
can be hoisted out of the subtask loop.  This module performs that hoisting:

* :func:`compile_plan` turns a (network, tree, slicing set) triple into a
  :class:`CompiledPlan` — per-leaf slicing instructions plus one
  :class:`ContractStep` per internal tree node holding precomputed
  ``tensordot`` axis pairs (or, for the rare hyper-index cases, a
  precompiled einsum spec) and the output index order.  Nothing about the
  plan depends on the *values* assigned to the sliced indices, so one plan
  serves every subtask.
* The compiler classifies every tree node as *slice-dependent* or
  *slice-invariant* using :func:`repro.core.lifetime.slice_dependent_nodes`:
  a node is invariant exactly when no sliced edge's lifetime reaches a leaf
  of its subtree, so it produces the identical intermediate in every
  subtask.  The plan derives from this a free/reuse schedule: dependent
  intermediates are freed as soon as their parent consumes them, while the
  maximal invariant subtrees (the *frontier*) are computed once by
  :meth:`CompiledPlan.warm_cache` and reused across all subtasks.
* An optional *batched* mode keeps a group of sliced indices alive as
  leading batch axes instead of enumerating them: steps where every live
  batch axis appears on both operands compile to a BLAS batched matmul
  (``transpose → reshape → matmul → reshape``) whose single leading batch
  axis has size ``prod w(e)`` over the group, so all of the group's value
  combinations are swept in one batched contraction.
* The compiler derives a *slot schedule* from the stem (the most expensive
  root-to-leaf chain, :func:`repro.core.stem.extract_stem`): the stem's
  running tensor alternates between the two preallocated buffers of a
  :class:`StemSlots` arena instead of allocating a fresh output per step.
  Because each stem intermediate is consumed by exactly the next stem step,
  two slots suffice, and the free/reuse schedule guarantees a slot is never
  overwritten while its previous content is still live.  Slot execution is
  bit-identical to the allocating path (same transpose/reshape/GEMM, just
  written into a caller-owned buffer).

* An optional *fused* mode (``compile_plan(..., fused=True)``) runs the
  §5 secondary-slicing schedule for real: a fusion pass
  (:mod:`repro.execution.fusion`) groups consecutive stem GEMMs into
  :class:`~repro.execution.fusion.FusedRun` sub-paths whose operand
  permutations are precompiled through the §5.3.1 reduced maps — identity
  permutations are skipped outright, every other one is a single gather
  into arena scratch — so within a run the stem tensor never round-trips
  through a freshly allocated ``transpose → reshape`` copy.  Fused
  execution is bit-identical to the step-by-step path.

:class:`PlanStats` instruments execution with per-node step counters; the
benchmark and the equivalence tests use it to assert that the cached path
performs each slice-invariant contraction exactly once.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from ..core.lifetime import slice_dependent_nodes
from ..core.stem import stem_slot_schedule
from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .array_module import (
    NUMPY_MODULE,
    ArrayModule,
    resolve_array_module,
)
from .array_module import numpy_batched_gemm as _batched_gemm
from .fusion import (
    SCRATCH_LHS,
    SCRATCH_RHS,
    FusedRun,
    compile_fused_runs,
    compile_step_tapes,
)

__all__ = [
    "CompiledPlan",
    "ContractStep",
    "LeafStep",
    "PlanError",
    "PlanStats",
    "StemSlots",
    "compile_plan",
]


class PlanError(ValueError):
    """Raised when a plan cannot be compiled or is executed inconsistently."""


#: In-memory cap on retained per-subtask timing samples.  Aggregates
#: (sum, count) stay exact beyond it; only the raw sample list is bounded,
#: so stats stay O(1) per worker chunk and per long-running session.
MAX_TIMING_SAMPLES = 256


@dataclass
class PlanStats:
    """Execution counters for a :class:`CompiledPlan`.

    Attributes
    ----------
    node_counts:
        How many times the contraction at each internal node actually ran.
        On the cached path every slice-invariant node must stay at 1 no
        matter how many subtasks execute — the benchmark asserts this.
    cache_hits:
        Number of operand fetches served from the invariant cache.
    executions:
        Number of ``execute`` calls (subtasks, or batched sweeps).
    slot_writes:
        Number of step outputs written into a reused stem slot instead of a
        freshly allocated buffer.
    branch_writes:
        Number of step outputs written into a recycled branch buffer from
        the size-bucketed free list.
    fused_steps:
        Number of GEMMs executed inside fused runs (stem sub-paths whose
        intermediates never left the arena's slots and scratch); their
        wall time accumulates under the ``"fused_kernel"`` stage of
        :attr:`stage_seconds` so calibration can see the fused kernels.
    tape_engine:
        Which tape interpreter actually executed the fused sequences:
        ``"native"`` (the numba-compiled :mod:`repro.execution.tape`
        kernel), ``"python"`` (the inlined Python walker), or ``None``
        when no fused sequence ran.  A plan compiled for the native
        engine stamps ``"python"`` here if the kernel was unavailable or
        failed at runtime, so the fallback is observable, and the
        calibration layer keys per-engine coefficients off this field.
    array_module:
        Name of the :class:`~repro.execution.array_module.ArrayModule`
        the kernels executed on (``"numpy"``, ``"torch"``, ``"cupy"``,
        ...), or ``None`` before any ``execute`` call.  The calibration
        layer keys per-module coefficients off this field (the third
        component of ``"backend+engine+module"`` keys), which is how
        host↔device staging time — spent inside the timed per-subtask
        window — gets priced per substrate.
    fusion_breaks:
        Compile-time diagnostics from the fusion pass: why stem steps
        stayed *outside* fused runs, as a ``reason -> count`` dict (see
        :func:`repro.execution.fusion.compile_fused_runs`).  Stamped once
        per compiled plan — ``merge`` keeps the first non-empty dict
        instead of summing, since every worker reports the same plan.
    subtask_seconds:
        Wall-time samples of ``execute`` calls (cache warming excluded) —
        the measured per-subtask samples the calibrated cost model fits.
        Bounded at :data:`MAX_TIMING_SAMPLES`; ``subtask_seconds_sum`` /
        ``timed_subtasks`` keep the exact aggregates beyond the cap.
        Sample order across pool workers is completion order, which is
        fine: the fit treats them as an unordered sample.
    subtask_seconds_sum:
        Exact total of every timed ``execute`` call (uncapped).
    timed_subtasks:
        Exact count of timed ``execute`` calls (uncapped).
    stage_seconds:
        Accumulated wall time per execution stage (``"warm_cache"``,
        ``"execute"``).
    retries:
        Chunk re-submissions performed by the resilience layer (see
        :mod:`repro.execution.resilience`): every time a failed chunk was
        queued again — on the rebuilt pool or the same one — this counts
        one.  Zero on a fault-free run.
    faults:
        Failure events observed: worker deaths (``BrokenProcessPool``),
        chunk timeouts, and chunk exceptions, one count each.
    degraded_to:
        Name of the substrate a degrading run fell back to (``"threads"``
        or ``"serial"``), ``None`` when the primary backend completed the
        run itself.
    recovery_seconds:
        Wall time spent inside recovery actions — pool rebuilds, segment
        republication, retry backoff — excluded from the per-subtask
        timing samples so calibration never fits fault overhead.
    comms_seconds:
        Wall time of chunk round-trips *not* covered by the workers' own
        per-subtask compute samples — serialization, transfer, dispatch
        — as measured by the distributed coordinator.  Zero on the
        in-process backends.  The calibrated cost model turns this into
        a per-subtask communication term.
    comms_bytes:
        Steady-state bytes shipped for chunks (chunk frames out plus
        result frames back).  One-time broadcast payloads are *not*
        counted here — they are session state, not per-chunk cost — the
        session tracks them separately (``broadcast_bytes``).
    chunk_roundtrips:
        Number of completed coordinator→worker→coordinator chunk
        round-trips the comms aggregates cover.
    checkpointed_slots:
        Ordered slots write-ahead-recorded into a durable chunk ledger
        (:mod:`repro.execution.checkpoint`) during this run.  Zero when
        no checkpoint is armed.
    resumed_slots:
        Ordered slots pre-filled from a ledger persisted by a previous
        (interrupted) run instead of being re-executed.  The resilience
        counters (``retries``/``faults``/``recovery_seconds``) of those
        previous runs are merged in alongside, so a resumed run reports
        the cumulative job, not just its own restart.
    """

    node_counts: Dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    executions: int = 0
    #: ``execute`` calls of a *batched* plan — each such timing sample
    #: covers a whole sweep of subtasks, so stats containing any are
    #: rejected as per-subtask calibration input.
    batched_executions: int = 0
    slot_writes: int = 0
    branch_writes: int = 0
    fused_steps: int = 0
    tape_engine: Optional[str] = None
    array_module: Optional[str] = None
    fusion_breaks: Dict[str, int] = field(default_factory=dict)
    subtask_seconds: List[float] = field(default_factory=list)
    subtask_seconds_sum: float = 0.0
    timed_subtasks: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    retries: int = 0
    faults: int = 0
    degraded_to: Optional[str] = None
    recovery_seconds: float = 0.0
    comms_seconds: float = 0.0
    comms_bytes: int = 0
    chunk_roundtrips: int = 0
    checkpointed_slots: int = 0
    resumed_slots: int = 0

    def record_step(self, node: int) -> None:
        self.node_counts[node] = self.node_counts.get(node, 0) + 1

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds

    def record_subtask_time(self, seconds: float) -> None:
        """Record one ``execute`` wall time (sample list bounded)."""
        self.subtask_seconds_sum += seconds
        self.timed_subtasks += 1
        if len(self.subtask_seconds) < MAX_TIMING_SAMPLES:
            self.subtask_seconds.append(seconds)

    @property
    def steps_executed(self) -> int:
        """Total pair contractions performed."""
        return sum(self.node_counts.values())

    @property
    def mean_subtask_seconds(self) -> float:
        """Mean measured wall time per ``execute`` call (NaN when unmeasured).

        Exact over every timed call, including those beyond the retained
        sample cap.
        """
        if self.timed_subtasks:
            return self.subtask_seconds_sum / self.timed_subtasks
        if self.subtask_seconds:  # hand-built stats without the aggregates
            return sum(self.subtask_seconds) / len(self.subtask_seconds)
        return float("nan")

    def merge(self, other: "PlanStats") -> None:
        """Fold another stats object into this one (used by worker pools)."""
        for node, count in other.node_counts.items():
            self.node_counts[node] = self.node_counts.get(node, 0) + count
        self.cache_hits += other.cache_hits
        self.executions += other.executions
        self.batched_executions += other.batched_executions
        self.slot_writes += other.slot_writes
        self.branch_writes += other.branch_writes
        self.fused_steps += other.fused_steps
        if other.tape_engine is not None:
            # workers report what actually ran; their observation wins
            # over a compile-time stamp on the coordinator's stats
            self.tape_engine = other.tape_engine
        if other.array_module is not None:
            self.array_module = other.array_module
        if not self.fusion_breaks and other.fusion_breaks:
            self.fusion_breaks = dict(other.fusion_breaks)
        room = MAX_TIMING_SAMPLES - len(self.subtask_seconds)
        if room > 0:
            self.subtask_seconds.extend(other.subtask_seconds[:room])
        self.subtask_seconds_sum += other.subtask_seconds_sum
        self.timed_subtasks += other.timed_subtasks
        for stage, seconds in other.stage_seconds.items():
            self.stage_seconds[stage] = self.stage_seconds.get(stage, 0.0) + seconds
        self.retries += other.retries
        self.faults += other.faults
        if self.degraded_to is None:
            self.degraded_to = other.degraded_to
        self.recovery_seconds += other.recovery_seconds
        self.comms_seconds += other.comms_seconds
        self.comms_bytes += other.comms_bytes
        self.chunk_roundtrips += other.chunk_roundtrips
        self.checkpointed_slots += other.checkpointed_slots
        self.resumed_slots += other.resumed_slots


class StemSlots:
    """Reusable buffers: two stem slots, a branch free list, named scratch.

    The stem is a chain of contractions in which each intermediate is
    consumed by exactly the next step, so its running tensor only ever
    needs two buffers: step ``k`` writes slot ``k % 2`` while reading the
    previous stem tensor out of slot ``(k - 1) % 2``.  An arena instance
    is *not* thread-safe — every executor thread / pool worker owns its
    own (the backends arrange this).

    Off-stem (*branch*) intermediates do not follow the alternating
    pattern, but their lifetimes are just as short — each is freed the
    moment its parent consumes it — so the arena also keeps a
    size-bucketed free list: :meth:`take_branch` hands out a buffer from
    the bucket of the next power-of-two size (allocating one only when
    the bucket is empty) and :meth:`release_branch` returns it when the
    plan's free schedule retires the intermediate.  Only buffers the
    arena itself loaned are ever recycled — leaf slices, cache entries
    and foreign arrays pass through ``release_branch`` untouched — so
    enabling the free list cannot corrupt caller-owned data.  The branch
    path is used only by plans compiled with ``branch_buffers=True``.

    Buffers are grown (never shrunk) on demand and re-typed when the
    requested dtype changes, so one arena serves plans of any size.

    Every buffer is allocated from the arena's bound
    :class:`~repro.execution.array_module.ArrayModule` (host numpy by
    default), so slots, branch loans and scratch all live on the plan's
    execution substrate.  :meth:`bind_module` rebinds the arena — plans
    call it at the top of ``execute`` — dropping all held buffers when
    the substrate actually changes (buffers of one module are useless to
    another).
    """

    __slots__ = ("_buffers", "_free", "_loans", "_scratch", "_scratch_views", "_module")

    def __init__(self, module: Optional[ArrayModule] = None) -> None:
        self._module: ArrayModule = module if module is not None else NUMPY_MODULE
        self._buffers: List[Optional[np.ndarray]] = [None, None]
        # (dtype key, bucket size) -> stack of flat buffers of that size
        self._free: Dict[Tuple[str, int], List[np.ndarray]] = {}
        # id of the flat buffer backing each outstanding loan
        self._loans: Dict[int, np.ndarray] = {}
        # named grow-only scratch buffers (fused permutation staging)
        self._scratch: Dict[str, np.ndarray] = {}
        # (key, shape, dtype) -> cached shaped view of the key's buffer,
        # so the fused hot loop skips the slice/reshape on every reuse
        self._scratch_views: Dict[Tuple, np.ndarray] = {}

    @property
    def array_module(self) -> ArrayModule:
        """The module every arena buffer is allocated from."""
        return self._module

    def bind_module(self, module: ArrayModule) -> None:
        """Bind the arena to ``module``, dropping buffers on a change."""
        if module is self._module:
            return
        self._module = module
        self._buffers = [None, None]
        self._free = {}
        self._loans = {}
        self._scratch = {}
        self._scratch_views = {}

    def out_for(
        self, slot: int, shape: Tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """A C-contiguous array view of ``shape``/``dtype`` backed by ``slot``."""
        size = 1
        for dim in shape:
            size *= dim
        buffer = self._buffers[slot]
        if buffer is None or self._module.size_of(buffer) < size or buffer.dtype != dtype:
            buffer = self._module.empty(max(size, 1), dtype)
            self._buffers[slot] = buffer
        return buffer[:size].reshape(shape)

    def scratch(
        self, key: str, shape: Tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """A named grow-only scratch view of ``shape``/``dtype``.

        The fused executor stages permuted GEMM operands here (one key per
        operand side): each staged copy is consumed by the very next
        ``np.dot``, so a single buffer per key serves every fused step of
        every subtask with zero steady-state allocations.  Shaped views
        are memoized per ``(key, shape, dtype)`` — the hot loop's repeat
        requests cost one dict lookup.  When a key's buffer is outgrown
        (or re-typed) and replaced, every cached view of the retired
        buffer is dropped, so a long-lived arena (a pool worker's, across
        many plans) retains at most one buffer generation per key.
        """
        views = self._scratch_views
        cache_key = (key, shape, dtype)
        view = views.get(cache_key)
        if view is not None:
            return view
        size = 1
        for dim in shape:
            size *= dim
        buffer = self._scratch.get(key)
        if buffer is None or self._module.size_of(buffer) < size or buffer.dtype != dtype:
            buffer = self._module.empty(max(size, 1), dtype)
            self._scratch[key] = buffer
            for stale in [k for k in views if k[0] == key]:
                del views[stale]
        view = buffer[:size].reshape(shape)
        views[cache_key] = view
        return view

    @property
    def scratch_bytes(self) -> int:
        """Total bytes currently held by the named scratch buffers."""
        return sum(self._module.nbytes_of(b) for b in self._scratch.values())

    # ------------------------------------------------------------------
    @staticmethod
    def _bucket(size: int) -> int:
        """Free-list bucket: the next power of two at or above ``size``."""
        return 1 << max(size - 1, 0).bit_length()

    def take_branch(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        """A loaned C-contiguous array of ``shape``/``dtype`` from the free list."""
        size = 1
        for dim in shape:
            size *= dim
        bucket = self._bucket(size)
        module = self._module
        key = (module.dtype_key(dtype), bucket)
        stack = self._free.get(key)
        flat = stack.pop() if stack else module.empty(bucket, dtype)
        self._loans[id(flat)] = flat
        return flat[:size].reshape(shape)

    def release_branch(self, array: np.ndarray) -> None:
        """Return a loaned buffer to its bucket; ignores foreign arrays."""
        module = self._module
        owner = module.owner_of(array)
        flat = self._loans.pop(id(owner), None)
        if flat is not None:
            self._free.setdefault(
                (module.dtype_key(flat.dtype), module.size_of(flat)), []
            ).append(flat)

    @property
    def free_list_bytes(self) -> int:
        """Total bytes currently parked in the branch free list."""
        return sum(
            self._module.nbytes_of(b) for stack in self._free.values() for b in stack
        )

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently held by the two slots."""
        return sum(
            self._module.nbytes_of(b) for b in self._buffers if b is not None
        )


@dataclass(frozen=True)
class LeafStep:
    """Load (and slice) one leaf tensor.

    ``takes`` is the ordered list of ``(index, axis)`` pairs to apply with
    ``np.take``; the axis positions already account for previously removed
    axes, so they are applied left to right with no per-call bookkeeping.
    ``source_indices`` records the axis order of the network tensor the
    step was compiled against, so staleness is detectable.
    """

    node: int
    tid: int
    takes: Tuple[Tuple[str, int], ...]
    out_indices: Tuple[str, ...]
    source_indices: Tuple[str, ...]


@dataclass(frozen=True)
class ContractStep:
    """One precompiled pair contraction.

    ``kind`` selects the kernel:

    * ``"tensordot"`` — ``np.tensordot(a, b, axes)``; the planned output
      order equals tensordot's natural order so no transpose is needed.
    * ``"bmm"`` — batched matmul over the batch axis:
      ``transpose/reshape`` both operands to ``(w_b, m, k)``/``(w_b, k, n)``
      and ``np.matmul``; used when the batch index lives on both operands.
    * ``"einsum"`` — precompiled integer-sublist einsum (no symbol-table
      size limit, unlike spec strings); fallback for hyper indices kept on
      the output and for axes summed out of a single operand.

    Steps lying on the stem additionally carry ``slot`` (0 or 1, the
    :class:`StemSlots` buffer their output alternates into) and, for the
    tensordot kind, the explicit ``transpose → reshape → dot`` layout
    (``td_perm_*`` / ``td_mkn``) that reproduces ``np.tensordot`` bit for
    bit while writing into the slot.
    """

    node: int
    lhs: int
    rhs: int
    kind: str
    out_indices: Tuple[str, ...]
    invariant: bool
    free_full: Tuple[int, ...]
    free_cached: Tuple[int, ...]
    log2_flops: float
    axes: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    sub_lhs: Optional[Tuple[int, ...]] = None
    sub_rhs: Optional[Tuple[int, ...]] = None
    sub_out: Optional[Tuple[int, ...]] = None
    bmm_perm_lhs: Optional[Tuple[int, ...]] = None
    bmm_perm_rhs: Optional[Tuple[int, ...]] = None
    bmm_lhs_shape: Optional[Tuple[int, int, int]] = None
    bmm_rhs_shape: Optional[Tuple[int, int, int]] = None
    bmm_out_shape: Optional[Tuple[int, ...]] = None
    slot: Optional[int] = None
    out_shape: Optional[Tuple[int, ...]] = None
    td_perm_lhs: Optional[Tuple[int, ...]] = None
    td_perm_rhs: Optional[Tuple[int, ...]] = None
    td_mkn: Optional[Tuple[int, int, int]] = None
    #: Compile-time identity flags: when a compiled permutation is the
    #: identity the executor skips the ``np.transpose`` call entirely (and
    #: the trailing reshape when the shapes already match).
    td_lhs_identity: bool = False
    td_rhs_identity: bool = False
    bmm_lhs_identity: bool = False
    bmm_rhs_identity: bool = False


class CompiledPlan:
    """A contraction tree compiled against one network and slicing set.

    Instances are produced by :func:`compile_plan`; they are immutable and
    safe to share between threads once :meth:`warm_cache` has completed.
    """

    def __init__(
        self,
        tree: ContractionTree,
        enumerated: Tuple[str, ...],
        batch_indices: Tuple[str, ...],
        dtype: Optional[np.dtype],
        leaf_steps: Tuple[LeafStep, ...],
        steps: Tuple[ContractStep, ...],
        frontier: FrozenSet[int],
        dependent: FrozenSet[int],
        out_indices: Tuple[str, ...],
        out_sizes: Dict[str, int],
        root_perm: Optional[Tuple[int, ...]],
        branch_buffers: bool = False,
        fused: bool = False,
        fused_runs_full: Tuple[FusedRun, ...] = (),
        fused_runs_cached: Tuple[FusedRun, ...] = (),
        fusion_plan=None,
        step_tapes: Optional[Dict[int, Tuple]] = None,
        tape_engine: str = "python",
        fusion_breaks: Optional[Dict[str, int]] = None,
        array_module: Optional[ArrayModule] = None,
        derived_dtype: Optional[np.dtype] = None,
    ) -> None:
        self._tree = tree
        self._module: ArrayModule = (
            array_module if array_module is not None else NUMPY_MODULE
        )
        # dtype inferred from the network's leaf tensors at compile time
        # (satellite of the explicit _dtype override); drives kernel
        # warming and pre-calibration sizing, never leaf casting
        self._derived_dtype = derived_dtype
        self._branch_buffers = bool(branch_buffers)
        # fused plans always recycle off-stem outputs through the free
        # list: every tensordot step carries the explicit GEMM layout, so
        # branch contractions skip the allocating np.tensordot wrapper
        self._recycle_branches = bool(branch_buffers or fused)
        self._enumerated = enumerated
        self._enumerated_sizes: Dict[str, int] = {}
        for ix in enumerated:
            try:
                self._enumerated_sizes[ix] = tree.index_size(ix)
            except Exception:
                # index unknown to the tree: fixing it is a no-op (matches
                # the reference walker), so no range to enforce
                pass
        self._batch_indices = batch_indices
        self._dtype = dtype
        self._leaf_steps = leaf_steps
        self._steps = steps
        self._frontier = frontier
        self._dependent = dependent
        self._out_indices = out_indices
        self._out_sizes = dict(out_sizes)
        self._root_perm = root_perm
        self._variant_leaf_steps = tuple(
            ls for ls in leaf_steps if ls.node in dependent
        )
        self._invariant_steps = tuple(s for s in steps if s.invariant)
        self._variant_steps = tuple(s for s in steps if not s.invariant)
        self._fused_runs_full = fused_runs_full
        self._fused_runs_cached = fused_runs_cached
        self._fusion_plan = fusion_plan
        self._step_tapes: Dict[int, Tuple] = dict(step_tapes or {})
        # execution sequences interleaving tape entries (inlined tensordot
        # steps), einsum/bmm fallback steps and fused runs; a run is
        # placed at its last member's position so every absorbed branch is
        # already computed when the run starts
        if fused:
            self._exec_full: Optional[Tuple[object, ...]] = self._interleave(
                steps, fused_runs_full
            )
            self._exec_cached: Optional[Tuple[object, ...]] = self._interleave(
                self._variant_steps, fused_runs_cached
            )
        else:
            self._exec_full = None
            self._exec_cached = None
        self._fusion_breaks: Dict[str, int] = dict(fusion_breaks or {})
        # native tape programs: the fused execution sequences lowered into
        # flat array-of-structs programs a numba kernel walks without
        # per-step Python (see execution/tape.py).  Lowered eagerly in the
        # compiling process, JIT-compiled lazily in whichever process
        # executes them (programs pickle to pool workers; the kernel does
        # not).  ``None`` when the engine is python, numba is absent under
        # "auto", or a sequence contains an einsum fallback step.
        self._native_full = None
        self._native_cached = None
        self._tape_engine = "python"
        if fused and tape_engine == "native" and self._module.supports_native_tape:
            from .tape import lower_entries

            self._native_full = lower_entries(self._exec_full, tree.root, cached=False)
            self._native_cached = lower_entries(
                self._exec_cached, tree.root, cached=True
            )
            if self._native_full is not None or self._native_cached is not None:
                self._tape_engine = "native"

    def _interleave(
        self, steps: Sequence[ContractStep], runs: Tuple[FusedRun, ...]
    ) -> Tuple[object, ...]:
        """Replace each run's steps with the run itself, at the last slot."""
        run_of: Dict[int, FusedRun] = {
            node: run for run in runs for node in run.nodes
        }
        entries: List[object] = []
        for step in steps:
            run = run_of.get(step.node)
            if run is None:
                tape = self._step_tapes.get(step.node)
                entries.append(step if tape is None else tape)
            elif step.node == run.nodes[-1]:
                entries.append(run)
            # earlier members execute inside the run, not as entries
        return tuple(entries)

    # ------------------------------------------------------------------
    @property
    def tree(self) -> ContractionTree:
        """The tree this plan was compiled from."""
        return self._tree

    @property
    def sliced(self) -> Tuple[str, ...]:
        """The enumerated sliced indices (excludes the batch index)."""
        return self._enumerated

    @property
    def batch_indices(self) -> Tuple[str, ...]:
        """The sliced indices kept as live batch axes, in canonical order."""
        return self._batch_indices

    @property
    def array_module(self) -> ArrayModule:
        """The execution substrate every kernel of this plan runs on."""
        return self._module

    @property
    def dtype(self) -> Optional[np.dtype]:
        """The dtype execution runs in.

        The explicit compile-time override when one was given, else the
        dtype derived from the network's concrete leaf tensors
        (``np.result_type`` over all of them), else ``None`` when every
        leaf was abstract at compile time.  Kernel warming and
        pre-calibration sizing read this instead of assuming complex128,
        so complex64 circuits run end-to-end at half the working set.
        """
        if self._dtype is not None:
            return self._dtype
        return self._derived_dtype

    @property
    def branch_buffers(self) -> bool:
        """Whether branch intermediates draw from the arena's free list."""
        return self._branch_buffers

    @property
    def fused(self) -> bool:
        """Whether this plan carries precompiled fused stem runs."""
        return bool(self._fused_runs_full or self._fused_runs_cached)

    @property
    def fused_runs(self) -> Tuple[FusedRun, ...]:
        """The fused runs of the full (uncached) execution sequence."""
        return self._fused_runs_full

    @property
    def fused_runs_cached(self) -> Tuple[FusedRun, ...]:
        """The fused runs of the cache-warm execution sequence."""
        return self._fused_runs_cached

    @property
    def contract_steps(self) -> Tuple[ContractStep, ...]:
        """Every compiled pair-contraction step, in execution order.

        What the benchmarks' fusion-coverage accounting walks: a step
        with a :attr:`ContractStep.slot` and a GEMM layout
        (``td_mkn``/``bmm_lhs_shape``) is a stem GEMM the fusion pass
        could place inside a run.
        """
        return self._steps

    @property
    def fusion_plan(self):
        """The §5 :class:`~repro.core.secondary.FusedPlan` behind the runs."""
        return self._fusion_plan

    @property
    def fusion_breaks(self) -> Dict[str, int]:
        """Why stem steps stayed outside fused runs (reason → count)."""
        return dict(self._fusion_breaks)

    @property
    def tape_engine(self) -> str:
        """The tape interpreter this plan carries (``"python"``/``"native"``).

        ``"native"`` means the fused sequences were lowered to
        :class:`~repro.execution.tape.TapeProgram` form; execution still
        falls back to the Python walker (bit-identically) if the numba
        kernel is unavailable in the executing process.
        """
        return self._tape_engine

    @property
    def native_programs(self) -> Tuple[object, object]:
        """The lowered ``(full, cached)`` tape programs (``None`` each
        when the plan runs the Python walker)."""
        return self._native_full, self._native_cached

    @property
    def batch_index(self) -> Optional[str]:
        """The single batch index when exactly one is live, else ``None``."""
        if len(self._batch_indices) == 1:
            return self._batch_indices[0]
        return None

    @property
    def num_batch_axes(self) -> int:
        """Number of leading batch axes on the result tensor."""
        count = 0
        for ix in self._out_indices:
            if ix in self._batch_indices:
                count += 1
            else:
                break
        return count

    @property
    def out_indices(self) -> Tuple[str, ...]:
        """Index order of the result (batch indices leading when batched)."""
        return self._out_indices

    @property
    def out_sizes(self) -> Dict[str, int]:
        """Copy of the result's index → size mapping."""
        return dict(self._out_sizes)

    @property
    def leaf_steps(self) -> Tuple[LeafStep, ...]:
        """The per-leaf load/slice instructions (backends ship these)."""
        return self._leaf_steps

    @property
    def num_steps(self) -> int:
        """Number of pair contractions in one full (uncached) execution."""
        return len(self._steps)

    @property
    def invariant_nodes(self) -> FrozenSet[int]:
        """Internal nodes whose contraction is slice-invariant."""
        return frozenset(s.node for s in self._invariant_steps)

    @property
    def dependent_nodes(self) -> FrozenSet[int]:
        """Nodes (leaves and internals) that depend on the slice assignment."""
        return self._dependent

    @property
    def frontier(self) -> FrozenSet[int]:
        """Maximal invariant subtree roots retained in the cache."""
        return self._frontier

    def invariant_log2_flops(self) -> float:
        """log2 of the per-subtask flops saved by the invariant cache."""
        total = sum(2.0**s.log2_flops for s in self._invariant_steps)
        return math.log2(total) if total else float("-inf")

    def matches_network(self, network: TensorNetwork) -> bool:
        """Whether the network's leaf index orders still match the plan.

        The plan bakes in each leaf's axis order; if a tensor was replaced
        with a permuted or re-indexed one, the plan must be recompiled.
        """
        try:
            return all(
                network.tensor(ls.tid).indices == ls.source_indices
                for ls in self._leaf_steps
            )
        except Exception:
            return False

    # ------------------------------------------------------------------
    def new_cache(self) -> Dict[int, np.ndarray]:
        """A fresh (empty) invariant-intermediate cache."""
        return {}

    def cache_is_warm(self, cache: Mapping[int, np.ndarray]) -> bool:
        """Whether every frontier intermediate is present in ``cache``."""
        return all(node in cache for node in self._frontier)

    def warm_cache(
        self,
        network: TensorNetwork,
        cache: Dict[int, np.ndarray],
        stats: Optional[PlanStats] = None,
    ) -> None:
        """Compute every slice-invariant intermediate once into ``cache``.

        Runs only the invariant portion of the plan (which touches no sliced
        index, hence needs no assignment); interior invariant buffers are
        freed as soon as they are consumed and only the frontier survives.
        """
        start = time.perf_counter()
        live: Dict[int, np.ndarray] = {}
        for ls in self._leaf_steps:
            if ls.node in self._dependent:
                continue
            live[ls.node] = self._load_leaf(network, ls, None)
        for step in self._invariant_steps:
            self._run_step(step, live)
            if stats is not None:
                stats.record_step(step.node)
            for child in step.free_full:
                if child not in self._frontier:
                    del live[child]
        for node in self._frontier:
            cache[node] = live[node]
        if stats is not None:
            stats.record_stage("warm_cache", time.perf_counter() - start)

    # ------------------------------------------------------------------
    def execute(
        self,
        network: TensorNetwork,
        assignment: Optional[Mapping[str, int]] = None,
        cache: Optional[Dict[int, np.ndarray]] = None,
        stats: Optional[PlanStats] = None,
        slots: Optional[StemSlots] = None,
    ) -> Tensor:
        """Contract the network for one slice assignment.

        Parameters
        ----------
        network:
            The concrete network the plan was compiled against.
        assignment:
            Value of every enumerated sliced index.
        cache:
            Optional invariant cache (from :meth:`new_cache`).  When given,
            only the slice-dependent part of the tree is recontracted; the
            cache is warmed on first use.
        stats:
            Optional instrumentation counters.
        slots:
            Optional :class:`StemSlots` arena.  Stem-chain steps then write
            their outputs into the arena's two alternating buffers instead
            of allocating — the returned tensor may alias the arena, so it
            is only valid until the next ``execute`` with the same arena
            (the execution backends accumulate it immediately).
        """
        assignment = dict(assignment or {})
        if set(assignment) != set(self._enumerated):
            raise PlanError(
                f"assignment keys {sorted(assignment)} do not match the "
                f"plan's sliced indices {sorted(self._enumerated)}"
            )
        for ix, size in self._enumerated_sizes.items():
            # np.take would silently wrap negative values
            if not 0 <= assignment[ix] < size:
                raise PlanError(
                    f"slice value {assignment[ix]} out of range for index {ix!r}"
                )
        if stats is not None:
            stats.executions += 1
            stats.array_module = self._module.name
            if self._batch_indices:
                stats.batched_executions += 1
        if slots is not None:
            # identity check on the common path; on a change the arena
            # drops buffers of the previous substrate
            slots.bind_module(self._module)
        release = self._recycle_branches and slots is not None

        if cache is None:
            start = time.perf_counter()
            live: Dict[int, np.ndarray] = {}
            for ls in self._leaf_steps:
                live[ls.node] = self._load_leaf(network, ls, assignment)
            if slots is not None and self._exec_full is not None:
                if not self._try_native(self._native_full, live, slots, stats):
                    self._run_entries(
                        self._exec_full, live, slots, stats, release, False
                    )
            else:
                for step in self._steps:
                    self._run_step(step, live, slots, stats)
                    if stats is not None:
                        stats.record_step(step.node)
                    for child in step.free_full:
                        if release:
                            slots.release_branch(live[child])  # type: ignore[union-attr]
                        del live[child]
        else:
            if not self.cache_is_warm(cache):
                self.warm_cache(network, cache, stats)
            start = time.perf_counter()
            live = {node: cache[node] for node in self._frontier}
            if stats is not None:
                stats.cache_hits += len(self._frontier)
            for ls in self._variant_leaf_steps:
                live[ls.node] = self._load_leaf(network, ls, assignment)
            if slots is not None and self._exec_cached is not None:
                if not self._try_native(self._native_cached, live, slots, stats):
                    self._run_entries(
                        self._exec_cached, live, slots, stats, release, True
                    )
            else:
                for step in self._variant_steps:
                    self._run_step(step, live, slots, stats)
                    if stats is not None:
                        stats.record_step(step.node)
                    for child in step.free_cached:
                        if release:
                            slots.release_branch(live[child])  # type: ignore[union-attr]
                        del live[child]

        if stats is not None:
            elapsed = time.perf_counter() - start
            stats.record_subtask_time(elapsed)
            stats.record_stage("execute", elapsed)

        # stage the root back to the host before anything downstream sees
        # it: accumulation, sessions and shared-memory segments are
        # host-numpy by contract (identity, hence bit-identical, for the
        # numpy module)
        data = self._module.to_host(live[self._tree.root])
        if cache is not None and self._tree.root in self._frontier:
            # the root itself is cached (nothing is slice-dependent): hand
            # out a copy so callers cannot corrupt the shared cache buffer
            # (for device modules to_host may alias the cached buffer)
            data = data.copy()
        if self._root_perm is not None:
            data = np.transpose(data, self._root_perm)
        return Tensor(self._out_indices, data=data, sizes=self._out_sizes)

    # ------------------------------------------------------------------
    def _load_leaf(
        self,
        network: TensorNetwork,
        leaf_step: LeafStep,
        assignment: Optional[Mapping[str, int]],
    ) -> np.ndarray:
        tensor = network.tensor(leaf_step.tid)
        data = tensor.data
        if data is None:
            raise ValueError(
                f"tensor {leaf_step.tid} is abstract; the executor needs "
                "concrete data"
            )
        for index, axis in leaf_step.takes:
            data = np.take(data, assignment[index], axis=axis)  # type: ignore[index]
        if self._dtype is not None:
            # convert after slicing so the cast copies only the slice
            data = np.asarray(data, dtype=self._dtype)
        # slice host-side (leaves and segments are host arrays by
        # contract), then stage the slice onto the execution substrate;
        # the numpy module's from_host is the identity
        return self._module.from_host(data)

    def _try_native(
        self,
        program,
        live: Dict[int, np.ndarray],
        slots: StemSlots,
        stats: Optional[PlanStats],
    ) -> bool:
        """Run one lowered tape program through the numba kernel.

        Returns ``False`` (and leaves ``live`` usable) whenever the native
        path cannot run — no program, numba missing, mixed operand dtypes,
        or a kernel failure (which poisons the engine for this process) —
        so the caller falls through to the bit-identical Python walker.
        """
        if program is None:
            return False
        from .tape import run_native

        return run_native(program, live, slots, stats)

    def _run_entries(
        self,
        entries: Tuple[object, ...],
        live: Dict[int, np.ndarray],
        slots: StemSlots,
        stats: Optional[PlanStats],
        release: bool,
        cached: bool,
    ) -> None:
        """Execute a fused sequence with the Python tape walker.

        Three entry kinds: precompiled tape tuples (every GEMM-shaped
        step, ``dot`` and batched ``matmul`` alike — operands staged
        through the §5.3.1 permutation kernels, the GEMM written into a
        stem slot, a recycled free-list buffer, or — for the root only —
        a fresh caller-owned buffer), :class:`FusedRun` objects (whole
        stem sub-paths), and plain :class:`ContractStep` fallbacks
        (einsum kind).  All three produce bit-identical values to the
        step-by-step loop.
        """
        timed = stats is not None
        if timed:
            stats.tape_engine = "python"  # type: ignore[union-attr]
        out_for = slots.out_for
        take_branch = slots.take_branch
        scratch = slots.scratch
        xp = self._module
        dot = xp.dot
        batched = xp.batched_gemm
        copyto = xp.copyto
        take = xp.take
        transpose = xp.transpose
        empty = xp.empty
        result_type = xp.result_type
        for entry in entries:
            kind = type(entry)
            if kind is tuple:
                (
                    node,
                    lhs_node,
                    rhs_node,
                    (l_mode, l_p1, l_p2, l_out2d),
                    (r_mode, r_p1, r_p2, r_out2d),
                    slot,
                    mn,
                    out_shape,
                    is_root,
                    free_full,
                    free_cached,
                    is_bmm,
                ) = entry
                a = live[lhs_node]
                b = live[rhs_node]
                if l_mode == 0:
                    a2 = a.reshape(l_out2d)
                elif l_mode == 1:
                    staged = scratch(SCRATCH_LHS, l_p1, a.dtype)
                    take(a.reshape(l_p1), l_p2, 1, staged)
                    a2 = staged.reshape(l_out2d)
                else:
                    staged = scratch(SCRATCH_LHS, l_p2, a.dtype)
                    copyto(staged, transpose(a, l_p1))
                    a2 = staged.reshape(l_out2d)
                if r_mode == 0:
                    b2 = b.reshape(r_out2d)
                elif r_mode == 1:
                    staged = scratch(SCRATCH_RHS, r_p1, b.dtype)
                    take(b.reshape(r_p1), r_p2, 1, staged)
                    b2 = staged.reshape(r_out2d)
                else:
                    staged = scratch(SCRATCH_RHS, r_p2, b.dtype)
                    copyto(staged, transpose(b, r_p1))
                    b2 = staged.reshape(r_out2d)
                adt = a.dtype
                bdt = b.dtype
                dtype = adt if adt == bdt else result_type(a, b)
                if slot is not None:
                    out2 = out_for(slot, mn, dtype)
                    if timed:
                        stats.slot_writes += 1  # type: ignore[union-attr]
                elif is_root:
                    # handed to the caller: never a recycled buffer
                    out2 = empty(mn, dtype)
                else:
                    out2 = take_branch(mn, dtype)
                    if timed:
                        stats.branch_writes += 1  # type: ignore[union-attr]
                if is_bmm:
                    batched(a2, b2, out2)
                else:
                    dot(a2, b2, out=out2)
                live[node] = out2 if out_shape is None else out2.reshape(out_shape)
                if timed:
                    stats.record_step(node)  # type: ignore[union-attr]
                for child in free_cached if cached else free_full:
                    if release:
                        slots.release_branch(live[child])
                    del live[child]
            elif kind is FusedRun:
                self._run_fused(entry, live, slots, stats, release, cached)
            else:
                step = entry  # type: ignore[assignment]
                self._run_step(step, live, slots, stats)
                if timed:
                    stats.record_step(step.node)  # type: ignore[union-attr]
                for child in step.free_cached if cached else step.free_full:
                    if release:
                        slots.release_branch(live[child])
                    del live[child]

    def _run_fused(
        self,
        run: FusedRun,
        live: Dict[int, np.ndarray],
        slots: StemSlots,
        stats: Optional[PlanStats],
        release: bool,
        cached: bool,
    ) -> None:
        """Execute one fused stem sub-path with no main-memory round-trip.

        The running stem tensor lives in the arena's alternating slots;
        permuted operands are staged through the arena's named scratch (or
        taken as reshape views when the compiled permutation is the
        identity).  Interior intermediates never enter ``live`` — only the
        run's final output does.  Every GEMM sees exactly the operands the
        step-by-step path would build, so the result is bit-identical.
        """
        timed = stats is not None
        start = time.perf_counter() if timed else 0.0
        out_for = slots.out_for
        scratch = slots.scratch
        xp = self._module
        dot = xp.dot
        batched = xp.batched_gemm
        copyto = xp.copyto
        take = xp.take
        transpose = xp.transpose
        result_type = xp.result_type
        running = live[run.first_stem]
        free_lists = run.tape_free_cached if cached else run.tape_free_full  # type: ignore[attr-defined]
        node = run.first_stem
        for entry, free_nodes in zip(run.tape, free_lists):  # type: ignore[attr-defined]
            (
                node,
                lhs_node,
                rhs_node,
                stem_on_lhs,
                (l_mode, l_p1, l_p2, l_out2d),
                (r_mode, r_p1, r_p2, r_out2d),
                slot,
                mn,
                out_shape,
                is_bmm,
            ) = entry
            if stem_on_lhs:
                a, b = running, live[rhs_node]
            else:
                a, b = live[lhs_node], running
            if l_mode == 0:
                a2 = a.reshape(l_out2d)
            elif l_mode == 1:
                staged = scratch(SCRATCH_LHS, l_p1, a.dtype)
                take(a.reshape(l_p1), l_p2, 1, staged)
                a2 = staged.reshape(l_out2d)
            else:
                staged = scratch(SCRATCH_LHS, l_p2, a.dtype)
                copyto(staged, transpose(a, l_p1))
                a2 = staged.reshape(l_out2d)
            if r_mode == 0:
                b2 = b.reshape(r_out2d)
            elif r_mode == 1:
                staged = scratch(SCRATCH_RHS, r_p1, b.dtype)
                take(b.reshape(r_p1), r_p2, 1, staged)
                b2 = staged.reshape(r_out2d)
            else:
                staged = scratch(SCRATCH_RHS, r_p2, b.dtype)
                copyto(staged, transpose(b, r_p1))
                b2 = staged.reshape(r_out2d)
            adt = a.dtype
            bdt = b.dtype
            out2 = out_for(slot, mn, adt if adt == bdt else result_type(a, b))
            if is_bmm:
                batched(a2, b2, out2)
            else:
                dot(a2, b2, out=out2)
            running = out2 if out_shape is None else out2.reshape(out_shape)
            for child in free_nodes:
                if release:
                    slots.release_branch(live[child])
                del live[child]
        live[node] = running
        if timed:
            counts = stats.node_counts  # type: ignore[union-attr]
            for step_node in run.tape_nodes:  # type: ignore[attr-defined]
                counts[step_node] = counts.get(step_node, 0) + 1
            num_ops = len(run.ops)
            stats.slot_writes += num_ops  # type: ignore[union-attr]
            stats.fused_steps += num_ops  # type: ignore[union-attr]
            stats.record_stage("fused_kernel", time.perf_counter() - start)  # type: ignore[union-attr]

    def _run_step(
        self,
        step: ContractStep,
        live: Dict[int, np.ndarray],
        slots: Optional[StemSlots] = None,
        stats: Optional[PlanStats] = None,
    ) -> None:
        a = live[step.lhs]
        b = live[step.rhs]
        xp = self._module
        use_slot = slots is not None and step.slot is not None
        # branch steps draw from the arena's size-bucketed free list; the
        # root is excluded because its buffer is handed to the caller
        use_branch = (
            not use_slot
            and self._recycle_branches
            and slots is not None
            and step.kind == "tensordot"
            and step.td_mkn is not None
            and step.node != self._tree.root
        )
        if step.kind == "tensordot":
            if use_slot or use_branch:
                # the explicit transpose → reshape → dot sequence below is
                # what np.tensordot performs, with one normalization: when
                # the transposed reshape happens to be expressible as a
                # *view* (e.g. an F-contiguous (m, k)), BLAS would take the
                # transposed-GEMM dispatch, whose accumulation grouping
                # differs from the C-contiguous dispatch by ulps.  The
                # fused tape walkers always stage permuted operands into
                # C-contiguous scratch, so this path forces C order too —
                # every engine's GEMM then sees identical buffers and the
                # fused/stepwise bit-identity contract holds on every
                # workload, not just those where reshape copies anyway.
                m, k, n = step.td_mkn  # type: ignore[misc]
                if step.td_lhs_identity:
                    a2 = a.reshape(m, k)
                else:
                    a2 = xp.ascontiguousarray(
                        xp.transpose(a, step.td_perm_lhs).reshape(m, k)
                    )
                if step.td_rhs_identity:
                    b2 = b.reshape(k, n)
                else:
                    b2 = xp.ascontiguousarray(
                        xp.transpose(b, step.td_perm_rhs).reshape(k, n)
                    )
                if use_slot:
                    out2 = slots.out_for(step.slot, (m, n), xp.result_type(a, b))  # type: ignore[union-attr, arg-type]
                else:
                    out2 = slots.take_branch((m, n), xp.result_type(a, b))  # type: ignore[union-attr, arg-type]
                    if stats is not None:
                        stats.branch_writes += 1
                xp.dot(a2, b2, out=out2)
                out = out2 if out2.shape == step.out_shape else out2.reshape(step.out_shape)
            else:
                out = xp.tensordot(a, b, step.axes)
        elif step.kind == "bmm":
            # same C-order normalization as the tensordot branch above:
            # the per-slice GEMMs must see the buffers the fused walkers
            # would stage, or a view-expressible reshape flips the BLAS
            # dispatch and breaks cross-engine bit-identity by ulps
            if step.bmm_lhs_identity:
                a3 = a.reshape(step.bmm_lhs_shape)
            else:
                a3 = xp.ascontiguousarray(
                    xp.transpose(a, step.bmm_perm_lhs).reshape(step.bmm_lhs_shape)
                )
            if step.bmm_rhs_identity:
                b3 = b.reshape(step.bmm_rhs_shape)
            else:
                b3 = xp.ascontiguousarray(
                    xp.transpose(b, step.bmm_perm_rhs).reshape(step.bmm_rhs_shape)
                )
            shape3 = (step.bmm_lhs_shape[0], step.bmm_lhs_shape[1], step.bmm_rhs_shape[2])  # type: ignore[index]
            if use_slot:
                out3 = slots.out_for(step.slot, shape3, xp.result_type(a, b))  # type: ignore[union-attr, arg-type]
            else:
                out3 = xp.empty(shape3, xp.result_type(a, b))
            xp.batched_gemm(a3, b3, out3)
            out = out3.reshape(step.bmm_out_shape)
        else:
            if use_slot:
                out = slots.out_for(step.slot, step.out_shape, xp.result_type(a, b))  # type: ignore[union-attr, arg-type]
                xp.einsum(a, step.sub_lhs, b, step.sub_rhs, step.sub_out, out=out)
            else:
                out = xp.einsum(a, step.sub_lhs, b, step.sub_rhs, step.sub_out)
        if use_slot and stats is not None:
            stats.slot_writes += 1
        live[step.node] = out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fused = sum(run.num_steps for run in self._fused_runs_full)
        return (
            f"CompiledPlan(steps={len(self._steps)}, "
            f"invariant={len(self._invariant_steps)}, fused={fused}, "
            f"sliced={list(self._enumerated)}, batch={list(self._batch_indices)})"
        )


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------
def compile_plan(
    network: TensorNetwork,
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    batch_index: Optional[str] = None,
    dtype: Optional[np.dtype] = None,
    batch_indices: Optional[Sequence[str]] = None,
    branch_buffers: bool = False,
    fused: bool = False,
    fused_cap: Optional[int] = None,
    fused_max_steps: Optional[int] = None,
    tape_engine: str = "auto",
    array_module=None,
) -> CompiledPlan:
    """Compile ``tree`` over ``network`` for a fixed slicing set.

    Parameters
    ----------
    network:
        The network whose leaf tensors will be contracted.  Only the index
        *structure* is baked into the plan; the numerical data is read fresh
        from the network at execution time.
    tree:
        Contraction tree whose ``leaf_tids`` refer to ``network``.
    sliced:
        The slicing set.  Every index in it is removed from the leaves; at
        execution time an assignment supplies the value of each one.
    batch_index:
        Optional single member of ``sliced`` to keep as a live batch axis —
        shorthand for ``batch_indices=(batch_index,)``.
    dtype:
        Optional dtype override applied to every leaf at load time.
    batch_indices:
        Optional group of members of ``sliced`` kept as live batch axes
        instead of being enumerated: the compiled steps carry them through
        to the root (leading axes, in the order given), so a single
        execution sweeps all ``prod w(e)`` value combinations of the group.
        Steps where every live batch axis sits on both operands compile to
        one BLAS batched matmul whose leading batch axis has size
        ``prod w(e)``.
    branch_buffers:
        Compile the explicit GEMM layout for *every* tensordot step (not
        just the stem chain) so that off-stem intermediates can be written
        into recycled buffers from the arena's size-bucketed free list at
        execution time.  Values are bit-identical either way; the flag
        only changes where output buffers come from.
    fused:
        Run the §5 fusion pass (:func:`repro.execution.fusion.compile_fused_runs`):
        consecutive stem GEMMs become fused runs whose operand
        permutations are precompiled via the §5.3.1 reduced maps and whose
        intermediates stay in the arena (engaged at execution time only
        when a :class:`StemSlots` arena is supplied).  Bit-identical to
        the step-by-step path.
    fused_cap:
        Working-set rank cap of the fusion pass's §5 group analysis (the
        LDM-budget analogue): it bounds each group's *kept rank* and
        thereby fixes the group boundaries — it does not cap this
        process's actual in-flight tensor ranks, which stay what the
        tree dictates.  ``None`` uses the machine spec's LDM rank.  See
        :func:`repro.costs.fusion.select_fusion_cap` for cost-model-ranked
        selection.
    fused_max_steps:
        Optional cap on the number of steps fused into one group.
    tape_engine:
        Which interpreter walks the fused tape: ``"python"`` (the inlined
        walker in this module), ``"native"`` (lower the fused sequences
        into :class:`~repro.execution.tape.TapeProgram` form for the
        numba kernel — required, but execution still falls back
        bit-identically if numba is absent in the executing process), or
        ``"auto"`` (native exactly when numba is importable).  Only
        meaningful with ``fused``; requesting ``"native"`` on an unfused
        plan is an error.  The native kernel walks raw numpy buffers, so
        with a non-numpy ``array_module`` ``"auto"`` resolves to the
        Python walker and ``"native"`` is rejected.
    array_module:
        The execution substrate every kernel of the plan runs on: an
        :class:`~repro.execution.array_module.ArrayModule` instance or a
        name (``"numpy"``/``"cupy"``/``"torch"``); ``None`` means host
        numpy, which is bit-identical to the pre-seam behaviour.  Leaves
        are staged onto the module per subtask and the root staged back —
        see :mod:`repro.execution.array_module` for the host-staging
        contract.
    """
    sliced = frozenset(sliced)
    module = resolve_array_module(array_module)
    if tape_engine not in ("auto", "python", "native"):
        raise PlanError(
            f"unknown tape_engine {tape_engine!r}; "
            "expected 'auto', 'python' or 'native'"
        )
    if tape_engine == "native" and not fused:
        raise PlanError("tape_engine='native' requires a fused plan")
    engine = "python"
    if fused and tape_engine != "python":
        if not module.supports_native_tape:
            # the numba kernel walks raw numpy buffers only
            if tape_engine == "native":
                raise PlanError(
                    "tape_engine='native' requires the numpy array module; "
                    f"module {module.name!r} runs the Python tape walker"
                )
        else:
            from .tape import native_available

            if tape_engine == "native" or native_available():
                engine = "native"
    if batch_index is not None and batch_indices is not None:
        raise PlanError("pass either batch_index or batch_indices, not both")
    batch: Tuple[str, ...] = (
        tuple(batch_indices) if batch_indices else ((batch_index,) if batch_index else ())
    )
    if len(set(batch)) != len(batch):
        raise PlanError(f"repeated batch indices in {batch}")
    for ix in batch:
        if ix not in sliced:
            raise PlanError(f"batch index {ix!r} is not in the sliced set")
    batch_set = frozenset(batch)
    enumerated = sliced - batch_set

    # derive the execution dtype from the concrete leaves when no
    # explicit override was given: kernel warming and pre-calibration
    # sizing then follow the leaves (complex64 circuits run end-to-end
    # at half the working set) instead of assuming complex128
    derived_dtype: Optional[np.dtype] = None
    if dtype is None:
        # reduce pairwise over the distinct dtypes (np.result_type caps
        # its argument count at NPY_MAXARGS; leaf counts do not)
        for tid in tree.leaf_tids:
            data = network.tensor(tid).data
            if data is None:
                continue
            if derived_dtype is None:
                derived_dtype = data.dtype
            elif data.dtype != derived_dtype:
                derived_dtype = np.result_type(derived_dtype, data.dtype)

    dependent = slice_dependent_nodes(tree, enumerated)

    # the stem (most expensive root-to-leaf chain) drives the slot
    # schedule: its running tensor alternates between the two StemSlots
    # buffers, step k writing slot k % 2
    slot_of = stem_slot_schedule(tree)

    orders: Dict[int, Tuple[str, ...]] = {}
    has_batch: Dict[int, FrozenSet[str]] = {}
    leaf_steps: List[LeafStep] = []
    for leaf, tid in enumerate(tree.leaf_tids):
        tensor = network.tensor(tid)
        if frozenset(tensor.indices) != tree.node_indices(leaf):
            raise PlanError(
                f"leaf {leaf} (tensor {tid}) carries indices "
                f"{sorted(tensor.indices)} but the tree expects "
                f"{sorted(tree.node_indices(leaf))}; recompile the plan "
                "against the current network"
            )
        working = list(tensor.indices)
        takes: List[Tuple[str, int]] = []
        for ix in tensor.indices:
            if ix in enumerated:
                takes.append((ix, working.index(ix)))
                working.remove(ix)
        orders[leaf] = tuple(working)
        has_batch[leaf] = batch_set & frozenset(working)
        leaf_steps.append(
            LeafStep(
                node=leaf,
                tid=tid,
                takes=tuple(takes),
                out_indices=orders[leaf],
                source_indices=tensor.indices,
            )
        )

    # frontier: maximal slice-invariant subtree roots — the nodes whose
    # intermediates the cache retains across subtasks
    frontier: Set[int] = set()
    for node in tree.internal_nodes():
        if node in dependent:
            for child in tree.children(node):  # type: ignore[union-attr]
                if child not in dependent:
                    frontier.add(child)
    if tree.root not in dependent:
        # the whole tree is invariant (empty enumerated set): the cache
        # retains the root itself
        frontier.add(tree.root)

    size = tree.index_size
    steps: List[ContractStep] = []
    for node in tree.internal_nodes():
        lhs, rhs = tree.children(node)  # type: ignore[misc]
        a_ixs, b_ixs = orders[lhs], orders[rhs]
        a_set, b_set = set(a_ixs), set(b_ixs)
        out_set = {ix for ix in tree.node_indices(node) if ix not in enumerated}
        node_batch = has_batch[lhs] | has_batch[rhs]
        has_batch[node] = node_batch
        out_set.update(node_batch)  # never sum the batch axes

        shared = a_set & b_set
        contracted = [ix for ix in a_ixs if ix in shared and ix not in out_set]
        kept_shared = [ix for ix in a_ixs if ix in shared and ix in out_set]
        solo_summed = [
            ix for ix in (*a_ixs, *b_ixs) if ix not in shared and ix not in out_set
        ]
        out_order = [ix for ix in a_ixs if ix in out_set] + [
            ix for ix in b_ixs if ix in out_set and ix not in a_set
        ]

        invariant = node not in dependent

        kwargs: Dict[str, object] = {}
        if not kept_shared and not solo_summed:
            kind = "tensordot"
            kwargs["axes"] = (
                tuple(a_ixs.index(ix) for ix in contracted),
                tuple(b_ixs.index(ix) for ix in contracted),
            )
            if node in slot_of or branch_buffers or fused:
                # explicit transpose → reshape → dot layout mirroring
                # np.tensordot, so the step can write into a stem slot or
                # a recycled branch buffer
                kept_a = [ix for ix in a_ixs if ix in out_set]
                kept_b = [ix for ix in b_ixs if ix in out_set]
                kwargs["td_perm_lhs"] = tuple(
                    a_ixs.index(ix) for ix in (*kept_a, *contracted)
                )
                kwargs["td_perm_rhs"] = tuple(
                    b_ixs.index(ix) for ix in (*contracted, *kept_b)
                )
                kwargs["td_mkn"] = (
                    math.prod(size(ix) for ix in kept_a),
                    math.prod(size(ix) for ix in contracted),
                    math.prod(size(ix) for ix in kept_b),
                )
                kwargs["td_lhs_identity"] = kwargs["td_perm_lhs"] == tuple(
                    range(len(a_ixs))
                )
                kwargs["td_rhs_identity"] = kwargs["td_perm_rhs"] == tuple(
                    range(len(b_ixs))
                )
        elif (
            node_batch
            and not solo_summed
            and set(kept_shared) == node_batch
            and has_batch[lhs] == node_batch
            and has_batch[rhs] == node_batch
        ):
            kind = "bmm"
            # canonical batch-axis order: as given in the batch group
            b_order = [ix for ix in batch if ix in node_batch]
            m_ixs = [ix for ix in a_ixs if ix in out_set and ix not in node_batch]
            n_ixs = [ix for ix in b_ixs if ix in out_set and ix not in node_batch]
            w_b = math.prod(size(ix) for ix in b_order)
            m = math.prod(size(ix) for ix in m_ixs)
            k = math.prod(size(ix) for ix in contracted)
            n = math.prod(size(ix) for ix in n_ixs)
            kwargs["bmm_perm_lhs"] = tuple(
                a_ixs.index(ix) for ix in (*b_order, *m_ixs, *contracted)
            )
            kwargs["bmm_perm_rhs"] = tuple(
                b_ixs.index(ix) for ix in (*b_order, *contracted, *n_ixs)
            )
            kwargs["bmm_lhs_shape"] = (w_b, m, k)
            kwargs["bmm_rhs_shape"] = (w_b, k, n)
            kwargs["bmm_out_shape"] = tuple(
                size(ix) for ix in (*b_order, *m_ixs, *n_ixs)
            )
            kwargs["bmm_lhs_identity"] = kwargs["bmm_perm_lhs"] == tuple(
                range(len(a_ixs))
            )
            kwargs["bmm_rhs_identity"] = kwargs["bmm_perm_rhs"] == tuple(
                range(len(b_ixs))
            )
            out_order = [*b_order, *m_ixs, *n_ixs]
        else:
            kind = "einsum"
            # integer axis labels (einsum's interleaved form): unlike spec
            # strings these are not limited to 52 ASCII symbols
            labels: Dict[str, int] = {}

            def label(ix: str) -> int:
                return labels.setdefault(ix, len(labels))

            kwargs["sub_lhs"] = tuple(label(ix) for ix in a_ixs)
            kwargs["sub_rhs"] = tuple(label(ix) for ix in b_ixs)
            kwargs["sub_out"] = tuple(label(ix) for ix in out_order)

        orders[node] = tuple(out_order)
        steps.append(
            ContractStep(
                node=node,
                lhs=lhs,
                rhs=rhs,
                kind=kind,
                out_indices=orders[node],
                invariant=invariant,
                free_full=(lhs, rhs),
                free_cached=tuple(c for c in (lhs, rhs) if c not in frontier),
                log2_flops=tree.node_log2_flops(node, enumerated),
                slot=slot_of.get(node),
                out_shape=tuple(size(ix) for ix in out_order),
                **kwargs,  # type: ignore[arg-type]
            )
        )

    root = tree.root
    root_order = orders[root]
    root_perm: Optional[Tuple[int, ...]] = None
    out_order_final = root_order
    root_batch = has_batch.get(root, frozenset())
    if root_batch:
        # batch axes lead on the result, in the canonical group order
        prefix = [ix for ix in batch if ix in root_batch]
        if list(root_order[: len(prefix)]) != prefix:
            positions = [root_order.index(ix) for ix in prefix]
            rest = [i for i in range(len(root_order)) if i not in positions]
            perm = (*positions, *rest)
            root_perm = perm
            out_order_final = tuple(root_order[i] for i in perm)
    out_sizes = {ix: tree.index_size(ix) for ix in out_order_final}

    fused_runs_full: Tuple[FusedRun, ...] = ()
    fused_runs_cached: Tuple[FusedRun, ...] = ()
    fusion_plan = None
    step_tapes: Optional[Dict[int, Tuple]] = None
    fusion_breaks: Dict[str, int] = {}
    if fused:
        shape_of = {
            node: tuple(size(ix) for ix in order) for node, order in orders.items()
        }
        kernel_cache: Dict[int, Tuple] = {}
        fused_runs_full, fused_runs_cached, fusion_plan, fusion_breaks = (
            compile_fused_runs(
                tree,
                steps,
                enumerated=frozenset(enumerated),
                dependent=dependent,
                shape_of=shape_of,
                cap=fused_cap,
                max_fused_steps=fused_max_steps,
                kernel_cache=kernel_cache,
            )
        )
        step_tapes = compile_step_tapes(tree, steps, shape_of, kernel_cache)

    return CompiledPlan(
        tree=tree,
        enumerated=tuple(sorted(enumerated)),
        batch_indices=batch,
        dtype=np.dtype(dtype) if dtype is not None else None,
        leaf_steps=tuple(leaf_steps),
        steps=tuple(steps),
        frontier=frozenset(frontier),
        dependent=dependent,
        out_indices=out_order_final,
        out_sizes=out_sizes,
        root_perm=root_perm,
        branch_buffers=branch_buffers,
        fused=fused,
        fused_runs_full=fused_runs_full,
        fused_runs_cached=fused_runs_cached,
        fusion_plan=fusion_plan,
        step_tapes=step_tapes,
        tape_engine=engine,
        fusion_breaks=fusion_breaks,
        array_module=module,
        derived_dtype=derived_dtype,
    )

