"""Compiled contraction plans: plan once, execute ``prod w(e)`` times.

The sliced execution model of the paper runs the *same* contraction tree for
every subtask — only the values assigned to the sliced indices change.  The
reference executor (:class:`~repro.execution.contract.TreeExecutor`'s einsum
walker) rebuilds einsum spec strings, re-slices every leaf and re-contracts
the entire tree for each subtask; all of that work is slice-invariant and
can be hoisted out of the subtask loop.  This module performs that hoisting:

* :func:`compile_plan` turns a (network, tree, slicing set) triple into a
  :class:`CompiledPlan` — per-leaf slicing instructions plus one
  :class:`ContractStep` per internal tree node holding precomputed
  ``tensordot`` axis pairs (or, for the rare hyper-index cases, a
  precompiled einsum spec) and the output index order.  Nothing about the
  plan depends on the *values* assigned to the sliced indices, so one plan
  serves every subtask.
* The compiler classifies every tree node as *slice-dependent* or
  *slice-invariant* using :func:`repro.core.lifetime.slice_dependent_nodes`:
  a node is invariant exactly when no sliced edge's lifetime reaches a leaf
  of its subtree, so it produces the identical intermediate in every
  subtask.  The plan derives from this a free/reuse schedule: dependent
  intermediates are freed as soon as their parent consumes them, while the
  maximal invariant subtrees (the *frontier*) are computed once by
  :meth:`CompiledPlan.warm_cache` and reused across all subtasks.
* An optional *batched* mode keeps one sliced index alive as a leading
  batch axis instead of enumerating it: steps where the batch axis appears
  on both operands compile to a BLAS batched matmul
  (``transpose → reshape → matmul → reshape``), so all ``w(e)`` values of
  that index are swept in a single batched contraction.

:class:`PlanStats` instruments execution with per-node step counters; the
benchmark and the equivalence tests use it to assert that the cached path
performs each slice-invariant contraction exactly once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from ..core.lifetime import slice_dependent_nodes
from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor

__all__ = [
    "CompiledPlan",
    "ContractStep",
    "LeafStep",
    "PlanError",
    "PlanStats",
    "compile_plan",
]


class PlanError(ValueError):
    """Raised when a plan cannot be compiled or is executed inconsistently."""


@dataclass
class PlanStats:
    """Execution counters for a :class:`CompiledPlan`.

    Attributes
    ----------
    node_counts:
        How many times the contraction at each internal node actually ran.
        On the cached path every slice-invariant node must stay at 1 no
        matter how many subtasks execute — the benchmark asserts this.
    cache_hits:
        Number of operand fetches served from the invariant cache.
    executions:
        Number of ``execute`` calls (subtasks, or batched sweeps).
    """

    node_counts: Dict[int, int] = field(default_factory=dict)
    cache_hits: int = 0
    executions: int = 0

    def record_step(self, node: int) -> None:
        self.node_counts[node] = self.node_counts.get(node, 0) + 1

    @property
    def steps_executed(self) -> int:
        """Total pair contractions performed."""
        return sum(self.node_counts.values())

    def merge(self, other: "PlanStats") -> None:
        """Fold another stats object into this one (used by worker pools)."""
        for node, count in other.node_counts.items():
            self.node_counts[node] = self.node_counts.get(node, 0) + count
        self.cache_hits += other.cache_hits
        self.executions += other.executions


@dataclass(frozen=True)
class LeafStep:
    """Load (and slice) one leaf tensor.

    ``takes`` is the ordered list of ``(index, axis)`` pairs to apply with
    ``np.take``; the axis positions already account for previously removed
    axes, so they are applied left to right with no per-call bookkeeping.
    ``source_indices`` records the axis order of the network tensor the
    step was compiled against, so staleness is detectable.
    """

    node: int
    tid: int
    takes: Tuple[Tuple[str, int], ...]
    out_indices: Tuple[str, ...]
    source_indices: Tuple[str, ...]


@dataclass(frozen=True)
class ContractStep:
    """One precompiled pair contraction.

    ``kind`` selects the kernel:

    * ``"tensordot"`` — ``np.tensordot(a, b, axes)``; the planned output
      order equals tensordot's natural order so no transpose is needed.
    * ``"bmm"`` — batched matmul over the batch axis:
      ``transpose/reshape`` both operands to ``(w_b, m, k)``/``(w_b, k, n)``
      and ``np.matmul``; used when the batch index lives on both operands.
    * ``"einsum"`` — precompiled integer-sublist einsum (no symbol-table
      size limit, unlike spec strings); fallback for hyper indices kept on
      the output and for axes summed out of a single operand.
    """

    node: int
    lhs: int
    rhs: int
    kind: str
    out_indices: Tuple[str, ...]
    invariant: bool
    free_full: Tuple[int, ...]
    free_cached: Tuple[int, ...]
    log2_flops: float
    axes: Optional[Tuple[Tuple[int, ...], Tuple[int, ...]]] = None
    sub_lhs: Optional[Tuple[int, ...]] = None
    sub_rhs: Optional[Tuple[int, ...]] = None
    sub_out: Optional[Tuple[int, ...]] = None
    bmm_perm_lhs: Optional[Tuple[int, ...]] = None
    bmm_perm_rhs: Optional[Tuple[int, ...]] = None
    bmm_lhs_shape: Optional[Tuple[int, int, int]] = None
    bmm_rhs_shape: Optional[Tuple[int, int, int]] = None
    bmm_out_shape: Optional[Tuple[int, ...]] = None


class CompiledPlan:
    """A contraction tree compiled against one network and slicing set.

    Instances are produced by :func:`compile_plan`; they are immutable and
    safe to share between threads once :meth:`warm_cache` has completed.
    """

    def __init__(
        self,
        tree: ContractionTree,
        enumerated: Tuple[str, ...],
        batch_index: Optional[str],
        dtype: Optional[np.dtype],
        leaf_steps: Tuple[LeafStep, ...],
        steps: Tuple[ContractStep, ...],
        frontier: FrozenSet[int],
        dependent: FrozenSet[int],
        out_indices: Tuple[str, ...],
        out_sizes: Dict[str, int],
        root_perm: Optional[Tuple[int, ...]],
    ) -> None:
        self._tree = tree
        self._enumerated = enumerated
        self._enumerated_sizes: Dict[str, int] = {}
        for ix in enumerated:
            try:
                self._enumerated_sizes[ix] = tree.index_size(ix)
            except Exception:
                # index unknown to the tree: fixing it is a no-op (matches
                # the reference walker), so no range to enforce
                pass
        self._batch_index = batch_index
        self._dtype = dtype
        self._leaf_steps = leaf_steps
        self._steps = steps
        self._frontier = frontier
        self._dependent = dependent
        self._out_indices = out_indices
        self._out_sizes = dict(out_sizes)
        self._root_perm = root_perm
        self._variant_leaf_steps = tuple(
            ls for ls in leaf_steps if ls.node in dependent
        )
        self._invariant_steps = tuple(s for s in steps if s.invariant)
        self._variant_steps = tuple(s for s in steps if not s.invariant)

    # ------------------------------------------------------------------
    @property
    def tree(self) -> ContractionTree:
        """The tree this plan was compiled from."""
        return self._tree

    @property
    def sliced(self) -> Tuple[str, ...]:
        """The enumerated sliced indices (excludes the batch index)."""
        return self._enumerated

    @property
    def batch_index(self) -> Optional[str]:
        """The sliced index kept as a batch axis, if any."""
        return self._batch_index

    @property
    def out_indices(self) -> Tuple[str, ...]:
        """Index order of the result (batch index leading when batched)."""
        return self._out_indices

    @property
    def num_steps(self) -> int:
        """Number of pair contractions in one full (uncached) execution."""
        return len(self._steps)

    @property
    def invariant_nodes(self) -> FrozenSet[int]:
        """Internal nodes whose contraction is slice-invariant."""
        return frozenset(s.node for s in self._invariant_steps)

    @property
    def dependent_nodes(self) -> FrozenSet[int]:
        """Nodes (leaves and internals) that depend on the slice assignment."""
        return self._dependent

    @property
    def frontier(self) -> FrozenSet[int]:
        """Maximal invariant subtree roots retained in the cache."""
        return self._frontier

    def invariant_log2_flops(self) -> float:
        """log2 of the per-subtask flops saved by the invariant cache."""
        total = sum(2.0**s.log2_flops for s in self._invariant_steps)
        return math.log2(total) if total else float("-inf")

    def matches_network(self, network: TensorNetwork) -> bool:
        """Whether the network's leaf index orders still match the plan.

        The plan bakes in each leaf's axis order; if a tensor was replaced
        with a permuted or re-indexed one, the plan must be recompiled.
        """
        try:
            return all(
                network.tensor(ls.tid).indices == ls.source_indices
                for ls in self._leaf_steps
            )
        except Exception:
            return False

    # ------------------------------------------------------------------
    def new_cache(self) -> Dict[int, np.ndarray]:
        """A fresh (empty) invariant-intermediate cache."""
        return {}

    def cache_is_warm(self, cache: Mapping[int, np.ndarray]) -> bool:
        """Whether every frontier intermediate is present in ``cache``."""
        return all(node in cache for node in self._frontier)

    def warm_cache(
        self,
        network: TensorNetwork,
        cache: Dict[int, np.ndarray],
        stats: Optional[PlanStats] = None,
    ) -> None:
        """Compute every slice-invariant intermediate once into ``cache``.

        Runs only the invariant portion of the plan (which touches no sliced
        index, hence needs no assignment); interior invariant buffers are
        freed as soon as they are consumed and only the frontier survives.
        """
        live: Dict[int, np.ndarray] = {}
        for ls in self._leaf_steps:
            if ls.node in self._dependent:
                continue
            live[ls.node] = self._load_leaf(network, ls, None)
        for step in self._invariant_steps:
            self._run_step(step, live)
            if stats is not None:
                stats.record_step(step.node)
            for child in step.free_full:
                if child not in self._frontier:
                    del live[child]
        for node in self._frontier:
            cache[node] = live[node]

    # ------------------------------------------------------------------
    def execute(
        self,
        network: TensorNetwork,
        assignment: Optional[Mapping[str, int]] = None,
        cache: Optional[Dict[int, np.ndarray]] = None,
        stats: Optional[PlanStats] = None,
    ) -> Tensor:
        """Contract the network for one slice assignment.

        Parameters
        ----------
        network:
            The concrete network the plan was compiled against.
        assignment:
            Value of every enumerated sliced index.
        cache:
            Optional invariant cache (from :meth:`new_cache`).  When given,
            only the slice-dependent part of the tree is recontracted; the
            cache is warmed on first use.
        stats:
            Optional instrumentation counters.
        """
        assignment = dict(assignment or {})
        if set(assignment) != set(self._enumerated):
            raise PlanError(
                f"assignment keys {sorted(assignment)} do not match the "
                f"plan's sliced indices {sorted(self._enumerated)}"
            )
        for ix, size in self._enumerated_sizes.items():
            # np.take would silently wrap negative values
            if not 0 <= assignment[ix] < size:
                raise PlanError(
                    f"slice value {assignment[ix]} out of range for index {ix!r}"
                )
        if stats is not None:
            stats.executions += 1

        if cache is None:
            live: Dict[int, np.ndarray] = {}
            for ls in self._leaf_steps:
                live[ls.node] = self._load_leaf(network, ls, assignment)
            for step in self._steps:
                self._run_step(step, live)
                if stats is not None:
                    stats.record_step(step.node)
                for child in step.free_full:
                    del live[child]
        else:
            if not self.cache_is_warm(cache):
                self.warm_cache(network, cache, stats)
            live = {node: cache[node] for node in self._frontier}
            if stats is not None:
                stats.cache_hits += len(self._frontier)
            for ls in self._variant_leaf_steps:
                live[ls.node] = self._load_leaf(network, ls, assignment)
            for step in self._variant_steps:
                self._run_step(step, live)
                if stats is not None:
                    stats.record_step(step.node)
                for child in step.free_cached:
                    del live[child]

        data = live[self._tree.root]
        if cache is not None and self._tree.root in self._frontier:
            # the root itself is cached (nothing is slice-dependent): hand
            # out a copy so callers cannot corrupt the shared cache buffer
            data = data.copy()
        if self._root_perm is not None:
            data = np.transpose(data, self._root_perm)
        return Tensor(self._out_indices, data=data, sizes=self._out_sizes)

    # ------------------------------------------------------------------
    def _load_leaf(
        self,
        network: TensorNetwork,
        leaf_step: LeafStep,
        assignment: Optional[Mapping[str, int]],
    ) -> np.ndarray:
        tensor = network.tensor(leaf_step.tid)
        data = tensor.data
        if data is None:
            raise ValueError(
                f"tensor {leaf_step.tid} is abstract; the executor needs "
                "concrete data"
            )
        for index, axis in leaf_step.takes:
            data = np.take(data, assignment[index], axis=axis)  # type: ignore[index]
        if self._dtype is not None:
            # convert after slicing so the cast copies only the slice
            data = np.asarray(data, dtype=self._dtype)
        return data

    @staticmethod
    def _run_step(step: ContractStep, live: Dict[int, np.ndarray]) -> None:
        a = live[step.lhs]
        b = live[step.rhs]
        if step.kind == "tensordot":
            out = np.tensordot(a, b, axes=step.axes)
        elif step.kind == "bmm":
            a3 = np.transpose(a, step.bmm_perm_lhs).reshape(step.bmm_lhs_shape)
            b3 = np.transpose(b, step.bmm_perm_rhs).reshape(step.bmm_rhs_shape)
            out = np.matmul(a3, b3).reshape(step.bmm_out_shape)
        else:
            out = np.einsum(a, step.sub_lhs, b, step.sub_rhs, step.sub_out)
        live[step.node] = out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledPlan(steps={len(self._steps)}, "
            f"invariant={len(self._invariant_steps)}, "
            f"sliced={list(self._enumerated)}, batch={self._batch_index!r})"
        )


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------
def compile_plan(
    network: TensorNetwork,
    tree: ContractionTree,
    sliced: AbstractSet[str] = frozenset(),
    batch_index: Optional[str] = None,
    dtype: Optional[np.dtype] = None,
) -> CompiledPlan:
    """Compile ``tree`` over ``network`` for a fixed slicing set.

    Parameters
    ----------
    network:
        The network whose leaf tensors will be contracted.  Only the index
        *structure* is baked into the plan; the numerical data is read fresh
        from the network at execution time.
    tree:
        Contraction tree whose ``leaf_tids`` refer to ``network``.
    sliced:
        The slicing set.  Every index in it is removed from the leaves; at
        execution time an assignment supplies the value of each one.
    batch_index:
        Optional member of ``sliced`` to keep as a live batch axis instead
        of enumerating it: the compiled steps carry it through to the root
        (leading axis), so a single execution sweeps all of its values.
    dtype:
        Optional dtype override applied to every leaf at load time.
    """
    sliced = frozenset(sliced)
    if batch_index is not None and batch_index not in sliced:
        raise PlanError(f"batch index {batch_index!r} is not in the sliced set")
    enumerated = frozenset(ix for ix in sliced if ix != batch_index)

    dependent = slice_dependent_nodes(tree, enumerated)

    orders: Dict[int, Tuple[str, ...]] = {}
    has_batch: Dict[int, bool] = {}
    leaf_steps: List[LeafStep] = []
    for leaf, tid in enumerate(tree.leaf_tids):
        tensor = network.tensor(tid)
        if frozenset(tensor.indices) != tree.node_indices(leaf):
            raise PlanError(
                f"leaf {leaf} (tensor {tid}) carries indices "
                f"{sorted(tensor.indices)} but the tree expects "
                f"{sorted(tree.node_indices(leaf))}; recompile the plan "
                "against the current network"
            )
        working = list(tensor.indices)
        takes: List[Tuple[str, int]] = []
        for ix in tensor.indices:
            if ix in enumerated:
                takes.append((ix, working.index(ix)))
                working.remove(ix)
        orders[leaf] = tuple(working)
        has_batch[leaf] = batch_index is not None and batch_index in working
        leaf_steps.append(
            LeafStep(
                node=leaf,
                tid=tid,
                takes=tuple(takes),
                out_indices=orders[leaf],
                source_indices=tensor.indices,
            )
        )

    # frontier: maximal slice-invariant subtree roots — the nodes whose
    # intermediates the cache retains across subtasks
    frontier: Set[int] = set()
    for node in tree.internal_nodes():
        if node in dependent:
            for child in tree.children(node):  # type: ignore[union-attr]
                if child not in dependent:
                    frontier.add(child)
    if tree.root not in dependent:
        # the whole tree is invariant (empty enumerated set): the cache
        # retains the root itself
        frontier.add(tree.root)

    steps: List[ContractStep] = []
    for node in tree.internal_nodes():
        lhs, rhs = tree.children(node)  # type: ignore[misc]
        a_ixs, b_ixs = orders[lhs], orders[rhs]
        a_set, b_set = set(a_ixs), set(b_ixs)
        out_set = {ix for ix in tree.node_indices(node) if ix not in enumerated}
        node_batch = has_batch[lhs] or has_batch[rhs]
        has_batch[node] = node_batch
        if node_batch:
            out_set.add(batch_index)  # never sum the batch axis

        shared = a_set & b_set
        contracted = [ix for ix in a_ixs if ix in shared and ix not in out_set]
        kept_shared = [ix for ix in a_ixs if ix in shared and ix in out_set]
        solo_summed = [
            ix for ix in (*a_ixs, *b_ixs) if ix not in shared and ix not in out_set
        ]
        out_order = [ix for ix in a_ixs if ix in out_set] + [
            ix for ix in b_ixs if ix in out_set and ix not in a_set
        ]

        invariant = node not in dependent

        kwargs: Dict[str, object] = {}
        if not kept_shared and not solo_summed:
            kind = "tensordot"
            kwargs["axes"] = (
                tuple(a_ixs.index(ix) for ix in contracted),
                tuple(b_ixs.index(ix) for ix in contracted),
            )
        elif (
            batch_index is not None
            and kept_shared == [batch_index]
            and not solo_summed
        ):
            kind = "bmm"
            size = tree.index_size
            m_ixs = [ix for ix in a_ixs if ix in out_set and ix != batch_index]
            n_ixs = [ix for ix in b_ixs if ix in out_set and ix != batch_index]
            w_b = size(batch_index)
            m = math.prod(size(ix) for ix in m_ixs)
            k = math.prod(size(ix) for ix in contracted)
            n = math.prod(size(ix) for ix in n_ixs)
            kwargs["bmm_perm_lhs"] = tuple(
                a_ixs.index(ix) for ix in (batch_index, *m_ixs, *contracted)
            )
            kwargs["bmm_perm_rhs"] = tuple(
                b_ixs.index(ix) for ix in (batch_index, *contracted, *n_ixs)
            )
            kwargs["bmm_lhs_shape"] = (w_b, m, k)
            kwargs["bmm_rhs_shape"] = (w_b, k, n)
            kwargs["bmm_out_shape"] = tuple(
                size(ix) for ix in (batch_index, *m_ixs, *n_ixs)
            )
            out_order = [batch_index, *m_ixs, *n_ixs]
        else:
            kind = "einsum"
            # integer axis labels (einsum's interleaved form): unlike spec
            # strings these are not limited to 52 ASCII symbols
            labels: Dict[str, int] = {}

            def label(ix: str) -> int:
                return labels.setdefault(ix, len(labels))

            kwargs["sub_lhs"] = tuple(label(ix) for ix in a_ixs)
            kwargs["sub_rhs"] = tuple(label(ix) for ix in b_ixs)
            kwargs["sub_out"] = tuple(label(ix) for ix in out_order)

        orders[node] = tuple(out_order)
        steps.append(
            ContractStep(
                node=node,
                lhs=lhs,
                rhs=rhs,
                kind=kind,
                out_indices=orders[node],
                invariant=invariant,
                free_full=(lhs, rhs),
                free_cached=tuple(c for c in (lhs, rhs) if c not in frontier),
                log2_flops=tree.node_log2_flops(node, enumerated),
                **kwargs,  # type: ignore[arg-type]
            )
        )

    root = tree.root
    root_order = orders[root]
    root_perm: Optional[Tuple[int, ...]] = None
    out_order_final = root_order
    if batch_index is not None and has_batch.get(root, False):
        if root_order and root_order[0] != batch_index:
            pos = root_order.index(batch_index)
            perm = (pos, *[i for i in range(len(root_order)) if i != pos])
            root_perm = perm
            out_order_final = tuple(root_order[i] for i in perm)
    out_sizes = {ix: tree.index_size(ix) for ix in out_order_final}

    return CompiledPlan(
        tree=tree,
        enumerated=tuple(sorted(enumerated)),
        batch_index=batch_index,
        dtype=np.dtype(dtype) if dtype is not None else None,
        leaf_steps=tuple(leaf_steps),
        steps=tuple(steps),
        frontier=frozenset(frontier),
        dependent=dependent,
        out_indices=out_order_final,
        out_sizes=out_sizes,
        root_perm=root_perm,
    )

