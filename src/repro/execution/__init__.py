"""Execution engines: numerical contraction, sliced execution, performance simulation."""

from .contract import TreeExecutor, contract_tree
from .sliced import SlicedExecutor, SubtaskResult
from .fused import ThreadLevelSimulator, ThreadTiming
from .sampling import CorrelatedSampleBatch, CorrelatedSampler, linear_xeb_fidelity
from .scaling import (
    GORDON_BELL_2021_PFLOPS,
    HeadlineProjection,
    ProcessScheduler,
    ScalingPoint,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "TreeExecutor",
    "contract_tree",
    "SlicedExecutor",
    "SubtaskResult",
    "CorrelatedSampleBatch",
    "CorrelatedSampler",
    "linear_xeb_fidelity",
    "ThreadLevelSimulator",
    "ThreadTiming",
    "GORDON_BELL_2021_PFLOPS",
    "HeadlineProjection",
    "ProcessScheduler",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
]
