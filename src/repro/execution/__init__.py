"""Execution engines: numerical contraction, sliced execution, performance simulation.

Executor architecture
---------------------
Numerical contraction has two paths that are cross-checked against each
other (and, for small circuits, against the dense state-vector simulator):

* **Reference path** — ``TreeExecutor(compiled=False)`` /
  ``SlicedExecutor(mode="reference")``: a deliberately simple einsum walker
  that re-builds spec strings, re-slices every leaf and re-contracts the
  whole tree for every call.  Slow, obviously correct, never optimized —
  it is the oracle of the equivalence tests.
* **Compiled path** (default) — :mod:`repro.execution.plan` compiles a
  contraction tree once into a :class:`CompiledPlan` of per-step
  ``tensordot`` axis pairs (with a precompiled einsum fallback for hyper
  indices), per-leaf slicing instructions, a lifetime-derived free/reuse
  schedule and a stem slot schedule (the stem's running tensor alternates
  between the two preallocated buffers of a :class:`StemSlots` arena).
  On top of the plan, :class:`SlicedExecutor` adds

  - *slice-invariant caching*: intermediates whose subtree no sliced
    edge's lifetime reaches are contracted once and shared across all
    ``prod w(e)`` subtasks,
  - *batched sweeps* (``batch_indices=``): a group of sliced indices is
    kept as leading batch axes and all of their value combinations execute
    in a single batched (BLAS ``matmul``) contraction, with the
    per-subtask plan compiled lazily so pure batched workloads skip it,
  - *fused stem sub-paths* (``fused=True`` / ``"auto"``): the §5
    secondary-slicing schedule executed for real by
    :mod:`repro.execution.fusion` — consecutive stem GEMMs run as
    :class:`FusedRun` groups whose intermediates stay in the
    :class:`StemSlots` arena, with operand permutations precompiled via
    the §5.3.1 reduced maps (identity permutations skipped, others a
    single gather into reused scratch) and group boundaries set by a
    cost-model-ranked working-set cap
    (:func:`repro.costs.fusion.select_fusion_cap`).  Bit-identical to the
    step-by-step path on every backend; fused plans ship through sessions
    and the process pool unchanged,
  - *native tape execution* (``tape_engine="auto"`` / ``"native"``): the
    fused sequence additionally lowered into a flat array-of-structs
    :class:`~repro.execution.tape.TapeProgram` — opcode/operand/axis
    tables plus a preallocated scratch arena — walked end-to-end by one
    numba-JIT kernel with no per-step Python dispatch
    (:mod:`repro.execution.tape`).  The program pickles to pool workers
    with the plan and each process JIT-compiles lazily at spawn; when
    numba is absent (it is an *optional* dependency) or any kernel issue
    arises, execution falls back to the bit-identical Python walker,
  - *pluggable scheduling* (``backend=``): the subtasks run through an
    :class:`ExecutionBackend` (see the guide below),
  - *pluggable kernels* (``array_module=``): every hot-path array
    operation dispatches through an :class:`ArrayModule`
    (:mod:`repro.execution.array_module`) — the default
    :class:`NumpyModule` is bit-identical to the pre-seam numpy calls,
    while :class:`TorchModule` / :class:`CupyModule` run the same plan on
    another substrate with leaves, slicing and accumulation staged on the
    host (see the module docstring for the host-staging contract).

Backend selection guide
-----------------------
*What* to contract (the compiled plan) is separate from *how* the subtasks
are scheduled (the backend).  All backends accumulate subtask results in
the same order and are **bit-identical** to each other; pick by workload
shape:

=============================== =====================================================
Backend                         Use when
=============================== =====================================================
``SerialBackend`` (default)     Few subtasks, or anything latency-sensitive: zero
                                scheduling overhead.
``ThreadPoolBackend``           Few *large* subtasks: numpy releases the GIL inside
                                the contraction kernels, so threads share the
                                invariant cache for free and scale with GEMM time.
``SharedMemoryProcessPool-``    Many *small* subtasks: the per-subtask Python
``Backend``                     overhead (leaf slicing, step dispatch) serializes a
                                thread pool; workers receive the warm invariant
                                cache and the leaf buffers once via
                                ``multiprocessing.shared_memory`` and then stream
                                chunks with no interpreter contention.
``DistributedBackend``          More subtask work than one node: chunks stream
                                over TCP sockets (or MPI) to remote worker
                                *processes* after a one-time plan/leaf/cache
                                broadcast — localhost workers are spawned
                                automatically, multi-node workers are reached via
                                ``"distributed:host:port,..."`` — see
                                :mod:`repro.execution.distributed` for topology,
                                failure semantics and the measured strong-scaling
                                sweep (:func:`measure_strong_scaling`).
=============================== =====================================================

The legacy ``max_workers=N`` argument survives as a deprecated shim on
every entry point (``SlicedExecutor``, ``TreeExecutor``,
``contract_tree``, ``CorrelatedSampler``): any non-``None`` value emits
one ``DeprecationWarning`` and resolves through ``resolve_backend`` (> 1
to a thread pool, <= 1 to serial).  ``mode="reference"`` (and
``executor_mode="reference"`` on :class:`CorrelatedSampler`) rejects both
``backend=`` and ``max_workers=`` with the same ``ValueError``.

Session lifecycle
-----------------
The process-pool backend's start-up cost — spawning workers, pickling the
plan into them, copying leaf buffers and the warm invariant cache into
shared-memory segments — is paid per ``run_subtasks`` call *unless* a
persistent :class:`ExecutionSession` is open.  A session keeps the pool,
the shipped plan and the published segments resident between runs::

    backend = SharedMemoryProcessPoolBackend(max_workers=8)
    executor = SlicedExecutor(network, tree, sliced, backend=backend)
    with executor.session():          # or: with backend.session(plan, network, cache):
        first = executor.run()        # cold: spawn + publish
        second = executor.run()       # warm: pool and segments reused

Staleness is tracked with a leaf-data snapshot fingerprint:

* **match** — the steady state: nothing is respawned or recopied;
* **data-only tensor replacement or plan recompilation** — the segments
  are *republished* and the workers re-initialize in place (the payload
  travels generation-tagged with the next chunks); the pool survives,
  which is what lets :meth:`CorrelatedSampler.session` amortize worker
  start-up across the per-bitstring networks of a sampling run;
* **axis-order mutation** — every published buffer layout is invalid, so
  the session is rebuilt from scratch (``reset_session``).

``close()`` is idempotent and also runs via a finalizer at garbage
collection, so segments are always unlinked and worker attachments closed
(workers additionally close their attachments in an exit hook) — the test
suite escalates ``multiprocessing.resource_tracker`` warnings to errors
to keep it that way.  Serial and thread backends return a no-op
:class:`NullExecutionSession`, so session-scoped code is uniform across
backends, and every path stays bit-identical to :class:`SerialBackend`.

Fault tolerance & degradation
-----------------------------
Every fault-handling decision lives in a
:class:`~repro.execution.resilience.FaultPolicy` (default **fail-fast**,
the zero-overhead pre-resilience behaviour).  ``FaultPolicy.retrying()``
re-runs failed chunks with deterministic exponential backoff and rebuilds
a crashed process pool — segments republished under a fresh generation,
only the chunks whose ordered slots are still empty re-submitted —
while ``FaultPolicy.degrading()`` additionally falls back down the
substrate chain (process pool → thread pool → serial) when pool recovery
is exhausted.  Because the backends fold per-position contributions
strictly in assignment order *after* all slots are filled, recovered and
degraded runs are **bit-identical** to a clean serial run.  Per-chunk
timeouts can be given explicitly or derived from the calibrated cost
model's predicted subtask seconds (``timeout_safety`` × prediction).
Deterministic fault *injection* for tests lives in
:mod:`repro.execution.faultinject`; recovery counters (``retries``,
``faults``, ``degraded_to``, ``recovery_seconds``) land on
:class:`PlanStats`.

Durability: :mod:`repro.execution.checkpoint` extends the recovery story
past the coordinator process itself.  ``SlicedExecutor.run(resume=...)``
(or a policy carrying ``checkpoint_dir``) write-ahead persists each
completed ordered slot to a :class:`CheckpointStore` ledger keyed by a
content fingerprint of the run; after a coordinator crash the next run
with the same fingerprint re-runs only the missing slots and — thanks to
the same ordered-accumulation contract — returns a result bit-identical
to an uninterrupted run on every backend/engine combination.  Payload
integrity is end-to-end: per-contribution CRC-32s travel with every
chunk, and a corrupted payload (:exc:`ChunkIntegrityError`) is retried
like any other chunk fault, never persisted.

``PlanStats`` instruments both cached and uncached execution with per-node
step counters (plus slot-write and branch-write counters) so tests and
benchmarks can assert how often each contraction actually ran — and with
per-subtask / per-stage wall times, which are the measured input of the
calibrated cost model (:mod:`repro.costs`): fit one with
``SlicedExecutor.calibration_record()`` →
``CalibratedCostModel.fit(...)``, or from the bench JSON via
``CalibratedCostModel.from_bench_json``.  Plans compiled with
``branch_buffers=True`` additionally recycle freed off-stem intermediates
through the arena's size-bucketed free list (bit-identical values; the
flag only changes where output buffers come from).
"""

from .array_module import (
    NUMPY_MODULE,
    ArrayModule,
    CupyModule,
    NumpyModule,
    TorchModule,
    resolve_array_module,
)
from .backend import (
    ExecutionBackend,
    ExecutionSession,
    NullExecutionSession,
    SerialBackend,
    SharedMemoryProcessPoolBackend,
    ThreadPoolBackend,
    resolve_backend,
    validate_execution_args,
)
from .checkpoint import (
    CheckpointError,
    CheckpointJob,
    CheckpointStore,
    job_fingerprint,
)
from .contract import TreeExecutor, contract_tree
from .distributed import (
    ClusterTransport,
    DistributedBackend,
    DistributedSession,
    DistributedWorkerError,
    LocalSocketTransport,
    MpiTransport,
    SocketTransport,
    TransportClosed,
    TransportError,
)
from .faultinject import (
    FaultInjector,
    FaultSpec,
    InjectedCoordinatorDeath,
    InjectedFault,
)
from .fusion import FusedOp, FusedRun, PermKernel, compile_fused_runs
from .plan import (
    CompiledPlan,
    ContractStep,
    LeafStep,
    PlanError,
    PlanStats,
    StemSlots,
    compile_plan,
)
from .resilience import (
    ChunkIntegrityError,
    ChunkTimeoutError,
    FaultError,
    FaultPolicy,
    RecoveryExhaustedError,
)
from .sliced import SlicedExecutor, SubtaskResult
from .tape import TapeProgram, interpret_program, lower_entries, native_available
from .fused import ThreadLevelSimulator, ThreadTiming
from .sampling import CorrelatedSampleBatch, CorrelatedSampler, linear_xeb_fidelity
from .scaling import (
    GORDON_BELL_2021_PFLOPS,
    HeadlineProjection,
    MeasuredScalingPoint,
    ProcessScheduler,
    ScalingPoint,
    measure_strong_scaling,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "ArrayModule",
    "CupyModule",
    "NumpyModule",
    "NUMPY_MODULE",
    "TorchModule",
    "resolve_array_module",
    "ExecutionBackend",
    "ExecutionSession",
    "NullExecutionSession",
    "SerialBackend",
    "SharedMemoryProcessPoolBackend",
    "ThreadPoolBackend",
    "resolve_backend",
    "validate_execution_args",
    "ClusterTransport",
    "DistributedBackend",
    "DistributedSession",
    "DistributedWorkerError",
    "LocalSocketTransport",
    "MpiTransport",
    "SocketTransport",
    "TransportClosed",
    "TransportError",
    "CheckpointError",
    "CheckpointJob",
    "CheckpointStore",
    "job_fingerprint",
    "ChunkIntegrityError",
    "ChunkTimeoutError",
    "FaultError",
    "FaultInjector",
    "FaultPolicy",
    "FaultSpec",
    "InjectedCoordinatorDeath",
    "InjectedFault",
    "RecoveryExhaustedError",
    "TreeExecutor",
    "contract_tree",
    "CompiledPlan",
    "ContractStep",
    "FusedOp",
    "FusedRun",
    "LeafStep",
    "PermKernel",
    "PlanError",
    "PlanStats",
    "StemSlots",
    "compile_plan",
    "compile_fused_runs",
    "SlicedExecutor",
    "SubtaskResult",
    "TapeProgram",
    "interpret_program",
    "lower_entries",
    "native_available",
    "CorrelatedSampleBatch",
    "CorrelatedSampler",
    "linear_xeb_fidelity",
    "ThreadLevelSimulator",
    "ThreadTiming",
    "GORDON_BELL_2021_PFLOPS",
    "HeadlineProjection",
    "MeasuredScalingPoint",
    "ProcessScheduler",
    "ScalingPoint",
    "measure_strong_scaling",
    "strong_scaling",
    "weak_scaling",
]
