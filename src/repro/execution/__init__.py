"""Execution engines: numerical contraction, sliced execution, performance simulation.

Executor architecture
---------------------
Numerical contraction has two paths that are cross-checked against each
other (and, for small circuits, against the dense state-vector simulator):

* **Reference path** — ``TreeExecutor(compiled=False)`` /
  ``SlicedExecutor(mode="reference")``: a deliberately simple einsum walker
  that re-builds spec strings, re-slices every leaf and re-contracts the
  whole tree for every call.  Slow, obviously correct, never optimized —
  it is the oracle of the equivalence tests.
* **Compiled path** (default) — :mod:`repro.execution.plan` compiles a
  contraction tree once into a :class:`CompiledPlan` of per-step
  ``tensordot`` axis pairs (with a precompiled einsum fallback for hyper
  indices), per-leaf slicing instructions and a lifetime-derived free/reuse
  schedule.  On top of the plan, :class:`SlicedExecutor` adds

  - *slice-invariant caching*: intermediates whose subtree no sliced
    edge's lifetime reaches are contracted once and shared across all
    ``prod w(e)`` subtasks,
  - *batched sweeps* (``batch_index=``): one sliced index is kept as a
    leading batch axis and all of its values execute in a single batched
    (BLAS ``matmul``) contraction,
  - an optional ``concurrent.futures`` thread pool over subtask chunks
    (``max_workers=``).

``PlanStats`` instruments both cached and uncached execution with per-node
step counters so tests and benchmarks can assert how often each contraction
actually ran.
"""

from .contract import TreeExecutor, contract_tree
from .plan import CompiledPlan, ContractStep, LeafStep, PlanError, PlanStats, compile_plan
from .sliced import SlicedExecutor, SubtaskResult
from .fused import ThreadLevelSimulator, ThreadTiming
from .sampling import CorrelatedSampleBatch, CorrelatedSampler, linear_xeb_fidelity
from .scaling import (
    GORDON_BELL_2021_PFLOPS,
    HeadlineProjection,
    ProcessScheduler,
    ScalingPoint,
    strong_scaling,
    weak_scaling,
)

__all__ = [
    "TreeExecutor",
    "contract_tree",
    "CompiledPlan",
    "ContractStep",
    "LeafStep",
    "PlanError",
    "PlanStats",
    "compile_plan",
    "SlicedExecutor",
    "SubtaskResult",
    "CorrelatedSampleBatch",
    "CorrelatedSampler",
    "linear_xeb_fidelity",
    "ThreadLevelSimulator",
    "ThreadTiming",
    "GORDON_BELL_2021_PFLOPS",
    "HeadlineProjection",
    "ProcessScheduler",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
]
