"""Distributed multi-node execution: sliced subtasks over sockets or MPI.

The paper's headline numbers come from farming the ``prod w(e)`` slicing
subtasks across *nodes*; until now the repo only modelled that
(:mod:`repro.execution.scaling`) while executing on in-process substrates.
This module adds the real thing behind the same
:class:`~repro.execution.backend.ExecutionBackend` protocol:

* :class:`DistributedBackend` — ``run_subtasks`` farms subtask chunks to
  remote worker *processes* over a :class:`ClusterTransport`;
* :class:`LocalSocketTransport` — spawns N localhost workers
  (``python -m repro.execution.worker --connect``) and accepts their TCP
  connections; the default, and what CI measures strong scaling against;
* :class:`SocketTransport` — connects out to pre-started workers
  (``--listen host:port``) given as ``addresses=［(host, port), ...］``,
  i.e. real multi-node operation with nothing but the stdlib;
* :class:`MpiTransport` — the same coordinator loop over ``mpi4py``
  point-to-point messages, import-guarded so the socket path never
  depends on an MPI stack.

Wire protocol (socket transports): length-prefixed pickle frames — an
8-byte big-endian length followed by the pickled message tuple.  State is
broadcast once and then only *chunk ids* stream out and small per-subtask
contributions stream back:

========================== ============================================
frame                      payload
========================== ============================================
``("hello", pid)``         worker handshake (worker → coordinator)
``("plan", (gen, blob))``  pickled ``(plan, sum_batch_axes)``
``("data", (gen, blob))``  pickled ``(leaf arrays, invariant cache)``
``("chunk", (...))``       ``(chunk id, plan gen, data gen,
                           [(position, assignment), ...], directive)``
``("result", (...))``      ``(chunk id, [contribution, ...],
                           [crc32, ...], stats)``
``("error", (...))``       ``(chunk id, repr(exc), traceback)``
``("shutdown", None)``     graceful worker exit
========================== ============================================

**Ordered accumulation.**  Workers return per-*position* contributions;
the coordinator folds them strictly in assignment order after every slot
is filled, exactly like the other pooled backends — so results are
bit-identical to :class:`~repro.execution.backend.SerialBackend` for
every worker count, chunk size and arrival order (a slow worker changes
*when* a contribution arrives, never *where* it folds).

**Sessions.**  :class:`DistributedSession` generalizes the shared-memory
:class:`~repro.execution.backend.ExecutionSession` to remote publication:
the same leaf-data fingerprint (plan identity, leaf tensor identities,
cache token, batch-axis count) splits invalidation into two generations —
a *plan* generation (rebroadcast the pickled plan) and a *data*
generation (republish only leaf/cache arrays).  A data-only tensor
replacement therefore re-ships the arrays without re-broadcasting the
plan, and both travel lazily: a worker is brought up to date right before
its next chunk, so freshly (re)spawned workers synchronize for free.

**Faults.**  The PR-6 resilience layer applies unchanged: a worker
disconnect re-queues its in-flight chunk on the surviving workers
(rebalance), total worker loss respawns up to the policy's pool-rebuild
budget (spawned transports only), and exhausted recovery degrades to the
local substrate chain (thread pool → serial) with only the still-empty
ordered slots re-run.  ``fail-fast`` (the default) propagates the first
fault, exactly like the other backends.  Deterministic fault injection
gains a ``"drop-connection"`` kind: the worker severs its socket
mid-chunk, the coordinator-side view of a cut network link.

**Durability.**  Result frames carry per-contribution CRC-32 checksums,
verified before a contribution reaches its ordered slot (a corrupt
payload — e.g. the injected ``"corrupt-result"`` fault — is retried as a
chunk failure).  Passing an open
:class:`~repro.execution.checkpoint.CheckpointJob` through
``run(checkpoint=...)`` write-ahead-persists each verified chunk to the
durable ledger of :mod:`repro.execution.checkpoint`, so even losing the
*coordinator* (crash, OOM, reboot) — after which this module's recovery
machinery no longer exists — leaves a ledger from which a fresh process
resumes bit-identically, re-running only the missing slots.

**Calibration.**  The coordinator measures, per chunk round-trip, the
wall time not covered by the worker's own compute samples and records it
as ``comms_seconds``/``comms_bytes``/``chunk_roundtrips`` on
:class:`~repro.execution.plan.PlanStats`.  Those feed the per-chunk
serialization + network terms of
:class:`~repro.costs.calibration.CalibrationRecord`, so a calibrated
cost model prices communication when predicting the ``"distributed"``
backend — and :func:`~repro.execution.scaling.measure_strong_scaling`
turns the §6.2 strong-scaling curve into a measurement against N
localhost workers.
"""

from __future__ import annotations

import os
import pickle
import select
import socket
import struct
import subprocess
import sys
import time
import weakref
from collections import deque
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..tensornet.network import TensorNetwork
from ..tensornet.tensor import Tensor
from .backend import ExecutionSession, _PooledBackend
from .checkpoint import CheckpointJob, verify_payload
from .faultinject import FaultInjector, apply_coordinator_directive
from .plan import CompiledPlan, PlanStats
from .resilience import (
    FAIL_FAST,
    ChunkIntegrityError,
    ChunkTimeoutError,
    FaultError,
    FaultPolicy,
    RecoveryClock,
    RecoveryExhaustedError,
    run_degraded,
)

__all__ = [
    "ClusterTransport",
    "DistributedBackend",
    "DistributedSession",
    "DistributedWorkerError",
    "LocalSocketTransport",
    "MpiTransport",
    "SocketTransport",
    "TransportClosed",
    "TransportError",
    "WorkerLink",
]


# ----------------------------------------------------------------------
# Frame protocol (shared with repro.execution.worker)
# ----------------------------------------------------------------------
#: 8-byte big-endian frame-length prefix.
_FRAME_HEADER = struct.Struct(">Q")


class TransportError(FaultError):
    """A cluster-transport operation failed (connect, send, receive)."""


class TransportClosed(TransportError):
    """The peer closed the connection (EOF mid-frame or between frames)."""


def send_frame(sock: socket.socket, message: object) -> int:
    """Send one length-prefixed pickle frame; returns bytes written."""
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    try:
        sock.sendall(_FRAME_HEADER.pack(len(blob)) + blob)
    except OSError as exc:
        raise TransportClosed(f"connection lost while sending: {exc}") from exc
    return _FRAME_HEADER.size + len(blob)


def recv_frame(sock: socket.socket) -> Tuple[object, int]:
    """Receive one frame; returns ``(message, bytes read)``."""
    header = _recv_exact(sock, _FRAME_HEADER.size)
    (length,) = _FRAME_HEADER.unpack(header)
    blob = _recv_exact(sock, length)
    return pickle.loads(blob), _FRAME_HEADER.size + length


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    buffer = bytearray()
    while len(buffer) < count:
        try:
            chunk = sock.recv(count - len(buffer))
        except OSError as exc:
            raise TransportClosed(f"connection lost while receiving: {exc}") from exc
        if not chunk:
            raise TransportClosed("peer closed the connection")
        buffer.extend(chunk)
    return bytes(buffer)


class DistributedWorkerError(FaultError):
    """A chunk raised inside a remote worker.

    The original exception cannot cross the wire reliably (its class may
    not even import on the coordinator), so the worker ships ``repr`` and
    traceback text instead, carried here for diagnosis.
    """

    def __init__(self, worker_id: int, exc_repr: str, traceback_text: str) -> None:
        super().__init__(f"worker {worker_id} chunk failed: {exc_repr}")
        self.worker_id = worker_id
        self.exc_repr = exc_repr
        self.traceback_text = traceback_text


# ----------------------------------------------------------------------
# Worker links and transports
# ----------------------------------------------------------------------
class _Inflight:
    """Bookkeeping for the one chunk a worker is currently executing."""

    __slots__ = ("chunk_index", "sent_at", "chunk_bytes", "deadline")

    def __init__(
        self,
        chunk_index: int,
        sent_at: float,
        chunk_bytes: int,
        deadline: Optional[float],
    ) -> None:
        self.chunk_index = chunk_index
        self.sent_at = sent_at
        self.chunk_bytes = chunk_bytes
        self.deadline = deadline


class WorkerLink:
    """One connected worker: socket, generation bookkeeping, liveness."""

    def __init__(self, sock: socket.socket, worker_id: int) -> None:
        self._sock: Optional[socket.socket] = sock
        self.worker_id = worker_id
        self.pid: Optional[int] = None
        self.alive = True
        #: Generations this worker confirmed-received (synced at dispatch).
        self.plan_generation = -1
        self.data_generation = -1
        self.inflight: Optional[_Inflight] = None

    def send(self, message: object) -> int:
        if not self.alive or self._sock is None:
            raise TransportClosed(f"worker {self.worker_id} is gone")
        try:
            return send_frame(self._sock, message)
        except TransportError:
            self.kill()
            raise

    def recv(self) -> Tuple[object, int]:
        if not self.alive or self._sock is None:
            raise TransportClosed(f"worker {self.worker_id} is gone")
        try:
            return recv_frame(self._sock)
        except TransportError:
            self.kill()
            raise

    def fileno(self) -> int:
        if self._sock is None:
            raise TransportClosed(f"worker {self.worker_id} is gone")
        return self._sock.fileno()

    def kill(self) -> None:
        """Drop the connection; idempotent."""
        self.alive = False
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "dead"
        return f"WorkerLink(id={self.worker_id}, pid={self.pid}, {state})"


class ClusterTransport:
    """Seam between the coordinator loop and how workers are reached.

    A transport knows how to *produce* connected :class:`WorkerLink`
    objects (:meth:`launch`), optionally how to produce replacements
    after total worker loss (:meth:`respawn`, gated by
    :attr:`supports_respawn`), and how to *wait* for any of a set of
    links to have a frame ready (:meth:`wait` — ``select`` for sockets,
    ``iprobe`` polling for MPI).  The coordinator is otherwise identical
    across transports.
    """

    name = "transport"
    #: Whether :meth:`respawn` can replace dead workers mid-run.
    supports_respawn = False

    def launch(self, count: int) -> List[WorkerLink]:
        """Bring up ``count`` workers and return their links."""
        raise NotImplementedError

    def respawn(self, count: int) -> List[WorkerLink]:
        """Replacement workers after total loss (spawned transports only)."""
        raise TransportError(f"the {self.name} transport cannot respawn workers")

    def wait(
        self, links: Sequence[WorkerLink], timeout: Optional[float]
    ) -> List[WorkerLink]:
        """Links with a frame ready to read (may be empty on timeout)."""
        watchable = [link for link in links if link.alive]
        if not watchable:
            return []
        readable, _, _ = select.select(watchable, [], [], timeout)
        return list(readable)

    def close(self) -> None:
        """Release transport-owned resources (idempotent)."""


def _worker_environment() -> Dict[str, str]:
    """Spawn environment whose ``PYTHONPATH`` can import this repro tree."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


class LocalSocketTransport(ClusterTransport):
    """Spawn localhost worker processes and accept their TCP connections.

    The coordinator binds an ephemeral ``127.0.0.1`` listener once, then
    every (re)spawn starts ``python -m repro.execution.worker --connect
    host:port`` subprocesses and accepts their connections.  Workers exit
    on coordinator EOF, and :meth:`close` terminates any stragglers, so
    no process outlives the session that spawned it.
    """

    name = "sockets"
    supports_respawn = True

    def __init__(
        self, python: Optional[str] = None, spawn_timeout: float = 120.0
    ) -> None:
        self._python = python or sys.executable
        self._spawn_timeout = float(spawn_timeout)
        self._listener: Optional[socket.socket] = None
        self._processes: List[subprocess.Popen] = []
        self._next_worker_id = 0

    def launch(self, count: int) -> List[WorkerLink]:
        if self._listener is None:
            self._listener = socket.create_server(("127.0.0.1", 0))
            self._listener.settimeout(self._spawn_timeout)
        host, port = self._listener.getsockname()[:2]
        env = _worker_environment()
        for _ in range(count):
            self._processes.append(
                subprocess.Popen(
                    [
                        self._python,
                        "-m",
                        "repro.execution.worker",
                        "--connect",
                        f"{host}:{port}",
                    ],
                    env=env,
                    stdin=subprocess.DEVNULL,
                )
            )
        links: List[WorkerLink] = []
        try:
            for _ in range(count):
                links.append(self._accept_link())
        except BaseException:
            for link in links:
                link.kill()
            raise
        return links

    def respawn(self, count: int) -> List[WorkerLink]:
        return self.launch(count)

    def _accept_link(self) -> WorkerLink:
        assert self._listener is not None
        try:
            conn, _ = self._listener.accept()
        except socket.timeout as exc:
            raise TransportError(
                f"no worker connected within {self._spawn_timeout:.0f}s "
                "(worker process failed to start?)"
            ) from exc
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn.settimeout(self._spawn_timeout)
        link = WorkerLink(conn, self._next_worker_id)
        self._next_worker_id += 1
        return _handshake(link, conn)

    def close(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:  # pragma: no cover - defensive
                pass
        processes, self._processes = self._processes, []
        for process in processes:
            if process.poll() is None:
                try:
                    process.terminate()
                except OSError:  # pragma: no cover - defensive
                    pass
        deadline = time.monotonic() + 5.0
        for process in processes:
            try:
                process.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                process.kill()
                process.wait(timeout=5.0)


def _handshake(link: WorkerLink, conn: socket.socket) -> WorkerLink:
    """Read the worker's hello frame and arm the link for blocking I/O."""
    try:
        message, _ = link.recv()
    except TransportError:
        link.kill()
        raise TransportError("worker handshake failed (no hello frame)")
    if not (isinstance(message, tuple) and len(message) == 2 and message[0] == "hello"):
        link.kill()
        raise TransportError(f"worker handshake failed (got {message!r})")
    link.pid = message[1]
    conn.settimeout(None)
    return link


class SocketTransport(ClusterTransport):
    """Connect out to pre-started workers at the given ``(host, port)``s.

    The multi-node form: start ``python -m repro.execution.worker
    --listen host:port`` on each node, then point the coordinator at the
    addresses (e.g. ``resolve_backend("distributed:hostA:9001,hostB:9001")``).
    The transport cannot respawn remote processes, so total worker loss
    skips straight to the degradation chain.
    """

    name = "sockets"
    supports_respawn = False

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        connect_timeout: float = 30.0,
    ) -> None:
        if not addresses:
            raise ValueError("SocketTransport needs at least one worker address")
        self._addresses = [(str(host), int(port)) for host, port in addresses]
        self._connect_timeout = float(connect_timeout)

    def launch(self, count: int) -> List[WorkerLink]:
        # count is advisory here: the address list *is* the cluster
        links: List[WorkerLink] = []
        try:
            for worker_id, (host, port) in enumerate(self._addresses):
                try:
                    conn = socket.create_connection(
                        (host, port), timeout=self._connect_timeout
                    )
                except OSError as exc:
                    raise TransportError(
                        f"cannot connect to worker at {host}:{port}: {exc}"
                    ) from exc
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                links.append(_handshake(WorkerLink(conn, worker_id), conn))
        except BaseException:
            for link in links:
                link.kill()
            raise
        return links


class MpiTransport(ClusterTransport):
    """The same coordinator loop over ``mpi4py`` point-to-point messages.

    Rank 0 is the coordinator; every other rank of ``COMM_WORLD`` runs
    the worker loop (``python -m repro.execution.worker --mpi`` under
    ``mpiexec``).  Frames are the same pickled message tuples, carried by
    ``comm.send``/``comm.recv`` instead of length-prefixed socket writes;
    :meth:`wait` polls ``iprobe``.  Import-guarded: constructing this
    transport without ``mpi4py`` installed raises a :class:`TransportError`
    naming the socket alternative, so the default path never needs an MPI
    stack.
    """

    name = "mpi"
    supports_respawn = False

    _FRAME_TAG = 7

    def __init__(self) -> None:
        try:
            from mpi4py import MPI  # noqa: PLC0415 - optional dependency
        except ImportError as exc:
            raise TransportError(
                "the MPI transport requires mpi4py, which is not installed; "
                "use the default socket transport "
                "(DistributedBackend(transport='sockets')) or install mpi4py "
                "and launch via mpiexec with repro.execution.worker --mpi"
            ) from exc
        self._mpi = MPI  # pragma: no cover - requires an MPI stack
        self._comm = MPI.COMM_WORLD  # pragma: no cover
        if self._comm.Get_size() < 2:  # pragma: no cover
            raise TransportError(
                "the MPI transport needs at least 2 ranks (coordinator + workers)"
            )

    def launch(self, count: int) -> List[WorkerLink]:  # pragma: no cover
        size = self._comm.Get_size()
        return [
            _MpiWorkerLink(self._comm, rank, self._FRAME_TAG)
            for rank in range(1, size)
        ]

    def wait(self, links, timeout):  # pragma: no cover - requires an MPI stack
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            ready = [link for link in links if link.alive and link.probe()]
            if ready:
                return ready
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(0.001)


class _MpiWorkerLink(WorkerLink):  # pragma: no cover - requires an MPI stack
    """A worker rank reached through ``comm.send``/``comm.recv``."""

    def __init__(self, comm, rank: int, tag: int) -> None:
        super().__init__(sock=None, worker_id=rank)  # type: ignore[arg-type]
        self._comm = comm
        self._rank = rank
        self._tag = tag
        self.alive = True
        self.pid = rank

    def send(self, message: object) -> int:
        try:
            self._comm.send(message, dest=self._rank, tag=self._tag)
        except Exception as exc:
            self.kill()
            raise TransportClosed(f"MPI send to rank {self._rank} failed") from exc
        return len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))

    def recv(self) -> Tuple[object, int]:
        try:
            message = self._comm.recv(source=self._rank, tag=self._tag)
        except Exception as exc:
            self.kill()
            raise TransportClosed(f"MPI recv from rank {self._rank} failed") from exc
        return message, len(pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))

    def probe(self) -> bool:
        return bool(self._comm.iprobe(source=self._rank, tag=self._tag))

    def fileno(self) -> int:
        raise TransportError("MPI links have no file descriptor")

    def kill(self) -> None:
        self.alive = False


# ----------------------------------------------------------------------
# The distributed session (coordinator loop)
# ----------------------------------------------------------------------
class _SessionResources:
    """Links + transport of one session, released together by a finalizer."""

    __slots__ = ("links", "transport")

    def __init__(self) -> None:
        self.links: List[WorkerLink] = []
        self.transport: Optional[ClusterTransport] = None


def _release_session_resources(resources: _SessionResources) -> None:
    """Ask workers to exit, drop the links, close the transport."""
    links, resources.links[:] = list(resources.links), []
    transport, resources.transport = resources.transport, None
    for link in links:
        if link.alive:
            try:
                link.send(("shutdown", None))
            except TransportError:  # pragma: no cover - already gone
                pass
        link.kill()
    if transport is not None:
        transport.close()


class DistributedSession:
    """Resident cluster state of a :class:`DistributedBackend`.

    The remote generalization of the shared-memory
    :class:`~repro.execution.backend.ExecutionSession`: instead of a pool
    and shared-memory segments it keeps the worker connections and the
    two broadcast payloads alive across ``run_subtasks`` calls.  The same
    leaf-data snapshot fingerprint drives invalidation, split into two
    generation counters:

    * **plan generation** — bumped when the compiled plan (or batch-axis
      count) changes; the pickled plan is re-broadcast;
    * **data generation** — bumped when only leaf tensors or the
      invariant cache changed; just the arrays are republished, the plan
      broadcast is *not* repeated.

    Payloads travel lazily: a link records which generations its worker
    holds, and the dispatcher prepends the missing broadcast frames to
    the worker's next chunk — TCP ordering makes the sync race-free and a
    freshly (re)spawned worker needs no special casing.

    The session is also where distributed *fault recovery* happens: a
    disconnected worker's in-flight chunk is re-queued on the survivors,
    total loss respawns workers (spawned transports, within the policy's
    pool-rebuild budget), and timeouts sever the link of a wedged worker.
    A failed run marks the session broken; the next :meth:`ensure` resets
    it transparently, exactly like the shared-memory session.
    """

    def __init__(self, backend: "DistributedBackend") -> None:
        self._backend = backend
        self._resources = _SessionResources()
        self._finalizer = weakref.finalize(
            self, _release_session_resources, self._resources
        )
        self._broken = False
        self._plan: Optional[CompiledPlan] = None
        self._leaf_tensors: Tuple[Tensor, ...] = ()
        self._cache_token: Optional[Tuple] = None
        self._cache_buffers: Tuple[np.ndarray, ...] = ()
        self._sum_batch_axes: Optional[int] = None
        self._plan_generation = -1
        self._data_generation = -1
        self._plan_blob: Optional[bytes] = None
        self._data_blob: Optional[bytes] = None
        #: Plan broadcasts performed (a publication event, not per worker).
        self.plan_broadcasts = 0
        #: Data publications performed (includes those riding a plan change).
        self.data_publications = 0
        #: Worker processes/connections brought up, including respawns.
        self.worker_launches = 0
        #: Total-loss respawn cycles performed.
        self.respawns = 0
        #: Bytes of broadcast payloads shipped (plan + data, all workers).
        self.broadcast_bytes = 0

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        """Whether the session has been closed."""
        return not self._finalizer.alive

    @property
    def broken(self) -> bool:
        """Whether the last run failed (healed transparently on next use)."""
        return self._broken

    @property
    def workers_live(self) -> int:
        """Connected workers currently alive."""
        return sum(1 for link in self._links if link.alive)

    @property
    def plan_generation(self) -> int:
        """Current plan broadcast generation (-1 before the first)."""
        return self._plan_generation

    @property
    def data_generation(self) -> int:
        """Current data publication generation (-1 before the first)."""
        return self._data_generation

    @property
    def _links(self) -> List[WorkerLink]:
        return self._resources.links

    def close(self) -> None:
        """Shut workers down and close the transport; safe to call twice."""
        self._finalizer()
        self._drop_fingerprint()
        backend = self._backend
        if backend is not None and backend._session is self:
            backend._session = None

    def reset(self) -> None:
        """Tear everything down but keep the session usable.

        The next run relaunches workers and re-broadcasts from scratch —
        the full-rebuild path for axis-order mutations
        (:meth:`~repro.execution.backend.ExecutionBackend.reset_session`).
        """
        if self.closed:
            return
        _release_session_resources(self._resources)
        self._drop_fingerprint()

    def _drop_fingerprint(self) -> None:
        self._broken = False
        self._plan = None
        self._leaf_tensors = ()
        self._cache_token = None
        self._cache_buffers = ()
        self._sum_batch_axes = None
        self._plan_blob = None
        self._data_blob = None

    def __enter__(self) -> "DistributedSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def ensure(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
    ) -> None:
        """Bring workers and broadcast payloads up to date; heal if broken."""
        if self.closed:
            raise RuntimeError("distributed session is closed")
        if self._broken:
            self.reset()
        try:
            self._ensure(plan, network, cache, sum_batch_axes)
        except BaseException:
            self._broken = True
            raise

    def _ensure(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]],
        sum_batch_axes: int,
    ) -> None:
        if self._resources.transport is None:
            self._resources.transport = self._backend._make_transport()
        if not any(link.alive for link in self._links):
            self._links[:] = []
            self._launch(self._backend.max_workers)

        leaf_tensors = tuple(network.tensor(ls.tid) for ls in plan.leaf_steps)
        cache_token, cache_buffers = ExecutionSession._cache_fingerprint(cache)
        plan_changed = (
            self._plan_blob is None
            or plan is not self._plan
            or sum_batch_axes != self._sum_batch_axes
        )
        data_changed = (
            plan_changed
            or self._data_blob is None
            or leaf_tensors != self._leaf_tensors
            or cache_token != self._cache_token
        )
        if plan_changed:
            self._plan_generation += 1
            self._plan_blob = pickle.dumps(
                (plan, sum_batch_axes), protocol=pickle.HIGHEST_PROTOCOL
            )
            self.plan_broadcasts += 1
        if data_changed:
            self._data_generation += 1
            self._data_blob = self._data_payload(plan, network, cache)
            self.data_publications += 1
        self._plan = plan
        self._leaf_tensors = leaf_tensors
        self._cache_token = cache_token
        self._cache_buffers = cache_buffers
        self._sum_batch_axes = sum_batch_axes

    @staticmethod
    def _data_payload(
        plan: CompiledPlan,
        network: TensorNetwork,
        cache: Optional[Dict[int, np.ndarray]],
    ) -> bytes:
        """Pickle the arrays workers need: leaves (+ warm invariant cache).

        Mirrors the shared-memory publication: with a warm cache only the
        slice-dependent leaves ship (the cache covers the rest); without
        one every leaf does.
        """
        if cache is not None:
            needed = [ls for ls in plan.leaf_steps if ls.node in plan.dependent_nodes]
            cache_payload: Optional[Dict[int, np.ndarray]] = {
                node: np.ascontiguousarray(buffer) for node, buffer in cache.items()
            }
        else:
            needed = list(plan.leaf_steps)
            cache_payload = None
        leaves: Dict[int, Tuple[Tuple[str, ...], np.ndarray]] = {}
        for ls in needed:
            tensor = network.tensor(ls.tid)
            leaves[ls.tid] = (
                tensor.indices,
                np.ascontiguousarray(tensor.require_data()),
            )
        return pickle.dumps((leaves, cache_payload), protocol=pickle.HIGHEST_PROTOCOL)

    def _launch(self, count: int) -> None:
        transport = self._resources.transport
        assert transport is not None
        links = transport.launch(count)
        self._links.extend(links)
        self.worker_launches += len(links)

    # ------------------------------------------------------------------
    def run(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> List[Optional[np.ndarray]]:
        """Stream chunks through the cluster; per-position contributions.

        The caller (the backend) folds the returned contributions
        strictly in assignment order, so arrival order — adversarial or
        not — cannot perturb the ordered-accumulation contract.

        ``checkpoint`` (an open durable ledger; see
        :mod:`repro.execution.checkpoint`) pre-fills slots persisted by a
        previous run and write-ahead-records each verified chunk.
        """
        if policy is None:
            policy = self._backend.fault_policy or FAIL_FAST
        if injector is None:
            injector = self._backend.fault_injector
        self.ensure(plan, network, cache, sum_batch_axes)
        try:
            return self._run_resilient(
                assignments, stats, policy, injector, checkpoint
            )
        except BaseException:
            self._broken = True
            raise

    def _dispatch(
        self,
        link: WorkerLink,
        chunk_index: int,
        chunk: List[Tuple[int, Mapping[str, int]]],
        policy: FaultPolicy,
        injector: Optional[FaultInjector],
    ) -> None:
        """Sync the worker's generations, then send it one chunk."""
        if link.plan_generation != self._plan_generation:
            self.broadcast_bytes += link.send(
                ("plan", (self._plan_generation, self._plan_blob))
            )
            link.plan_generation = self._plan_generation
        if link.data_generation != self._data_generation:
            self.broadcast_bytes += link.send(
                ("data", (self._data_generation, self._data_blob))
            )
            link.data_generation = self._data_generation
        directive = (
            injector.directive_for_next_chunk() if injector is not None else None
        )
        chunk_bytes = link.send(
            (
                "chunk",
                (
                    chunk_index,
                    self._plan_generation,
                    self._data_generation,
                    chunk,
                    directive,
                ),
            )
        )
        budget = policy.chunk_timeout(len(chunk))
        now = time.monotonic()
        link.inflight = _Inflight(
            chunk_index, now, chunk_bytes, None if budget is None else now + budget
        )

    def _run_resilient(
        self,
        assignments: Sequence[Mapping[str, int]],
        stats: Optional[PlanStats],
        policy: FaultPolicy,
        injector: Optional[FaultInjector],
        checkpoint: Optional[CheckpointJob] = None,
    ) -> List[Optional[np.ndarray]]:
        transport = self._resources.transport
        assert transport is not None
        chunks = self._backend._chunks(assignments)
        contributions: List[Optional[np.ndarray]] = [None] * len(assignments)
        if checkpoint is not None:
            for position, loaded in checkpoint.loaded.items():
                contributions[position] = loaded
        failures = [0] * len(chunks)
        # chunks fully covered by the ledger never hit the wire; a
        # partially-covered chunk re-runs whole (deterministic subtasks
        # make the overwrite bit-identical, and already-durable slots are
        # skipped by the ledger's record)
        queue: deque = deque(
            index
            for index, chunk in enumerate(chunks)
            if any(contributions[position] is None for position, _ in chunk)
        )
        respawns_used = 0

        def chunk_failed(chunk_index: int, error: BaseException) -> None:
            # a chunk-level fault (the worker survived and reported it):
            # counted against the chunk's own retry budget
            if stats is not None:
                stats.faults += 1
            failures[chunk_index] += 1
            if failures[chunk_index] > policy.chunk_retry_budget:
                if policy.mode == "fail-fast":
                    raise error
                raise RecoveryExhaustedError(
                    f"chunk {chunk_index} failed {failures[chunk_index]} "
                    f"times: {error!r}",
                    contributions,
                ) from error
            if stats is not None:
                stats.retries += 1
            with RecoveryClock(stats):
                backoff = policy.backoff(failures[chunk_index] - 1)
                if backoff > 0:
                    time.sleep(backoff)
            queue.append(chunk_index)

        def fail_link(link: WorkerLink, error: BaseException) -> None:
            # a worker-level fault (disconnect, wedge): sever the link and
            # rebalance its in-flight chunk onto the survivors.  Worker
            # loss does not consume the chunk's retry budget — workers
            # only ever deplete, and total loss is budgeted separately
            # through the policy's pool-rebuild allowance.
            inflight, link.inflight = link.inflight, None
            link.kill()
            if stats is not None:
                stats.faults += 1
            if policy.mode == "fail-fast":
                raise error
            if inflight is not None:
                if stats is not None:
                    stats.retries += 1
                queue.appendleft(inflight.chunk_index)

        def handle_frame(link: WorkerLink) -> None:
            try:
                message, frame_bytes = link.recv()
            except TransportError as exc:
                fail_link(link, exc)
                return
            kind, payload = message
            if kind == "result":
                chunk_id, arrays, checksums, local_stats = payload
                inflight = link.inflight
                if (
                    inflight is None
                    or chunk_id != inflight.chunk_index
                    or len(arrays) != len(chunks[chunk_id])
                ):
                    fail_link(
                        link,
                        TransportError(
                            f"worker {link.worker_id} answered chunk "
                            f"{chunk_id} out of turn"
                        ),
                    )
                    return
                link.inflight = None
                if not verify_payload(arrays, checksums):
                    # poisoned payload: discard before it can reach an
                    # ordered slot or the durable ledger; charged to the
                    # chunk's retry budget like any other chunk failure
                    chunk_failed(
                        chunk_id,
                        ChunkIntegrityError(
                            f"chunk {chunk_id} from worker {link.worker_id} "
                            f"failed its payload checksum"
                        ),
                    )
                    return
                for (position, _), contribution in zip(chunks[chunk_id], arrays):
                    contributions[position] = contribution
                if stats is not None:
                    stats.merge(local_stats)
                    # everything the worker's own compute samples do not
                    # cover — serialization, transfer, dispatch — is the
                    # communication overhead the cost model prices
                    roundtrip = time.monotonic() - inflight.sent_at
                    compute = local_stats.subtask_seconds_sum
                    stats.comms_seconds += max(0.0, roundtrip - compute)
                    stats.comms_bytes += inflight.chunk_bytes + frame_bytes
                    stats.chunk_roundtrips += 1
                if checkpoint is not None:
                    checkpoint.record_chunk(
                        [position for position, _ in chunks[chunk_id]], arrays
                    )
                if injector is not None:
                    # coordinator-side faults fire here, after the chunk's
                    # slots are durable — InjectedCoordinatorDeath is a
                    # BaseException, so no recovery path intercepts it
                    apply_coordinator_directive(
                        injector.coordinator_directive_for_next_harvest()
                    )
            elif kind == "error":
                chunk_id, exc_repr, traceback_text = payload
                inflight, link.inflight = link.inflight, None
                if inflight is None or chunk_id != inflight.chunk_index:
                    fail_link(
                        link,
                        TransportError(
                            f"worker {link.worker_id} reported an error for "
                            f"chunk {chunk_id} out of turn"
                        ),
                    )
                    return
                chunk_failed(
                    chunk_id,
                    DistributedWorkerError(link.worker_id, exc_repr, traceback_text),
                )
            else:
                fail_link(
                    link,
                    TransportError(
                        f"unexpected frame kind {kind!r} from worker "
                        f"{link.worker_id}"
                    ),
                )

        while queue or any(
            link.inflight is not None for link in self._links if link.alive
        ):
            live = [link for link in self._links if link.alive]
            if not live:
                if (
                    transport.supports_respawn
                    and respawns_used < policy.pool_rebuild_budget
                ):
                    respawns_used += 1
                    self.respawns += 1
                    with RecoveryClock(stats):
                        backoff = policy.backoff(respawns_used - 1)
                        if backoff > 0:
                            time.sleep(backoff)
                        self._launch(self._backend.max_workers)
                    continue
                raise RecoveryExhaustedError(
                    f"all distributed workers are gone with {len(queue)} "
                    f"chunks unfinished (respawn budget "
                    f"{policy.pool_rebuild_budget}, used {respawns_used})",
                    contributions,
                )

            # keep every idle worker busy with one chunk at a time: the
            # stream is self-balancing, a slow worker simply pulls fewer
            for link in live:
                if not queue:
                    break
                if not link.alive or link.inflight is not None:
                    continue
                chunk_index = queue.popleft()
                try:
                    self._dispatch(link, chunk_index, chunks[chunk_index],
                                   policy, injector)
                except TransportError as exc:
                    queue.appendleft(chunk_index)
                    fail_link(link, exc)

            busy = [
                link
                for link in self._links
                if link.alive and link.inflight is not None
            ]
            if not busy:
                continue
            now = time.monotonic()
            wait_timeout: Optional[float] = None
            for link in busy:
                deadline = link.inflight.deadline
                if deadline is not None:
                    remaining = max(0.0, deadline - now)
                    wait_timeout = (
                        remaining
                        if wait_timeout is None
                        else min(wait_timeout, remaining)
                    )
            for link in transport.wait(busy, wait_timeout):
                if link.alive:
                    handle_frame(link)
            now = time.monotonic()
            for link in busy:
                inflight = link.inflight
                if (
                    link.alive
                    and inflight is not None
                    and inflight.deadline is not None
                    and now >= inflight.deadline
                ):
                    # the worker may be wedged mid-chunk; severing the
                    # link is the only preemption a remote process allows
                    fail_link(
                        link,
                        ChunkTimeoutError(
                            f"chunk {inflight.chunk_index} exceeded its "
                            f"timeout budget on worker {link.worker_id}"
                        ),
                    )
        return contributions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else f"{self.workers_live} workers"
        return (
            f"DistributedSession({state}, plan_gen={self._plan_generation}, "
            f"data_gen={self._data_generation})"
        )


# ----------------------------------------------------------------------
# The backend
# ----------------------------------------------------------------------
def _parse_address(spec: str) -> Tuple[str, int]:
    host, _, port = spec.strip().rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(
            f"bad worker address {spec!r} (expected 'host:port')"
        )
    return host, int(port)


def _default_worker_count() -> int:
    """Two workers minimum (it is a *distributed* backend), four at most."""
    return max(2, min(4, os.cpu_count() or 2))


class DistributedBackend(_PooledBackend):
    """Farm subtask chunks to remote worker processes over a transport.

    Implements the same ``run_subtasks`` contract as the in-process
    backends: the invariant cache is warmed once on the coordinator, the
    plan and the needed arrays are broadcast to the workers once per
    generation, then chunk ids stream out and per-subtask contributions
    stream back, folded strictly in assignment order — bit-identical to
    :class:`~repro.execution.backend.SerialBackend` for every worker
    count, chunk size and arrival order.

    Unlike the local pools this backend never short-circuits small runs
    to the in-process serial path: a one-worker distributed run is a real
    coordinator→worker round-trip, which is exactly what
    :func:`~repro.execution.scaling.measure_strong_scaling` needs for an
    honest N=1 baseline.

    Parameters
    ----------
    num_workers:
        Workers to spawn (spawned transport); ignored when ``addresses``
        is given (the address list is the cluster).  Defaults to 2–4
        depending on the host's core count.
    addresses:
        Pre-started worker endpoints — ``(host, port)`` pairs or
        ``"host:port"`` strings — reached via :class:`SocketTransport`.
    transport:
        ``"sockets"`` (default), ``"mpi"``, a ready
        :class:`ClusterTransport` instance, or a zero-argument factory
        returning one (the seam tests use to shim worker behaviour).
    chunk_size:
        Subtasks per chunk; default streams ~4 chunks per worker.
    spawn_timeout / connect_timeout:
        Transport bring-up budgets in seconds.
    """

    name = "distributed"
    #: Duck-typed marker ``validate_execution_args`` checks without
    #: importing this module: broadcast payloads and contribution frames
    #: are host-side pickles, so device array modules are rejected.
    is_distributed = True

    def __init__(
        self,
        num_workers: Optional[int] = None,
        addresses: Optional[Sequence[Union[str, Tuple[str, int]]]] = None,
        transport: Union[str, ClusterTransport, Callable[[], ClusterTransport]] = "sockets",
        chunk_size: Optional[int] = None,
        spawn_timeout: float = 120.0,
        connect_timeout: float = 30.0,
    ) -> None:
        parsed: Optional[List[Tuple[str, int]]] = None
        if addresses is not None:
            parsed = [
                _parse_address(entry) if isinstance(entry, str) else
                (str(entry[0]), int(entry[1]))
                for entry in addresses
            ]
            if not parsed:
                raise ValueError("addresses must not be empty")
            if num_workers is not None and num_workers != len(parsed):
                raise ValueError(
                    "pass either num_workers or addresses, not conflicting both"
                )
            num_workers = len(parsed)
        if num_workers is None:
            num_workers = _default_worker_count()
        super().__init__(max_workers=num_workers, chunk_size=chunk_size)
        self.addresses = parsed
        self._transport_spec = transport
        self._spawn_timeout = float(spawn_timeout)
        self._connect_timeout = float(connect_timeout)
        self._session: Optional[DistributedSession] = None

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """Worker count (alias of the pooled ``max_workers``)."""
        return self.max_workers

    def _make_transport(self) -> ClusterTransport:
        spec = self._transport_spec
        if isinstance(spec, ClusterTransport):
            return spec
        if callable(spec):
            transport = spec()
            if not isinstance(transport, ClusterTransport):
                raise TypeError(
                    f"transport factory returned {type(transport).__name__}, "
                    "expected a ClusterTransport"
                )
            return transport
        if spec == "sockets":
            if self.addresses:
                return SocketTransport(
                    self.addresses, connect_timeout=self._connect_timeout
                )
            return LocalSocketTransport(spawn_timeout=self._spawn_timeout)
        if spec == "mpi":
            return MpiTransport()
        raise ValueError(
            f"unknown transport {spec!r} (expected 'sockets', 'mpi', a "
            "ClusterTransport instance, or a factory)"
        )

    # ------------------------------------------------------------------
    def session(
        self,
        plan: Optional[CompiledPlan] = None,
        network: Optional[TensorNetwork] = None,
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
    ) -> DistributedSession:
        """Open (or reuse) the backend's persistent :class:`DistributedSession`.

        With ``plan``/``network`` the session is eagerly warmed: workers
        launched and both payloads broadcast before the first run.
        """
        session = self._session
        if session is None or session.closed:
            session = DistributedSession(self)
            self._session = session
        if plan is not None:
            if network is None:
                raise ValueError("session(plan=...) also requires network=")
            self.warm(plan, network, cache, stats)
            session.ensure(plan, network, cache, sum_batch_axes)
        return session

    def close(self) -> None:
        """Close the active session (idempotent)."""
        session, self._session = self._session, None
        if session is not None:
            session.close()

    def reset_session(self) -> None:
        """Rebuild path for axis-order mutations: drop workers and payloads."""
        session = self._session
        if session is not None and not session.closed:
            session.reset()

    # ------------------------------------------------------------------
    def run_subtasks(
        self,
        plan: CompiledPlan,
        network: TensorNetwork,
        assignments: Sequence[Mapping[str, int]],
        cache: Optional[Dict[int, np.ndarray]] = None,
        sum_batch_axes: int = 0,
        stats: Optional[PlanStats] = None,
        policy: Optional[FaultPolicy] = None,
        injector: Optional[FaultInjector] = None,
        checkpoint: Optional[CheckpointJob] = None,
    ) -> Optional[Tensor]:
        if not assignments:
            return None
        self.warm(plan, network, cache, stats)
        if policy is None:
            policy = self.fault_policy or FAIL_FAST
        if injector is None:
            injector = self.fault_injector
        try:
            session = self._session
            if session is not None and not session.closed:
                contributions = session.run(
                    plan, network, assignments, cache, sum_batch_axes, stats,
                    policy=policy, injector=injector, checkpoint=checkpoint,
                )
            else:
                with DistributedSession(self) as scratch:
                    contributions = scratch.run(
                        plan, network, assignments, cache, sum_batch_axes,
                        stats, policy=policy, injector=injector,
                        checkpoint=checkpoint,
                    )
        except RecoveryExhaustedError as exc:
            if policy.mode != "degrade":
                raise
            # cluster recovery ran out: finish the empty ordered slots on
            # the local substrate chain.  Filled slots keep their
            # bit-exact remotely-computed contributions, so the final
            # fold is identical to a clean run.
            contributions = list(exc.contributions)
            if len(contributions) != len(assignments):
                contributions = [None] * len(assignments)
            for substrate in policy.degradation_chain:
                try:
                    run_degraded(
                        substrate, plan, network, assignments, contributions,
                        cache, sum_batch_axes, stats, self.max_workers,
                    )
                except Exception:
                    continue
                if stats is not None and stats.degraded_to is None:
                    stats.degraded_to = substrate
                break
            missing = [i for i, c in enumerate(contributions) if c is None]
            if missing:
                raise RecoveryExhaustedError(
                    f"degradation chain {policy.degradation_chain} left "
                    f"{len(missing)} slots unfilled",
                    contributions,
                ) from exc
        return self._merge_ordered(plan, contributions, sum_batch_axes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.addresses:
            return f"DistributedBackend(addresses={self.addresses!r})"
        return f"DistributedBackend(num_workers={self.max_workers})"
