"""Hyper-optimizer driver.

cotengra's headline feature is an "anytime" driver that runs many
randomised trials of several path-finding methods and keeps the best tree
according to a target score.  :class:`HyperOptimizer` reproduces that
workflow on top of the methods in this package:

* ``greedy``  — randomised greedy (:class:`~repro.paths.greedy.GreedyOptimizer`),
* ``partition`` — recursive Kernighan–Lin bisection,
* ``community`` — Girvan–Newman style community contraction,
* ``dp`` — exact dynamic programming (only attempted on small networks).

Each trial's tree is optionally polished by the simulated-annealing refiner,
and the winner is chosen by total flops, peak intermediate size, or the
paper-style combined score (flops subject to a memory bound).

When a :class:`~repro.costs.CostModel` is supplied, trees are ranked by
its predicted seconds (:meth:`~repro.costs.CostModel.tree_cost`) instead
of raw flop counts, so a model calibrated from measured backend timings
steers the search toward trees that are fast *on the measured machine*,
not merely cheap on paper.  Without a model the scoring is bit-identical
to the historical flop-count behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..costs.model import CostModel

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from .anneal import TreeAnnealer
from .dynamic import DynamicProgrammingOptimizer
from .greedy import GreedyOptimizer
from .partition import CommunityOptimizer, PartitionOptimizer

__all__ = ["HyperOptimizer", "TrialRecord", "find_tree"]


@dataclass
class TrialRecord:
    """Bookkeeping for a single optimizer trial.

    ``cost`` is the cost model's predicted seconds for the trial's tree;
    it is ``None`` when the search ran without a model, in which case
    scoring falls back to ``log10_flops`` (the historical behaviour).
    """

    method: str
    log10_flops: float
    max_rank: int
    seed: int
    cost: Optional[float] = None

    def _time_key(self) -> float:
        """The time-like criterion: predicted seconds, else log10 flops."""
        return self.cost if self.cost is not None else self.log10_flops

    def score(self, minimize: str, memory_target_rank: Optional[int]) -> Tuple[float, ...]:
        """Sort key for trial comparison under the requested objective."""
        if minimize == "flops":
            return (self._time_key(), self.max_rank)
        if minimize == "size":
            return (self.max_rank, self._time_key())
        # "combo": respect the memory bound first, then time/flops
        over = 0.0
        if memory_target_rank is not None:
            over = max(0, self.max_rank - memory_target_rank)
        return (over, self._time_key(), self.max_rank)


class HyperOptimizer:
    """Multi-trial, multi-method contraction-tree search.

    Parameters
    ----------
    methods:
        Subset of ``{"greedy", "partition", "community", "dp"}``.
    max_trials:
        Total number of trials across all methods.
    minimize:
        ``"flops"``, ``"size"`` or ``"combo"`` (flops subject to the memory
        target).
    memory_target_rank:
        Target maximum intermediate rank used by the ``combo`` objective.
    refine:
        Whether to run the SA tree refiner on each trial's result.
    seed:
        Master seed; per-trial seeds are derived from it.
    cost_model:
        Optional :class:`~repro.costs.CostModel`; when given, trials are
        ranked by its predicted tree seconds instead of raw flop counts.
        ``None`` keeps the scoring bit-identical to the flop-count
        behaviour.
    """

    def __init__(
        self,
        methods: Sequence[str] = ("greedy", "partition", "community"),
        max_trials: int = 16,
        minimize: str = "flops",
        memory_target_rank: Optional[int] = None,
        refine: bool = True,
        seed: Optional[int] = None,
        cost_model: Optional["CostModel"] = None,
    ) -> None:
        valid = {"greedy", "partition", "community", "dp"}
        unknown = set(methods) - valid
        if unknown:
            raise ValueError(f"unknown methods {sorted(unknown)}")
        if minimize not in ("flops", "size", "combo"):
            raise ValueError("minimize must be 'flops', 'size' or 'combo'")
        self.methods = tuple(methods)
        self.max_trials = int(max_trials)
        self.minimize = minimize
        self.memory_target_rank = memory_target_rank
        self.refine = bool(refine)
        self.cost_model = cost_model
        self._rng = np.random.default_rng(seed)
        self.trials: List[TrialRecord] = []

    # ------------------------------------------------------------------
    def search(self, network: TensorNetwork) -> ContractionTree:
        """Run all trials and return the best tree found."""
        best_tree: Optional[ContractionTree] = None
        best_key: Optional[Tuple[float, ...]] = None
        self.trials = []

        for trial in range(self.max_trials):
            method = self.methods[trial % len(self.methods)]
            seed = int(self._rng.integers(0, 2**31 - 1))
            tree = self._run_trial(network, method, seed)
            if tree is None:
                continue
            if self.refine:
                annealer = TreeAnnealer(seed=seed)
                tree = annealer.refine(tree).tree
            record = TrialRecord(
                method=method,
                log10_flops=tree.log10_total_cost(),
                max_rank=tree.max_rank(),
                seed=seed,
                cost=(
                    float(self.cost_model.tree_cost(tree))
                    if self.cost_model is not None
                    else None
                ),
            )
            self.trials.append(record)
            key = record.score(self.minimize, self.memory_target_rank)
            if best_key is None or key < best_key:
                best_key = key
                best_tree = tree

        if best_tree is None:
            # all trials failed (e.g. single-tensor network): fall back to greedy
            best_tree = GreedyOptimizer(seed=0).tree(network)
        return best_tree

    # ------------------------------------------------------------------
    def _run_trial(
        self, network: TensorNetwork, method: str, seed: int
    ) -> Optional[ContractionTree]:
        try:
            if method == "greedy":
                temperature = float(self._rng.uniform(0.0, 1.0))
                costmod = float(self._rng.uniform(0.5, 2.0))
                return GreedyOptimizer(
                    costmod=costmod, temperature=temperature, seed=seed
                ).tree(network)
            if method == "partition":
                cutoff = int(self._rng.integers(4, 12))
                return PartitionOptimizer(cutoff=cutoff, seed=seed).tree(network)
            if method == "community":
                resolution = float(self._rng.uniform(0.6, 1.6))
                return CommunityOptimizer(seed=seed, resolution=resolution).tree(network)
            if method == "dp":
                if network.num_tensors > 16:
                    return None
                return DynamicProgrammingOptimizer().tree(network)
        except (ValueError, RuntimeError):
            return None
        return None

    # ------------------------------------------------------------------
    def best_record(self) -> Optional[TrialRecord]:
        """The record of the winning trial of the last search."""
        if not self.trials:
            return None
        return min(
            self.trials, key=lambda r: r.score(self.minimize, self.memory_target_rank)
        )

    def trial_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-method aggregate statistics of the last search."""
        summary: Dict[str, Dict[str, float]] = {}
        for method in set(r.method for r in self.trials):
            records = [r for r in self.trials if r.method == method]
            costs = [r.log10_flops for r in records]
            summary[method] = {
                "trials": float(len(costs)),
                "best_log10_flops": min(costs),
                "mean_log10_flops": float(np.mean(costs)),
            }
            predicted = [r.cost for r in records if r.cost is not None]
            if predicted:
                summary[method]["best_predicted_seconds"] = min(predicted)
        return summary


def find_tree(
    network: TensorNetwork,
    max_trials: int = 16,
    minimize: str = "flops",
    memory_target_rank: Optional[int] = None,
    seed: Optional[int] = None,
    cost_model: Optional["CostModel"] = None,
) -> ContractionTree:
    """One-shot helper: run a :class:`HyperOptimizer` search and return the tree."""
    optimizer = HyperOptimizer(
        max_trials=max_trials,
        minimize=minimize,
        memory_target_rank=memory_target_rank,
        seed=seed,
        cost_model=cost_model,
    )
    return optimizer.search(network)
