"""Contraction-path optimization (cotengra substitute)."""

from .greedy import GreedyOptimizer, greedy_ssa_path
from .partition import CommunityOptimizer, PartitionOptimizer
from .dynamic import DynamicProgrammingOptimizer, optimal_ssa_path
from .anneal import AnnealResult, TreeAnnealer, anneal_tree
from .optimizer import HyperOptimizer, TrialRecord, find_tree

__all__ = [
    "GreedyOptimizer",
    "greedy_ssa_path",
    "CommunityOptimizer",
    "PartitionOptimizer",
    "DynamicProgrammingOptimizer",
    "optimal_ssa_path",
    "AnnealResult",
    "TreeAnnealer",
    "anneal_tree",
    "HyperOptimizer",
    "TrialRecord",
    "find_tree",
]
