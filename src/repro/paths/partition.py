"""Graph-partition based contraction-path search.

cotengra's strongest paths for Sycamore-class networks come from recursive
hypergraph bisection (KaHyPar) and community detection (Girvan–Newman); the
paper uses those trees as its starting point.  Without KaHyPar available
offline we implement the same *divide and conquer* scheme on top of
networkx:

* :class:`PartitionOptimizer` — recursive balanced bisection using the
  Kernighan–Lin heuristic, falling back to spectral-ish BFS splits for tiny
  parts.  The recursion tree *is* the contraction tree: the two halves of
  every cut are contracted independently and then merged, which is exactly
  the structure cotengra builds.
* :class:`CommunityOptimizer` — the Girvan–Newman community structure
  variant referenced by the paper ([13] in the bibliography).

Both return SSA paths compatible with :class:`ContractionTree`.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork
from .greedy import GreedyOptimizer

__all__ = ["PartitionOptimizer", "CommunityOptimizer"]


def _tensor_graph(network: TensorNetwork) -> nx.Graph:
    """Simple weighted graph over tensor ids (parallel edges merged)."""
    g = nx.Graph()
    for tid in network.tensor_ids:
        g.add_node(tid)
    for ix in network.indices:
        owners = sorted(network.index_owners(ix))
        w = math.log2(network.size_of(ix))
        for i in range(len(owners)):
            for j in range(i + 1, len(owners)):
                a, b = owners[i], owners[j]
                if g.has_edge(a, b):
                    g[a][b]["weight"] += w
                else:
                    g.add_edge(a, b, weight=w)
    return g


class PartitionOptimizer:
    """Recursive-bisection contraction-path optimizer.

    Parameters
    ----------
    cutoff:
        Below this many tensors a group is handed to the greedy optimizer.
    seed:
        Seed for the Kernighan–Lin refinement and the greedy fallback.
    kl_iterations:
        Number of Kernighan–Lin passes per bisection.
    """

    def __init__(self, cutoff: int = 8, seed: Optional[int] = None, kl_iterations: int = 10) -> None:
        if cutoff < 2:
            raise ValueError("cutoff must be at least 2")
        self.cutoff = int(cutoff)
        self.kl_iterations = int(kl_iterations)
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def ssa_path(self, network: TensorNetwork) -> List[Tuple[int, int]]:
        """Compute an SSA contraction path by recursive bisection."""
        tids = network.tensor_ids
        graph = _tensor_graph(network)
        tid_to_leaf = {tid: leaf for leaf, tid in enumerate(tids)}

        ssa: List[Tuple[int, int]] = []
        next_id = [len(tids)]

        def conquer(group: List[int]) -> int:
            """Contract ``group`` (list of tids); return the SSA node id."""
            if len(group) == 1:
                return tid_to_leaf[group[0]]
            if len(group) <= self.cutoff:
                return self._greedy_merge(network, group, tid_to_leaf, ssa, next_id)
            part_a, part_b = self._bisect(graph.subgraph(group).copy())
            node_a = conquer(sorted(part_a))
            node_b = conquer(sorted(part_b))
            ssa.append((node_a, node_b))
            node = next_id[0]
            next_id[0] += 1
            return node

        conquer(list(tids))
        return ssa

    def tree(self, network: TensorNetwork) -> ContractionTree:
        """Compute a full :class:`ContractionTree`."""
        return ContractionTree.from_network(network, self.ssa_path(network))

    # ------------------------------------------------------------------
    def _bisect(self, graph: nx.Graph) -> Tuple[Set[int], Set[int]]:
        """Split ``graph`` into two balanced halves with a small cut."""
        nodes = list(graph.nodes)
        if len(nodes) < 4 or graph.number_of_edges() == 0:
            half = len(nodes) // 2
            return set(nodes[:half]), set(nodes[half:])
        try:
            part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
                graph,
                max_iter=self.kl_iterations,
                weight="weight",
                seed=int(self._rng.integers(0, 2**31 - 1)),
            )
        except nx.NetworkXError:
            half = len(nodes) // 2
            return set(nodes[:half]), set(nodes[half:])
        if not part_a or not part_b:
            half = len(nodes) // 2
            return set(nodes[:half]), set(nodes[half:])
        return set(part_a), set(part_b)

    def _greedy_merge(
        self,
        network: TensorNetwork,
        group: List[int],
        tid_to_leaf: Dict[int, int],
        ssa: List[Tuple[int, int]],
        next_id: List[int],
    ) -> int:
        """Contract a small group with the greedy heuristic, emitting SSA steps."""
        sizes = {ix: math.log2(s) for ix, s in network.index_sizes().items()}
        output = set(network.output_indices())
        # current index sets per live ssa node
        live: Dict[int, FrozenSet[str]] = {
            tid_to_leaf[tid]: network.tensor_indices(tid) for tid in group
        }
        owner_count: Dict[str, int] = {}
        for tid in network.tensor_ids:
            for ix in network.tensor_indices(tid):
                owner_count[ix] = owner_count.get(ix, 0) + 1

        def pair_output(a: int, b: int) -> FrozenSet[str]:
            ix_a, ix_b = live[a], live[b]
            shared = ix_a & ix_b
            inside = {ix for ix in shared if owner_count.get(ix, 0) <= 2 and ix not in output}
            return frozenset((ix_a | ix_b) - inside)

        while len(live) > 1:
            best: Optional[Tuple[float, int, int]] = None
            keys = sorted(live)
            for i in range(len(keys)):
                for j in range(i + 1, len(keys)):
                    a, b = keys[i], keys[j]
                    if not (live[a] & live[b]) and best is not None:
                        continue
                    out = pair_output(a, b)
                    score = sum(sizes[ix] for ix in out)
                    if best is None or score < best[0]:
                        best = (score, a, b)
            assert best is not None
            _, a, b = best
            out = pair_output(a, b)
            for ix in live[a] & live[b]:
                owner_count[ix] = owner_count.get(ix, 0) - 2
                if ix in out:
                    owner_count[ix] += 1
            ssa.append((a, b))
            node = next_id[0]
            next_id[0] += 1
            del live[a]
            del live[b]
            live[node] = out
        return next(iter(live))


class CommunityOptimizer:
    """Community-structure contraction-path optimizer (Girvan–Newman flavour).

    Detects communities of the tensor graph with networkx's greedy modularity
    algorithm, contracts each community with a :class:`GreedyOptimizer`, and
    merges the community results greedily.  This mirrors the community-based
    path search cited by the paper.
    """

    def __init__(self, seed: Optional[int] = None, resolution: float = 1.0) -> None:
        self._seed = seed
        self.resolution = float(resolution)

    def ssa_path(self, network: TensorNetwork) -> List[Tuple[int, int]]:
        """Compute an SSA contraction path guided by community structure."""
        tids = network.tensor_ids
        graph = _tensor_graph(network)
        tid_to_leaf = {tid: leaf for leaf, tid in enumerate(tids)}
        try:
            communities = list(
                nx.algorithms.community.greedy_modularity_communities(
                    graph, weight="weight", resolution=self.resolution
                )
            )
        except (nx.NetworkXError, ZeroDivisionError, StopIteration):
            communities = [set(tids)]
        if not communities:
            communities = [set(tids)]

        partition = PartitionOptimizer(cutoff=max(4, len(tids)), seed=self._seed)
        ssa: List[Tuple[int, int]] = []
        next_id = [len(tids)]
        roots: List[int] = []
        for community in communities:
            group = sorted(community)
            root = partition._greedy_merge(network, group, tid_to_leaf, ssa, next_id)
            roots.append(root)
        # merge community roots pairwise (balanced)
        while len(roots) > 1:
            new_roots: List[int] = []
            for i in range(0, len(roots) - 1, 2):
                ssa.append((roots[i], roots[i + 1]))
                new_roots.append(next_id[0])
                next_id[0] += 1
            if len(roots) % 2 == 1:
                new_roots.append(roots[-1])
            roots = new_roots
        return ssa

    def tree(self, network: TensorNetwork) -> ContractionTree:
        """Compute a full :class:`ContractionTree`."""
        return ContractionTree.from_network(network, self.ssa_path(network))
