"""Greedy contraction-path search.

The classic baseline used by cotengra/opt_einsum: repeatedly contract the
pair of tensors that minimises a local cost heuristic.  The default
heuristic is the standard ``size(out) - costmod * (size(a) + size(b))``
rule; a Boltzmann ``temperature`` turns the deterministic choice into a
randomised one so that many trials explore different trees, which the
hyper-driver in :mod:`repro.paths.optimizer` exploits.

The implementation works purely on index sets (abstract networks), never on
tensor data, so a 53-qubit Sycamore network plans in milliseconds.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork

__all__ = ["GreedyOptimizer", "greedy_ssa_path"]


@dataclass
class _Candidate:
    """A candidate pairwise contraction in the greedy frontier."""

    score: float
    tiebreak: int
    node_a: int
    node_b: int

    def __lt__(self, other: "_Candidate") -> bool:
        return (self.score, self.tiebreak) < (other.score, other.tiebreak)


def _log2_size(indices: AbstractSet[str], sizes: Dict[str, float]) -> float:
    return sum(sizes[ix] for ix in indices)


class GreedyOptimizer:
    """Randomised greedy contraction-path optimizer.

    Parameters
    ----------
    costmod:
        Weight of the operand sizes in the local score; larger values favour
        contracting big tensors early.
    temperature:
        Gumbel noise scale added to scores.  ``0`` gives the deterministic
        greedy path.
    seed:
        PRNG seed for the noise.
    """

    def __init__(
        self,
        costmod: float = 1.0,
        temperature: float = 0.0,
        seed: Optional[int] = None,
    ) -> None:
        self.costmod = float(costmod)
        self.temperature = float(temperature)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def ssa_path(self, network: TensorNetwork) -> List[Tuple[int, int]]:
        """Compute an SSA contraction path for ``network``."""
        tids = network.tensor_ids
        leaf_indices = [set(network.tensor_indices(tid)) for tid in tids]
        sizes = {ix: math.log2(size) for ix, size in network.index_sizes().items()}
        output = set(network.output_indices())
        return self._search(leaf_indices, sizes, output)

    def tree(self, network: TensorNetwork) -> ContractionTree:
        """Compute a full :class:`ContractionTree` for ``network``."""
        return ContractionTree.from_network(network, self.ssa_path(network))

    # ------------------------------------------------------------------
    def _score(self, out_size: float, size_a: float, size_b: float) -> float:
        score = 2.0**out_size - self.costmod * (2.0**size_a + 2.0**size_b)
        if self.temperature > 0.0:
            gumbel = -math.log(-math.log(self._rng.uniform(1e-12, 1.0)))
            score -= self.temperature * gumbel * max(abs(score), 1.0)
        return score

    def _search(
        self,
        leaf_indices: List[Set[str]],
        sizes: Dict[str, float],
        output: Set[str],
    ) -> List[Tuple[int, int]]:
        num_leaves = len(leaf_indices)
        if num_leaves == 1:
            return []

        # occurrence counts of each index across alive nodes
        index_count: Dict[str, int] = {}
        node_indices: Dict[int, FrozenSet[str]] = {}
        for node, ixset in enumerate(leaf_indices):
            node_indices[node] = frozenset(ixset)
            for ix in ixset:
                index_count[ix] = index_count.get(ix, 0) + 1

        # adjacency: index -> alive nodes carrying it
        owners: Dict[str, Set[int]] = {}
        for node, ixset in node_indices.items():
            for ix in ixset:
                owners.setdefault(ix, set()).add(node)

        alive: Set[int] = set(range(num_leaves))
        next_id = num_leaves
        ssa: List[Tuple[int, int]] = []
        heap: List[_Candidate] = []
        tiebreak = 0

        def out_indices(a: int, b: int) -> FrozenSet[str]:
            ix_a, ix_b = node_indices[a], node_indices[b]
            union = ix_a | ix_b
            shared = ix_a & ix_b
            removable = {
                ix
                for ix in shared
                if ix not in output and not (owners[ix] - {a, b})
            }
            return frozenset(union - removable)

        def push(a: int, b: int) -> None:
            nonlocal tiebreak
            out = out_indices(a, b)
            score = self._score(
                _log2_size(out, sizes),
                _log2_size(node_indices[a], sizes),
                _log2_size(node_indices[b], sizes),
            )
            heapq.heappush(heap, _Candidate(score, tiebreak, a, b))
            tiebreak += 1

        # seed the frontier in sorted index order so results do not depend on
        # Python's per-process string-hash randomisation
        seen_pairs: Set[Tuple[int, int]] = set()
        for ix in sorted(owners):
            nodes_sorted = sorted(owners[ix])
            for i in range(len(nodes_sorted)):
                for j in range(i + 1, len(nodes_sorted)):
                    pair = (nodes_sorted[i], nodes_sorted[j])
                    if pair not in seen_pairs:
                        seen_pairs.add(pair)
                        push(*pair)

        while len(alive) > 1:
            candidate: Optional[_Candidate] = None
            while heap:
                cand = heapq.heappop(heap)
                if cand.node_a in alive and cand.node_b in alive:
                    candidate = cand
                    break
            if candidate is None:
                # disconnected components: combine the two smallest nodes
                rest = sorted(alive, key=lambda n: _log2_size(node_indices[n], sizes))
                candidate = _Candidate(0.0, tiebreak, rest[0], rest[1])

            a, b = candidate.node_a, candidate.node_b
            out = out_indices(a, b)
            new_node = next_id
            next_id += 1
            ssa.append((a, b))

            for old in (a, b):
                alive.discard(old)
                for ix in node_indices[old]:
                    owners[ix].discard(old)
            node_indices[new_node] = out
            for ix in out:
                owners.setdefault(ix, set()).add(new_node)
            alive.add(new_node)

            neighbor_nodes: Set[int] = set()
            for ix in out:
                neighbor_nodes |= owners[ix]
            neighbor_nodes.discard(new_node)
            for other in sorted(neighbor_nodes):
                push(new_node, other)

        return ssa


def greedy_ssa_path(
    network: TensorNetwork,
    costmod: float = 1.0,
    temperature: float = 0.0,
    seed: Optional[int] = None,
) -> List[Tuple[int, int]]:
    """One-shot greedy path for ``network``."""
    return GreedyOptimizer(costmod=costmod, temperature=temperature, seed=seed).ssa_path(
        network
    )
