"""Simulated-annealing contraction-tree refinement.

Given an existing contraction tree, local *rotation* moves are applied under
a Metropolis acceptance rule to lower the total contraction cost.  This is
the "adaptive tensor network contraction path refiner" component of the
paper's pipeline: it takes trees found by the greedy/partition optimizers
and polishes them before (and interleaved with) slicing.

A rotation at an internal node ``P = (A, (C, D))`` replaces the inner pair,
yielding ``P = ((A, C), D)`` or ``P = ((A, D), C)``.  Only one intermediate
tensor changes, so the cost delta is evaluated locally; trees with hundreds
of leaves refine in milliseconds per sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..tensornet.contraction_tree import ContractionTree

__all__ = ["TreeAnnealer", "AnnealResult", "anneal_tree"]


@dataclass
class AnnealResult:
    """Outcome of an annealing run."""

    tree: ContractionTree
    initial_log10_cost: float
    final_log10_cost: float
    accepted_moves: int
    attempted_moves: int

    @property
    def improvement_factor(self) -> float:
        """Ratio of initial to final total cost (>1 means improvement)."""
        return 10.0 ** (self.initial_log10_cost - self.final_log10_cost)


class _MutableTree:
    """Mutable nested-pair view of a contraction tree with local cost updates."""

    def __init__(self, tree: ContractionTree) -> None:
        self.num_leaves = tree.num_leaves
        self.output = set(tree.output_indices)
        self.sizes = {ix: tree.log2_index_size(ix) for ix in tree.all_indices()}
        self.total_count: Dict[str, int] = {}
        self.leaf_indices: List[FrozenSet[str]] = []
        for leaf in range(tree.num_leaves):
            ixset = tree.node_indices(leaf)
            self.leaf_indices.append(ixset)
            for ix in ixset:
                self.total_count[ix] = self.total_count.get(ix, 0) + 1
        # node storage: children / parent / boundary indices / per-index count
        self.children: Dict[int, Optional[Tuple[int, int]]] = {}
        self.parent: Dict[int, Optional[int]] = {}
        self.indices: Dict[int, FrozenSet[str]] = {}
        self.counts: Dict[int, Dict[str, int]] = {}
        self.next_id = tree.num_leaves

        for leaf in range(tree.num_leaves):
            self.children[leaf] = None
            self.parent[leaf] = None
            self.indices[leaf] = self.leaf_indices[leaf]
            self.counts[leaf] = {ix: 1 for ix in self.leaf_indices[leaf]}
        for node in tree.internal_nodes():
            a, b = tree.children(node)  # type: ignore[misc]
            self._add_internal(node, a, b)
        self.root = tree.root
        self.next_id = tree.root + 1

    # ------------------------------------------------------------------
    def _merge_boundary(self, a: int, b: int) -> Tuple[FrozenSet[str], Dict[str, int]]:
        counts: Dict[str, int] = dict(self.counts[a])
        for ix, c in self.counts[b].items():
            counts[ix] = counts.get(ix, 0) + c
        boundary = frozenset(
            ix
            for ix, c in counts.items()
            if c < self.total_count[ix] or ix in self.output
        )
        # keep counts only for boundary indices (interior ones can never
        # reappear on an ancestor's boundary)
        counts = {ix: counts[ix] for ix in boundary}
        return boundary, counts

    def _add_internal(self, node: int, a: int, b: int) -> None:
        boundary, counts = self._merge_boundary(a, b)
        self.children[node] = (a, b)
        self.indices[node] = boundary
        self.counts[node] = counts
        self.parent[a] = node
        self.parent[b] = node
        self.parent.setdefault(node, None)

    # ------------------------------------------------------------------
    def log2size(self, ixset: FrozenSet[str]) -> float:
        return sum(self.sizes[ix] for ix in ixset)

    def node_cost(self, node: int) -> float:
        """Eq. 1 cost of the contraction performed at ``node``."""
        a, b = self.children[node]  # type: ignore[misc]
        union = self.indices[a] | self.indices[b] | self.indices[node]
        return 2.0 ** self.log2size(union)

    def total_cost(self) -> float:
        return sum(
            self.node_cost(node)
            for node, ch in self.children.items()
            if ch is not None
        )

    def max_log2_size(self) -> float:
        return max(
            self.log2size(self.indices[node])
            for node, ch in self.children.items()
            if ch is not None
        )

    def internal_nodes(self) -> List[int]:
        return [n for n, ch in self.children.items() if ch is not None]

    # ------------------------------------------------------------------
    def rotation_candidates(self, node: int) -> List[Tuple[int, int, int, int]]:
        """Possible rotations at ``node``: (outer_child, inner, inner_a, inner_b)."""
        ch = self.children[node]
        if ch is None:
            return []
        a, b = ch
        out: List[Tuple[int, int, int, int]] = []
        if self.children[b] is not None:
            c, d = self.children[b]  # type: ignore[misc]
            out.append((a, b, c, d))
        if self.children[a] is not None:
            c, d = self.children[a]  # type: ignore[misc]
            out.append((b, a, c, d))
        return out

    def try_rotation(
        self, node: int, outer: int, inner: int, keep: int, lift: int
    ) -> float:
        """Cost delta of replacing ``(outer, (keep, lift))`` by ``((outer, keep), lift)``.

        Does not mutate; call :meth:`apply_rotation` to commit.
        """
        old_cost = self.node_cost(node) + self.node_cost(inner)
        new_boundary, _ = self._merge_boundary(outer, keep)
        union_inner = self.indices[outer] | self.indices[keep] | new_boundary
        union_outer = new_boundary | self.indices[lift] | self.indices[node]
        new_cost = 2.0 ** self.log2size(union_inner) + 2.0 ** self.log2size(union_outer)
        return new_cost - old_cost

    def apply_rotation(self, node: int, outer: int, inner: int, keep: int, lift: int) -> None:
        """Commit the rotation evaluated by :meth:`try_rotation` (reuses ``inner``'s id)."""
        boundary, counts = self._merge_boundary(outer, keep)
        self.children[inner] = (outer, keep)
        self.indices[inner] = boundary
        self.counts[inner] = counts
        self.children[node] = (inner, lift)
        self.parent[outer] = inner
        self.parent[keep] = inner
        self.parent[inner] = node
        self.parent[lift] = node

    # ------------------------------------------------------------------
    def to_ssa_path(self) -> List[Tuple[int, int]]:
        """Emit the tree as an SSA path (post-order)."""
        ssa: List[Tuple[int, int]] = []
        mapping: Dict[int, int] = {leaf: leaf for leaf in range(self.num_leaves)}
        next_id = [self.num_leaves]

        def emit(node: int) -> int:
            ch = self.children[node]
            if ch is None:
                return mapping[node]
            a = emit(ch[0])
            b = emit(ch[1])
            ssa.append((a, b))
            new = next_id[0]
            next_id[0] += 1
            return new

        # iterative post-order to avoid recursion limits on deep stems
        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 4 * (self.num_leaves + 10)))
        try:
            emit(self.root)
        finally:
            sys.setrecursionlimit(old_limit)
        return ssa


class TreeAnnealer:
    """Simulated-annealing refiner for contraction trees.

    Parameters
    ----------
    initial_temperature, final_temperature:
        Temperature schedule endpoints.  Temperatures are relative: the
        acceptance probability of an uphill move is
        ``exp(-delta / (|current_cost| * T))``.
    cooling:
        Geometric cooling factor applied after every sweep.
    moves_per_sweep:
        Number of random rotation attempts per sweep; ``None`` uses the
        number of internal nodes.
    seed:
        PRNG seed.
    """

    def __init__(
        self,
        initial_temperature: float = 0.05,
        final_temperature: float = 1e-4,
        cooling: float = 0.8,
        moves_per_sweep: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 < cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = float(initial_temperature)
        self.final_temperature = float(final_temperature)
        self.cooling = float(cooling)
        self.moves_per_sweep = moves_per_sweep
        self._rng = np.random.default_rng(seed)

    def refine(
        self,
        tree: ContractionTree,
        max_size_log2: Optional[float] = None,
    ) -> AnnealResult:
        """Refine ``tree``; optionally reject moves that grow the peak tensor.

        Parameters
        ----------
        tree:
            Tree to refine.
        max_size_log2:
            When given, moves that push the largest intermediate above this
            bound are always rejected (useful when a slicing budget has
            already been committed to).
        """
        mutable = _MutableTree(tree)
        initial_cost = mutable.total_cost()
        current_cost = initial_cost
        temperature = self.initial_temperature
        accepted = 0
        attempted = 0
        internal = mutable.internal_nodes()
        if len(internal) < 2:
            # a tree with fewer than two contractions admits no rotations
            log10 = math.log10(max(initial_cost, 1.0))
            return AnnealResult(
                tree=tree,
                initial_log10_cost=log10,
                final_log10_cost=log10,
                accepted_moves=0,
                attempted_moves=0,
            )
        moves = self.moves_per_sweep or max(len(internal), 1)

        while temperature > self.final_temperature:
            for _ in range(moves):
                node = int(self._rng.choice(internal))
                candidates = mutable.rotation_candidates(node)
                if not candidates:
                    continue
                outer, inner, c, d = candidates[int(self._rng.integers(len(candidates)))]
                # choose which grandchild to keep paired with the outer child
                if self._rng.random() < 0.5:
                    keep, lift = c, d
                else:
                    keep, lift = d, c
                attempted += 1
                delta = mutable.try_rotation(node, outer, inner, keep, lift)
                if max_size_log2 is not None and delta > 0:
                    # cheap pre-check only; exact bound enforced below
                    pass
                accept = delta <= 0 or self._rng.random() < math.exp(
                    -delta / (abs(current_cost) * temperature + 1e-300)
                )
                if not accept:
                    continue
                if max_size_log2 is not None:
                    new_boundary, _ = mutable._merge_boundary(outer, keep)
                    if mutable.log2size(new_boundary) > max_size_log2:
                        continue
                mutable.apply_rotation(node, outer, inner, keep, lift)
                current_cost += delta
                accepted += 1
            temperature *= self.cooling

        refined = ContractionTree(
            leaf_indices=[mutable.leaf_indices[leaf] for leaf in range(mutable.num_leaves)],
            index_sizes={ix: int(round(2.0**w)) for ix, w in mutable.sizes.items()},
            ssa_path=mutable.to_ssa_path(),
            output_indices=tree.output_indices,
            leaf_tids=tree.leaf_tids,
        )
        return AnnealResult(
            tree=refined,
            initial_log10_cost=math.log10(max(initial_cost, 1.0)),
            final_log10_cost=math.log10(max(mutable.total_cost(), 1.0)),
            accepted_moves=accepted,
            attempted_moves=attempted,
        )


def anneal_tree(
    tree: ContractionTree,
    seed: Optional[int] = None,
    max_size_log2: Optional[float] = None,
) -> ContractionTree:
    """Convenience wrapper returning only the refined tree."""
    return TreeAnnealer(seed=seed).refine(tree, max_size_log2=max_size_log2).tree
