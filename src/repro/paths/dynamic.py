"""Optimal contraction-path search by dynamic programming.

For small networks (roughly up to 16–18 tensors) the exactly optimal
contraction tree can be found by dynamic programming over leaf subsets
(Held–Karp style): the best tree for a subset ``S`` is the cheapest split
``S = A ∪ B`` into two non-empty disjoint parts, each contracted optimally.

The optimizer is used by the tests as a gold standard against which the
heuristic optimizers are compared, and by the examples for exact planning
on toy circuits.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..tensornet.contraction_tree import ContractionTree
from ..tensornet.network import TensorNetwork

__all__ = ["DynamicProgrammingOptimizer", "optimal_ssa_path"]


class DynamicProgrammingOptimizer:
    """Exactly optimal (minimum total flops) contraction-path search.

    Parameters
    ----------
    max_tensors:
        Refuse to run beyond this many tensors (the algorithm is
        :math:`O(3^n)`).
    minimize:
        ``"flops"`` minimises Eq. 1 total cost; ``"size"`` minimises the
        largest intermediate, breaking ties by flops.
    """

    def __init__(self, max_tensors: int = 18, minimize: str = "flops") -> None:
        if minimize not in ("flops", "size"):
            raise ValueError("minimize must be 'flops' or 'size'")
        self.max_tensors = int(max_tensors)
        self.minimize = minimize

    def ssa_path(self, network: TensorNetwork) -> List[Tuple[int, int]]:
        """Compute the optimal SSA path for ``network``."""
        tids = network.tensor_ids
        n = len(tids)
        if n > self.max_tensors:
            raise ValueError(
                f"network has {n} tensors; DP optimizer is capped at {self.max_tensors}"
            )
        if n == 1:
            return []
        sizes = {ix: math.log2(s) for ix, s in network.index_sizes().items()}
        output = frozenset(network.output_indices())
        leaf_ix = [frozenset(network.tensor_indices(tid)) for tid in tids]

        total_count: Dict[str, int] = {}
        for ixset in leaf_ix:
            for ix in ixset:
                total_count[ix] = total_count.get(ix, 0) + 1

        # subset (bitmask) -> boundary index set
        boundary: Dict[int, FrozenSet[str]] = {}
        # subset -> per-index count within the subset (restricted to union of leaf indices)
        def subset_boundary(mask: int) -> FrozenSet[str]:
            if mask in boundary:
                return boundary[mask]
            counts: Dict[str, int] = {}
            for leaf in range(n):
                if mask & (1 << leaf):
                    for ix in leaf_ix[leaf]:
                        counts[ix] = counts.get(ix, 0) + 1
            result = frozenset(
                ix for ix, c in counts.items() if c < total_count[ix] or ix in output
            )
            boundary[mask] = result
            return result

        def log2size(ixset: FrozenSet[str]) -> float:
            return sum(sizes[ix] for ix in ixset)

        # DP tables: best cost and the split that achieves it
        best_cost: Dict[int, Tuple[float, float]] = {}  # (primary, secondary)
        best_split: Dict[int, Optional[Tuple[int, int]]] = {}

        for leaf in range(n):
            mask = 1 << leaf
            best_cost[mask] = (0.0, 0.0)
            best_split[mask] = None

        full = (1 << n) - 1
        # enumerate subsets in order of popcount
        subsets_by_size: List[List[int]] = [[] for _ in range(n + 1)]
        for mask in range(1, full + 1):
            subsets_by_size[bin(mask).count("1")].append(mask)

        for size in range(2, n + 1):
            for mask in subsets_by_size[size]:
                s_mask = subset_boundary(mask)
                best: Optional[Tuple[float, float, int, int]] = None
                # enumerate proper submasks; fix the lowest set bit in A to halve work
                lowest = mask & (-mask)
                sub = (mask - 1) & mask
                while sub:
                    if sub & lowest:
                        a_mask, b_mask = sub, mask ^ sub
                        if a_mask in best_cost and b_mask in best_cost:
                            s_a = subset_boundary(a_mask)
                            s_b = subset_boundary(b_mask)
                            step_flops = 2.0 ** log2size(s_a | s_b | s_mask)
                            flops = (
                                step_flops + best_cost[a_mask][0] + best_cost[b_mask][0]
                                if self.minimize == "flops"
                                else 0.0
                            )
                            if self.minimize == "flops":
                                key = (flops, 0.0)
                            else:
                                peak = max(
                                    log2size(s_mask),
                                    best_cost[a_mask][0],
                                    best_cost[b_mask][0],
                                )
                                flops_total = (
                                    step_flops
                                    + best_cost[a_mask][1]
                                    + best_cost[b_mask][1]
                                )
                                key = (peak, flops_total)
                            if best is None or key < (best[0], best[1]):
                                best = (key[0], key[1], a_mask, b_mask)
                    sub = (sub - 1) & mask
                if best is None:  # pragma: no cover - defensive
                    raise RuntimeError("DP failed to split a subset")
                best_cost[mask] = (best[0], best[1])
                best_split[mask] = (best[2], best[3])

        # reconstruct SSA path by post-order traversal of the split tree
        ssa: List[Tuple[int, int]] = []
        next_id = [n]

        def build(mask: int) -> int:
            split = best_split[mask]
            if split is None:
                return mask.bit_length() - 1  # single leaf
            a, b = split
            node_a = build(a)
            node_b = build(b)
            ssa.append((node_a, node_b))
            node = next_id[0]
            next_id[0] += 1
            return node

        build(full)
        return ssa

    def tree(self, network: TensorNetwork) -> ContractionTree:
        """Compute the optimal :class:`ContractionTree`."""
        return ContractionTree.from_network(network, self.ssa_path(network))


def optimal_ssa_path(network: TensorNetwork, minimize: str = "flops") -> List[Tuple[int, int]]:
    """One-shot optimal path for small networks."""
    return DynamicProgrammingOptimizer(minimize=minimize).ssa_path(network)
