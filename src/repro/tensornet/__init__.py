"""Tensor-network substrate: tensors, networks, circuit conversion, contraction trees."""

from .tensor import Tensor, TensorError
from .network import TensorNetwork, TensorNetworkError
from .circuit_to_tn import (
    CircuitToTensorNetwork,
    amplitude_network,
    circuit_to_tensor_network,
)
from .simplify import (
    SimplificationReport,
    absorb_rank_one,
    absorb_rank_two,
    simplify_network,
)
from .contraction_tree import (
    ContractionTree,
    ContractionTreeError,
    ssa_path_from_linear,
)

__all__ = [
    "Tensor",
    "TensorError",
    "TensorNetwork",
    "TensorNetworkError",
    "CircuitToTensorNetwork",
    "amplitude_network",
    "circuit_to_tensor_network",
    "SimplificationReport",
    "absorb_rank_one",
    "absorb_rank_two",
    "simplify_network",
    "ContractionTree",
    "ContractionTreeError",
    "ssa_path_from_linear",
]
