"""Conversion of quantum circuits into tensor networks.

The amplitude ``<b| C |0...0>`` of a circuit ``C`` is the full contraction
of a tensor network composed of

* one rank-1 tensor ``|0>`` per qubit (the input layer),
* one rank-2 / rank-4 tensor per gate, wired along each qubit's world line,
* one rank-1 projector ``<b_q|`` per qubit (the output layer), or an open
  index per qubit when computing a full amplitude batch.

The wiring scheme follows the standard convention: every qubit carries a
current index label that is advanced each time a gate touches it, so two
gates acting successively on the same qubit share exactly one index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import Gate
from .network import TensorNetwork
from .tensor import Tensor

__all__ = ["CircuitToTensorNetwork", "circuit_to_tensor_network", "amplitude_network"]


_KET0 = np.array([1.0, 0.0], dtype=np.complex128)
_KET1 = np.array([0.0, 1.0], dtype=np.complex128)


@dataclass(frozen=True)
class ConversionResult:
    """Outcome of a circuit → tensor network conversion.

    Attributes
    ----------
    network:
        The resulting :class:`TensorNetwork`.
    output_index_of_qubit:
        For open conversions, the dangling index attached to each qubit.
    """

    network: TensorNetwork
    output_index_of_qubit: Dict[int, str]


class CircuitToTensorNetwork:
    """Stateful converter from :class:`~repro.circuits.Circuit` to a TN.

    Parameters
    ----------
    concrete:
        When True, gate tensors carry actual numerical data; when False, an
        abstract (planning-only) network is built, which is much cheaper for
        53-qubit Sycamore circuits whose planning never touches data.
    """

    def __init__(self, concrete: bool = True) -> None:
        self._concrete = concrete

    # ------------------------------------------------------------------
    def convert(
        self,
        circuit: Circuit,
        bitstring: Optional[Sequence[int]] = None,
        initial_state: Optional[Sequence[int]] = None,
    ) -> ConversionResult:
        """Convert ``circuit`` into a tensor network.

        Parameters
        ----------
        circuit:
            The circuit to convert.
        bitstring:
            Output bitstring to project on.  ``None`` leaves every final
            qubit index open, so the contraction produces the full
            ``2**n`` amplitude tensor (only sensible for small ``n``).
        initial_state:
            Input computational-basis state; defaults to ``|0...0>``.
        """
        n = circuit.num_qubits
        if bitstring is not None and len(bitstring) != n:
            raise ValueError("bitstring length does not match circuit width")
        if initial_state is not None and len(initial_state) != n:
            raise ValueError("initial_state length does not match circuit width")

        tn = TensorNetwork()
        wire: Dict[int, str] = {}
        counter: Dict[int, int] = {}

        # input layer
        for q in range(n):
            ix = f"q{q}_0"
            wire[q] = ix
            counter[q] = 0
            bit = 0 if initial_state is None else int(initial_state[q])
            data = (_KET0 if bit == 0 else _KET1) if self._concrete else None
            tn.add_tensor(
                Tensor(
                    (ix,),
                    data=data,
                    sizes={ix: 2},
                    tags=(f"input", f"qubit:{q}"),
                )
            )

        # gate layer
        for gate_pos, gate in enumerate(circuit):
            self._add_gate(tn, gate, gate_pos, wire, counter)

        # output layer
        output_index_of_qubit: Dict[int, str] = {}
        if bitstring is None:
            # leave indices open, record them
            for q in range(n):
                output_index_of_qubit[q] = wire[q]
            tn.set_output_indices(list(output_index_of_qubit.values()))
        else:
            for q in range(n):
                ix = wire[q]
                bit = int(bitstring[q])
                data = (_KET0 if bit == 0 else _KET1) if self._concrete else None
                tn.add_tensor(
                    Tensor(
                        (ix,),
                        data=data,
                        sizes={ix: 2},
                        tags=("output", f"qubit:{q}"),
                    )
                )
            tn.set_output_indices(())
        return ConversionResult(network=tn, output_index_of_qubit=output_index_of_qubit)

    # ------------------------------------------------------------------
    def _add_gate(
        self,
        tn: TensorNetwork,
        gate: Gate,
        gate_pos: int,
        wire: Dict[int, str],
        counter: Dict[int, int],
    ) -> None:
        data = gate.tensor() if self._concrete else None
        tags = (f"gate:{gate.name}", f"pos:{gate_pos}")
        if gate.num_qubits == 1:
            (q,) = gate.qubits
            in_ix = wire[q]
            counter[q] += 1
            out_ix = f"q{q}_{counter[q]}"
            wire[q] = out_ix
            tn.add_tensor(
                Tensor(
                    (out_ix, in_ix),
                    data=data,
                    sizes={out_ix: 2, in_ix: 2},
                    tags=tags + tuple(f"qubit:{x}" for x in gate.qubits),
                )
            )
        else:
            q0, q1 = gate.qubits
            in0, in1 = wire[q0], wire[q1]
            counter[q0] += 1
            counter[q1] += 1
            out0 = f"q{q0}_{counter[q0]}"
            out1 = f"q{q1}_{counter[q1]}"
            wire[q0], wire[q1] = out0, out1
            tn.add_tensor(
                Tensor(
                    (out0, out1, in0, in1),
                    data=data,
                    sizes={out0: 2, out1: 2, in0: 2, in1: 2},
                    tags=tags + tuple(f"qubit:{x}" for x in gate.qubits),
                )
            )


def circuit_to_tensor_network(
    circuit: Circuit,
    bitstring: Optional[Sequence[int]] = None,
    concrete: bool = True,
    initial_state: Optional[Sequence[int]] = None,
) -> TensorNetwork:
    """Convenience wrapper returning only the network."""
    converter = CircuitToTensorNetwork(concrete=concrete)
    return converter.convert(circuit, bitstring=bitstring, initial_state=initial_state).network


def amplitude_network(
    circuit: Circuit, bitstring: Sequence[int], concrete: bool = True
) -> TensorNetwork:
    """Closed (scalar) network for the amplitude ``<bitstring| C |0..0>``."""
    return circuit_to_tensor_network(circuit, bitstring=bitstring, concrete=concrete)
