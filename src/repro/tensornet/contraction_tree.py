"""Contraction trees and their cost model.

A *contraction path* fixes the order in which pairs of tensors are merged;
the equivalence class of all reorderings of independent steps is uniquely
described by a rooted binary tree (§2.1.1 of the paper).  This module
provides :class:`ContractionTree`, the central planning data structure used
by the path optimizers, the lifetime analysis and the slicing machinery.

Nodes are integer ids in SSA convention: the ``n`` leaves are ``0..n-1``
(in the order of the network's sorted tensor ids) and the ``k``-th
contraction creates node ``n + k``; the final node is the root.

The cost model follows the paper exactly:

* time complexity of a single contraction ``(v1, v2, v3)`` is
  ``prod_{e in s_v1 ∪ s_v2 ∪ s_v3} w(e)``  (Eq. 1),
* space complexity is the size of the biggest intermediate tensor,
* the total time complexity after slicing a set ``S`` is
  ``sum_V 2^{|s_V| + |S| - |S ∩ s_V|}``  (Eq. 4, specialised to w(e)=2; the
  implementation handles general edge weights),
* the slicing overhead is ``C_sliced / C_original``  (Eq. 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .network import TensorNetwork

__all__ = ["ContractionTree", "ContractionTreeError", "ssa_path_from_linear"]


class ContractionTreeError(ValueError):
    """Raised for malformed paths or invalid tree queries."""


def ssa_path_from_linear(path: Sequence[Tuple[int, int]], num_leaves: int) -> List[Tuple[int, int]]:
    """Convert a ``numpy.einsum_path``-style *linear* path into SSA form.

    In the linear convention each step names positions in the shrinking list
    of remaining tensors; in SSA form every intermediate gets a fresh id.
    """
    remaining = list(range(num_leaves))
    next_id = num_leaves
    ssa: List[Tuple[int, int]] = []
    for i, j in path:
        if i == j:
            raise ContractionTreeError("path step contracts a tensor with itself")
        a, b = remaining[i], remaining[j]
        for pos in sorted((i, j), reverse=True):
            remaining.pop(pos)
        remaining.append(next_id)
        ssa.append((a, b))
        next_id += 1
    return ssa


@dataclass(frozen=True)
class _NodeRecord:
    """Internal per-node bookkeeping."""

    children: Optional[Tuple[int, int]]
    leaves: FrozenSet[int]
    indices: FrozenSet[str]


class ContractionTree:
    """A rooted binary contraction tree over a tensor network.

    Parameters
    ----------
    leaf_indices:
        For each leaf (ordered ``0..n-1``), the set of index labels it
        carries.
    index_sizes:
        Mapping from index label to dimension size ``w(e)``.
    ssa_path:
        The contraction order in SSA convention; must contain exactly
        ``n - 1`` steps and reference every node exactly once as an operand.
    output_indices:
        The network's open indices (kept on the root).
    leaf_tids:
        Optional mapping from leaf position to the originating tensor id in
        the :class:`TensorNetwork`; used by the execution engine.
    """

    def __init__(
        self,
        leaf_indices: Sequence[AbstractSet[str]],
        index_sizes: Mapping[str, int],
        ssa_path: Sequence[Tuple[int, int]],
        output_indices: AbstractSet[str] = frozenset(),
        leaf_tids: Optional[Sequence[int]] = None,
    ) -> None:
        self._num_leaves = len(leaf_indices)
        if self._num_leaves == 0:
            raise ContractionTreeError("cannot build a tree over zero tensors")
        self._index_sizes: Dict[str, int] = {k: int(v) for k, v in index_sizes.items()}
        self._output: FrozenSet[str] = frozenset(output_indices)
        self._leaf_tids: Tuple[int, ...] = (
            tuple(leaf_tids) if leaf_tids is not None else tuple(range(self._num_leaves))
        )
        if len(self._leaf_tids) != self._num_leaves:
            raise ContractionTreeError("leaf_tids length mismatch")

        expected_steps = self._num_leaves - 1
        if len(ssa_path) != expected_steps:
            raise ContractionTreeError(
                f"path has {len(ssa_path)} steps, expected {expected_steps}"
            )

        # total occurrence count of each index over all leaves
        total_count: Dict[str, int] = {}
        for ixset in leaf_indices:
            for ix in ixset:
                total_count[ix] = total_count.get(ix, 0) + 1
                if ix not in self._index_sizes:
                    raise ContractionTreeError(f"missing size for index {ix!r}")

        self._nodes: Dict[int, _NodeRecord] = {}
        subtree_count: Dict[int, Dict[str, int]] = {}

        for leaf, ixset in enumerate(leaf_indices):
            self._nodes[leaf] = _NodeRecord(
                children=None,
                leaves=frozenset({leaf}),
                indices=frozenset(ixset),
            )
            subtree_count[leaf] = {ix: 1 for ix in ixset}

        consumed: Set[int] = set()
        next_id = self._num_leaves
        for step, (a, b) in enumerate(ssa_path):
            for operand in (a, b):
                if operand not in self._nodes:
                    raise ContractionTreeError(
                        f"step {step} references unknown node {operand}"
                    )
                if operand in consumed:
                    raise ContractionTreeError(
                        f"step {step} reuses already-consumed node {operand}"
                    )
            if a == b:
                raise ContractionTreeError("cannot contract a node with itself")
            consumed.add(a)
            consumed.add(b)
            counts: Dict[str, int] = dict(subtree_count[a])
            for ix, c in subtree_count[b].items():
                counts[ix] = counts.get(ix, 0) + c
            indices = frozenset(
                ix
                for ix, c in counts.items()
                if c < total_count[ix] or ix in self._output
            )
            self._nodes[next_id] = _NodeRecord(
                children=(a, b),
                leaves=self._nodes[a].leaves | self._nodes[b].leaves,
                indices=indices,
            )
            subtree_count[next_id] = counts
            # free children's counts to keep memory linear
            del subtree_count[a]
            del subtree_count[b]
            next_id += 1

        self._root = next_id - 1
        unconsumed = set(self._nodes) - consumed - {self._root}
        if unconsumed:
            raise ContractionTreeError(
                f"path does not consume nodes {sorted(unconsumed)}; "
                "the tree is not connected"
            )
        self._ssa_path: Tuple[Tuple[int, int], ...] = tuple(
            (int(a), int(b)) for a, b in ssa_path
        )
        # the tree is immutable, so derived lookup structures are built
        # lazily once and never invalidated
        self._parent_map: Optional[Dict[int, int]] = None
        self._leaf_of_tid: Dict[int, int] = {}
        for pos, tid in enumerate(self._leaf_tids):
            self._leaf_of_tid.setdefault(tid, pos)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_network(
        cls,
        network: TensorNetwork,
        ssa_path: Sequence[Tuple[int, int]],
    ) -> "ContractionTree":
        """Build a tree for ``network`` using ``ssa_path`` over its sorted tids."""
        tids = network.tensor_ids
        leaf_indices = [network.tensor_indices(tid) for tid in tids]
        return cls(
            leaf_indices=leaf_indices,
            index_sizes=network.index_sizes(),
            ssa_path=ssa_path,
            output_indices=network.output_indices(),
            leaf_tids=tids,
        )

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        """Number of leaf tensors."""
        return self._num_leaves

    @property
    def root(self) -> int:
        """Node id of the root."""
        return self._root

    @property
    def ssa_path(self) -> Tuple[Tuple[int, int], ...]:
        """The SSA path this tree was built from."""
        return self._ssa_path

    @property
    def output_indices(self) -> FrozenSet[str]:
        """Open indices kept on the root."""
        return self._output

    @property
    def leaf_tids(self) -> Tuple[int, ...]:
        """Originating tensor id of each leaf position."""
        return self._leaf_tids

    def leaf_of_tid(self, tid: int) -> int:
        """Leaf position corresponding to a network tensor id."""
        try:
            return self._leaf_of_tid[tid]
        except KeyError as exc:
            raise ContractionTreeError(f"tensor id {tid} not a leaf") from exc

    def is_leaf(self, node: int) -> bool:
        """Whether ``node`` is a leaf."""
        return self._record(node).children is None

    def children(self, node: int) -> Optional[Tuple[int, int]]:
        """Children of ``node`` (``None`` for leaves)."""
        return self._record(node).children

    def leaves_under(self, node: int) -> FrozenSet[int]:
        """Leaf positions contained in the subtree of ``node``."""
        return self._record(node).leaves

    def node_indices(self, node: int) -> FrozenSet[str]:
        """Index set ``s_v`` of the (intermediate) tensor produced at ``node``."""
        return self._record(node).indices

    def nodes(self) -> Tuple[int, ...]:
        """All node ids, leaves first then internal nodes in creation order."""
        return tuple(sorted(self._nodes))

    def internal_nodes(self) -> Tuple[int, ...]:
        """Internal (contraction) node ids in creation (topological) order."""
        return tuple(range(self._num_leaves, self._root + 1))

    def parent_map(self) -> Dict[int, int]:
        """Mapping from node id to its parent (root excluded).

        The tree is immutable, so the map is built once and cached; treat
        the returned dict as read-only.
        """
        if self._parent_map is None:
            parents: Dict[int, int] = {}
            for node in self.internal_nodes():
                a, b = self._nodes[node].children  # type: ignore[misc]
                parents[a] = node
                parents[b] = node
            self._parent_map = parents
        return self._parent_map

    def _record(self, node: int) -> _NodeRecord:
        try:
            return self._nodes[node]
        except KeyError as exc:
            raise ContractionTreeError(f"unknown node {node}") from exc

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes())

    # ------------------------------------------------------------------
    # Index / size utilities
    # ------------------------------------------------------------------
    def index_size(self, index: str) -> int:
        """Dimension ``w(e)`` of an index."""
        try:
            return self._index_sizes[index]
        except KeyError as exc:
            raise ContractionTreeError(f"unknown index {index!r}") from exc

    def log2_index_size(self, index: str) -> float:
        """``log2 w(e)``."""
        return math.log2(self.index_size(index))

    def all_indices(self) -> FrozenSet[str]:
        """Every index appearing on some leaf."""
        out: Set[str] = set()
        for leaf in range(self._num_leaves):
            out |= self._nodes[leaf].indices
        return frozenset(out)

    def node_log2_size(self, node: int, sliced: AbstractSet[str] = frozenset()) -> float:
        """log2 of the size of the tensor at ``node`` with ``sliced`` removed."""
        return sum(
            self.log2_index_size(ix)
            for ix in self._record(node).indices
            if ix not in sliced
        )

    def contraction_indices(self, node: int) -> FrozenSet[str]:
        """``s_v1 ∪ s_v2 ∪ s_v3`` for the contraction at an internal node."""
        rec = self._record(node)
        if rec.children is None:
            raise ContractionTreeError(f"node {node} is a leaf, not a contraction")
        a, b = rec.children
        return self._nodes[a].indices | self._nodes[b].indices | rec.indices

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def node_log2_flops(self, node: int, sliced: AbstractSet[str] = frozenset()) -> float:
        """log2 cost of a single subtask's contraction at ``node`` (Eq. 1 term)."""
        return sum(
            self.log2_index_size(ix)
            for ix in self.contraction_indices(node)
            if ix not in sliced
        )

    def contraction_cost(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """Total number of scalar multiply-adds for *one* subtask."""
        return sum(
            2.0 ** self.node_log2_flops(node, sliced) for node in self.internal_nodes()
        )

    def num_subtasks(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """``prod_{e in S} w(e)`` — independent subtasks under ``sliced``."""
        multiplier = 1.0
        for ix in sliced:
            multiplier *= self.index_size(ix)
        return multiplier

    def total_cost(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """Total cost over all ``prod w(e), e in S`` subtasks (Eq. 4)."""
        return self.num_subtasks(sliced) * self.contraction_cost(sliced)

    def log10_total_cost(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """``log10`` of :meth:`total_cost` (the unit used in the paper's plots)."""
        return math.log10(self.total_cost(sliced))

    def slicing_overhead(self, sliced: AbstractSet[str]) -> float:
        """Overhead ``O(B, S)`` of Eq. 2: sliced total cost / original cost."""
        return self.total_cost(sliced) / self.total_cost(frozenset())

    def max_intermediate_log2_size(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """log2 size of the biggest intermediate tensor (space complexity)."""
        return max(
            self.node_log2_size(node, sliced) for node in self.internal_nodes()
        )

    def max_rank(self, sliced: AbstractSet[str] = frozenset()) -> int:
        """Largest intermediate rank counting only unsliced indices.

        For quantum circuit networks (all sizes 2) this equals
        :meth:`max_intermediate_log2_size`; it is the quantity the paper
        calls the *target dimension* ``t``.
        """
        return max(
            sum(1 for ix in self._record(node).indices if ix not in sliced)
            for node in self.internal_nodes()
        )

    def peak_memory_elements(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """Rough peak memory (in tensor elements) for one subtask.

        Counts the largest contraction working set: both operands plus the
        output of the most expensive node.
        """
        peak = 0.0
        for node in self.internal_nodes():
            a, b = self._nodes[node].children  # type: ignore[misc]
            working = (
                2.0 ** self.node_log2_size(a, sliced)
                + 2.0 ** self.node_log2_size(b, sliced)
                + 2.0 ** self.node_log2_size(node, sliced)
            )
            peak = max(peak, working)
        return peak

    def arithmetic_intensity(self, sliced: AbstractSet[str] = frozenset()) -> float:
        """Naive flops-per-element ratio of the whole tree (step-by-step).

        Every contraction reads both operands and writes its output; the
        ratio of Eq. 1 cost to that traffic is the upper bound on arithmetic
        intensity without fusion (c.f. §5.1: for narrow GEMMs the two are of
        the same order, so TNC is bandwidth bound).
        """
        flops = 0.0
        traffic = 0.0
        for node in self.internal_nodes():
            a, b = self._nodes[node].children  # type: ignore[misc]
            flops += 2.0 ** self.node_log2_flops(node, sliced)
            traffic += (
                2.0 ** self.node_log2_size(a, sliced)
                + 2.0 ** self.node_log2_size(b, sliced)
                + 2.0 ** self.node_log2_size(node, sliced)
            )
        return flops / traffic if traffic else 0.0

    # ------------------------------------------------------------------
    # Structure queries used by stem / lifetime analysis
    # ------------------------------------------------------------------
    def node_depth(self, node: int) -> int:
        """Distance from the root (root has depth 0)."""
        parents = self.parent_map()
        depth = 0
        current = node
        while current != self._root:
            current = parents[current]
            depth += 1
        return depth

    def path_to_root(self, node: int) -> List[int]:
        """Nodes from ``node`` (inclusive) up to the root (inclusive)."""
        parents = self.parent_map()
        path = [node]
        current = node
        while current != self._root:
            current = parents[current]
            path.append(current)
        return path

    def linear_order(self) -> List[int]:
        """Internal nodes in a valid execution order (creation order)."""
        return list(self.internal_nodes())

    def subtree_cost(self, node: int, sliced: AbstractSet[str] = frozenset()) -> float:
        """Total single-subtask cost of the subtree rooted at ``node``."""
        if self.is_leaf(node):
            return 0.0
        a, b = self._nodes[node].children  # type: ignore[misc]
        return (
            2.0 ** self.node_log2_flops(node, sliced)
            + self.subtree_cost(a, sliced)
            + self.subtree_cost(b, sliced)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ContractionTree(leaves={self._num_leaves}, "
            f"log10_cost={self.log10_total_cost():.2f}, "
            f"max_rank={self.max_rank()})"
        )
