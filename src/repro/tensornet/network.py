"""Tensor-network graph.

Following the paper's notation (§2.1.1) a tensor network is an undirected
graph ``G = (V, E)`` in which vertices are tensors and edges are shared
indices, with an edge weight ``w(e)`` giving the size of each dimension
(always a power of two for quantum circuits, and exactly two once the
network is expressed at the level of individual qubit wires).

:class:`TensorNetwork` is the mutable container used by every other layer:

* the circuit converter populates it with gate tensors,
* the simplifier contracts away rank-1/rank-2 tensors in place,
* the path optimizers read its graph structure,
* the execution engines contract it numerically.

Tensor identities are stable integer ids (``tid``); indices are string
labels.  Open (dangling) indices — the output amplitudes' free legs — are
the indices that appear on exactly one tensor, unless explicitly overridden.
"""

from __future__ import annotations

import itertools
import math
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx
import numpy as np

from .tensor import Tensor, TensorError

__all__ = ["TensorNetwork", "TensorNetworkError"]


class TensorNetworkError(ValueError):
    """Raised for structurally invalid tensor-network operations."""


class TensorNetwork:
    """A collection of :class:`Tensor` objects joined by shared indices."""

    def __init__(self, tensors: Iterable[Tensor] = ()) -> None:
        self._tensors: Dict[int, Tensor] = {}
        self._index_to_tids: Dict[str, Set[int]] = {}
        self._next_tid = 0
        self._explicit_output: Optional[FrozenSet[str]] = None
        for t in tensors:
            self.add_tensor(t)

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def add_tensor(self, tensor: Tensor, tid: Optional[int] = None) -> int:
        """Add ``tensor``; returns its id."""
        if tid is None:
            tid = self._next_tid
        elif tid in self._tensors:
            raise TensorNetworkError(f"tensor id {tid} already in use")
        self._next_tid = max(self._next_tid, tid + 1)
        self._tensors[tid] = tensor
        for ix in tensor.indices:
            self._index_to_tids.setdefault(ix, set()).add(tid)
        return tid

    def remove_tensor(self, tid: int) -> Tensor:
        """Remove and return the tensor with id ``tid``."""
        try:
            tensor = self._tensors.pop(tid)
        except KeyError as exc:
            raise TensorNetworkError(f"no tensor with id {tid}") from exc
        for ix in tensor.indices:
            owners = self._index_to_tids.get(ix)
            if owners is not None:
                owners.discard(tid)
                if not owners:
                    del self._index_to_tids[ix]
        return tensor

    def replace_tensor(self, tid: int, tensor: Tensor) -> None:
        """Replace the tensor stored under ``tid``."""
        self.remove_tensor(tid)
        self.add_tensor(tensor, tid=tid)

    def set_output_indices(self, indices: Optional[Iterable[str]]) -> None:
        """Explicitly declare the open indices of the network.

        ``None`` restores the default rule (indices owned by one tensor).
        """
        if indices is None:
            self._explicit_output = None
            return
        indices = frozenset(indices)
        unknown = indices - set(self._index_to_tids)
        if unknown:
            raise TensorNetworkError(f"unknown output indices {sorted(unknown)}")
        self._explicit_output = indices

    def copy(self) -> "TensorNetwork":
        """Structural copy (tensors are shared; they are immutable)."""
        tn = TensorNetwork()
        for tid, tensor in self._tensors.items():
            tn.add_tensor(tensor, tid=tid)
        tn._explicit_output = self._explicit_output
        return tn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_tensors(self) -> int:
        """Number of tensors currently in the network."""
        return len(self._tensors)

    @property
    def tensor_ids(self) -> Tuple[int, ...]:
        """All tensor ids, sorted."""
        return tuple(sorted(self._tensors))

    def tensor(self, tid: int) -> Tensor:
        """Tensor with id ``tid``."""
        try:
            return self._tensors[tid]
        except KeyError as exc:
            raise TensorNetworkError(f"no tensor with id {tid}") from exc

    def tensors(self) -> Dict[int, Tensor]:
        """Copy of the id → tensor mapping."""
        return dict(self._tensors)

    def __len__(self) -> int:
        return len(self._tensors)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._tensors))

    def __contains__(self, tid: int) -> bool:
        return tid in self._tensors

    # -- indices --------------------------------------------------------
    @property
    def indices(self) -> Tuple[str, ...]:
        """All index labels present in the network, sorted."""
        return tuple(sorted(self._index_to_tids))

    def index_owners(self, index: str) -> FrozenSet[int]:
        """The tensor ids carrying ``index``."""
        try:
            return frozenset(self._index_to_tids[index])
        except KeyError as exc:
            raise TensorNetworkError(f"unknown index {index!r}") from exc

    def size_of(self, index: str) -> int:
        """Dimension size ``w(e)`` of an index."""
        owners = self.index_owners(index)
        tid = next(iter(owners))
        return self._tensors[tid].size_of(index)

    def index_sizes(self) -> Dict[str, int]:
        """Mapping of every index to its size."""
        return {ix: self.size_of(ix) for ix in self._index_to_tids}

    def output_indices(self) -> FrozenSet[str]:
        """The open (dangling) indices of the network."""
        if self._explicit_output is not None:
            return frozenset(ix for ix in self._explicit_output if ix in self._index_to_tids)
        return frozenset(
            ix for ix, owners in self._index_to_tids.items() if len(owners) == 1
        )

    def inner_indices(self) -> FrozenSet[str]:
        """Indices that will be summed over during the full contraction."""
        return frozenset(self._index_to_tids) - self.output_indices()

    def tensor_indices(self, tid: int) -> FrozenSet[str]:
        """Incidence set ``s_v`` of a tensor: the indices it carries."""
        return frozenset(self.tensor(tid).indices)

    def neighbors(self, tid: int) -> FrozenSet[int]:
        """Tensor ids sharing at least one index with ``tid``."""
        out: Set[int] = set()
        for ix in self.tensor(tid).indices:
            out.update(self._index_to_tids[ix])
        out.discard(tid)
        return frozenset(out)

    def shared_indices(self, tid_a: int, tid_b: int) -> FrozenSet[str]:
        """Indices common to two tensors."""
        return self.tensor_indices(tid_a) & self.tensor_indices(tid_b)

    # -- aggregate metrics ----------------------------------------------
    def total_log2_size(self) -> float:
        """Sum of log2 sizes of all tensors (storage footprint)."""
        return sum(t.log2_size for t in self._tensors.values())

    def max_rank(self) -> int:
        """Largest tensor rank in the network."""
        return max((t.ndim for t in self._tensors.values()), default=0)

    def is_concrete(self) -> bool:
        """Whether every tensor carries numerical data."""
        return all(not t.is_abstract for t in self._tensors.values())

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.MultiGraph:
        """The network as a networkx multigraph (vertices=tensors, edges=indices).

        Open indices become self-loop-free dangling edges attached to a
        virtual node ``("open", index)`` so that graph partitioners see them.
        """
        g = nx.MultiGraph()
        for tid in self._tensors:
            g.add_node(tid)
        output = self.output_indices()
        for ix, owners in self._index_to_tids.items():
            owners = sorted(owners)
            weight = math.log2(self.size_of(ix))
            if len(owners) == 2:
                g.add_edge(owners[0], owners[1], index=ix, weight=weight)
            elif len(owners) == 1 and ix in output:
                virtual = ("open", ix)
                g.add_node(virtual)
                g.add_edge(owners[0], virtual, index=ix, weight=weight)
            elif len(owners) > 2:
                # hyper-edge: connect all owners pairwise through a virtual node
                virtual = ("hyper", ix)
                g.add_node(virtual)
                for tid in owners:
                    g.add_edge(tid, virtual, index=ix, weight=weight)
        return g

    def line_graph(self) -> nx.Graph:
        """Graph whose nodes are indices, joined when they share a tensor."""
        g = nx.Graph()
        for ix in self._index_to_tids:
            g.add_node(ix, weight=math.log2(self.size_of(ix)))
        for tensor in self._tensors.values():
            for a, b in itertools.combinations(tensor.indices, 2):
                g.add_edge(a, b)
        return g

    # ------------------------------------------------------------------
    # Numerical contraction
    # ------------------------------------------------------------------
    def contract_pair(self, tid_a: int, tid_b: int) -> int:
        """Contract two tensors in place; returns the id of the result.

        All indices shared between the pair *and not open nor shared with any
        other tensor* are summed over.  Indices still needed elsewhere are
        kept on the result (this handles hyper-indices such as the paper's
        copy tensors correctly).
        """
        if tid_a == tid_b:
            raise TensorNetworkError("cannot contract a tensor with itself")
        ta = self.tensor(tid_a)
        tb = self.tensor(tid_b)
        output = self.output_indices()
        shared = self.shared_indices(tid_a, tid_b)
        keep_shared = {
            ix
            for ix in shared
            if ix in output or len(self._index_to_tids[ix] - {tid_a, tid_b}) > 0
        }
        summed = sorted(shared - keep_shared)

        a = ta.require_data()
        b = tb.require_data()
        axes_a = [ta.indices.index(ix) for ix in summed]
        axes_b = [tb.indices.index(ix) for ix in summed]
        if keep_shared:
            # fall back to einsum so batch (kept-shared) indices are aligned
            out_indices = tuple(
                ix for ix in ta.indices if ix not in summed
            ) + tuple(ix for ix in tb.indices if ix not in summed and ix not in ta.indices)
            data = _einsum_pair(ta, tb, out_indices)
        else:
            data = np.tensordot(a, b, axes=(axes_a, axes_b))
            out_indices = tuple(ix for ix in ta.indices if ix not in summed) + tuple(
                ix for ix in tb.indices if ix not in summed
            )
        sizes = {**ta.sizes(), **tb.sizes()}
        sizes = {ix: sizes[ix] for ix in out_indices}
        result = Tensor(out_indices, data=data, sizes=sizes, tags=ta.tags | tb.tags)
        self.remove_tensor(tid_a)
        self.remove_tensor(tid_b)
        return self.add_tensor(result)

    def contract_all(self, order: Optional[Sequence[Tuple[int, int]]] = None) -> Tensor:
        """Contract the whole network numerically and return the result.

        Parameters
        ----------
        order:
            Optional explicit sequence of ``(tid_a, tid_b)`` pairs.  When the
            network mutates, the id of each contraction result is the next
            free id; paths produced by :mod:`repro.paths` already use this
            convention.  With ``order=None`` a simple greedy order (smallest
            resulting tensor first) is used — fine for test-sized networks.
        """
        tn = self.copy()
        if not tn.is_concrete():
            raise TensorNetworkError("contract_all requires concrete tensors")
        if len(tn) == 0:
            raise TensorNetworkError("cannot contract an empty network")
        if order is not None:
            for tid_a, tid_b in order:
                tn.contract_pair(tid_a, tid_b)
        else:
            while len(tn) > 1:
                tid_a, tid_b = tn._cheapest_pair()
                tn.contract_pair(tid_a, tid_b)
        remaining = list(tn._tensors.values())
        result = remaining[0]
        for other in remaining[1:]:  # disconnected components: outer product
            result = result.contract_with(other)
        return result

    def _cheapest_pair(self) -> Tuple[int, int]:
        """Pick the connected pair whose contraction output is smallest."""
        best: Optional[Tuple[float, int, int]] = None
        seen: Set[Tuple[int, int]] = set()
        for tid in self._tensors:
            for other in self.neighbors(tid):
                key = (min(tid, other), max(tid, other))
                if key in seen:
                    continue
                seen.add(key)
                out_size = self._pair_output_log2(key[0], key[1])
                if best is None or out_size < best[0]:
                    best = (out_size, key[0], key[1])
        if best is None:
            # disconnected network: contract two arbitrary tensors
            tids = sorted(self._tensors)
            return tids[0], tids[1]
        return best[1], best[2]

    def _pair_output_log2(self, tid_a: int, tid_b: int) -> float:
        output = self.output_indices()
        shared = self.shared_indices(tid_a, tid_b)
        keep = (self.tensor_indices(tid_a) | self.tensor_indices(tid_b)) - {
            ix
            for ix in shared
            if ix not in output and not (self._index_to_tids[ix] - {tid_a, tid_b})
        }
        return sum(math.log2(self.size_of(ix)) for ix in keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TensorNetwork(num_tensors={len(self._tensors)}, "
            f"num_indices={len(self._index_to_tids)}, "
            f"open={len(self.output_indices())})"
        )


def _einsum_pair(ta: Tensor, tb: Tensor, out_indices: Tuple[str, ...]) -> np.ndarray:
    """Contract two tensors with einsum, keeping ``out_indices``."""
    symbols: Dict[str, str] = {}

    def sym(ix: str) -> str:
        if ix not in symbols:
            symbols[ix] = _EINSUM_SYMBOLS[len(symbols)]
        return symbols[ix]

    spec_a = "".join(sym(ix) for ix in ta.indices)
    spec_b = "".join(sym(ix) for ix in tb.indices)
    spec_out = "".join(sym(ix) for ix in out_indices)
    return np.einsum(
        f"{spec_a},{spec_b}->{spec_out}", ta.require_data(), tb.require_data()
    )


_EINSUM_SYMBOLS = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    + "".join(chr(c) for c in range(192, 600))
)
