"""Tensor-network preprocessing (rank-1 / rank-2 absorption).

The paper relies on the preprocessing implemented in quimb/cotengra: before
any path search, tensors of rank 1 and rank 2 are absorbed into their
neighbours, which typically shrinks a Sycamore amplitude network from a few
thousand tensors down to a few hundred without changing the value of the
contraction.  This module implements the same passes:

* **rank-0 absorption** — scalars are multiplied into an arbitrary neighbour
  (or accumulated into a global prefactor);
* **rank-1 absorption** — a vector is contracted into the unique tensor that
  shares its index;
* **rank-2 absorption** — a matrix is contracted into one of its two
  neighbours (the smaller one), which simply relabels a wire when the matrix
  is a gate on a qubit world line.

The passes work on both concrete and abstract networks; abstract networks
are transformed structurally without touching data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from .network import TensorNetwork, TensorNetworkError
from .tensor import Tensor

__all__ = ["SimplificationReport", "simplify_network", "absorb_rank_one", "absorb_rank_two"]


@dataclass
class SimplificationReport:
    """Statistics of a simplification run."""

    initial_tensors: int = 0
    final_tensors: int = 0
    rank0_absorbed: int = 0
    rank1_absorbed: int = 0
    rank2_absorbed: int = 0
    passes: int = 0
    scalar_prefactor: complex = 1.0 + 0.0j

    @property
    def tensors_removed(self) -> int:
        """Total number of tensors eliminated."""
        return self.initial_tensors - self.final_tensors


def _merge(tn: TensorNetwork, tid_small: int, tid_big: int) -> int:
    """Absorb ``tid_small`` into ``tid_big``; returns the new tensor id.

    Uses numerical contraction for concrete tensors and structural merging
    for abstract ones.
    """
    small = tn.tensor(tid_small)
    big = tn.tensor(tid_big)
    if not small.is_abstract and not big.is_abstract:
        return tn.contract_pair(tid_small, tid_big)

    # structural merge
    output = tn.output_indices()
    shared = tn.shared_indices(tid_small, tid_big)
    summed = {
        ix
        for ix in shared
        if ix not in output and not (tn.index_owners(ix) - {tid_small, tid_big})
    }
    out_indices = tuple(ix for ix in small.indices if ix not in summed) + tuple(
        ix for ix in big.indices if ix not in summed and ix not in small.indices
    )
    sizes = {**small.sizes(), **big.sizes()}
    sizes = {ix: sizes[ix] for ix in out_indices}
    merged = Tensor(out_indices, data=None, sizes=sizes, tags=small.tags | big.tags)
    tn.remove_tensor(tid_small)
    tn.remove_tensor(tid_big)
    return tn.add_tensor(merged)


def absorb_rank_one(tn: TensorNetwork, report: Optional[SimplificationReport] = None) -> int:
    """Absorb every rank-0 and rank-1 tensor into a neighbour.

    Returns the number of tensors absorbed.  Rank-1 tensors whose only index
    is open are left alone (they are the network's free legs).
    """
    if report is None:
        report = SimplificationReport()
    absorbed = 0
    changed = True
    while changed:
        changed = False
        output = tn.output_indices()
        for tid in list(tn.tensor_ids):
            if tid not in tn:
                continue
            tensor = tn.tensor(tid)
            if tensor.ndim > 1:
                continue
            if tensor.ndim == 1 and tensor.indices[0] in output:
                continue
            neighbors = tn.neighbors(tid)
            if not neighbors:
                # disconnected scalar: fold into the prefactor, but never
                # empty the network completely (callers expect at least one
                # tensor so that contract_all() still works)
                if tensor.ndim == 0 and not tensor.is_abstract and tn.num_tensors > 1:
                    report.scalar_prefactor *= complex(tensor.require_data())
                    tn.remove_tensor(tid)
                    absorbed += 1
                    report.rank0_absorbed += 1
                    changed = True
                continue
            target = min(neighbors, key=lambda t: (tn.tensor(t).ndim, t))
            _merge(tn, tid, target)
            absorbed += 1
            if tensor.ndim == 0:
                report.rank0_absorbed += 1
            else:
                report.rank1_absorbed += 1
            changed = True
    return absorbed


def absorb_rank_two(tn: TensorNetwork, report: Optional[SimplificationReport] = None) -> int:
    """Absorb every rank-2 tensor into one of its neighbours.

    A rank-2 tensor on a qubit world line (a single-qubit gate) is merged
    into whichever neighbour is smaller; this never increases any tensor's
    rank.  Rank-2 tensors with two open indices are kept.
    """
    if report is None:
        report = SimplificationReport()
    absorbed = 0
    changed = True
    while changed:
        changed = False
        output = tn.output_indices()
        for tid in list(tn.tensor_ids):
            if tid not in tn:
                continue
            tensor = tn.tensor(tid)
            if tensor.ndim != 2:
                continue
            open_count = sum(1 for ix in tensor.indices if ix in output)
            if open_count == 2:
                continue
            neighbors = tn.neighbors(tid)
            if not neighbors:
                continue
            # absorbing a matrix along a shared wire never grows the target's
            # rank, so choose the smallest neighbour for cache friendliness
            target = min(neighbors, key=lambda t: (tn.tensor(t).ndim, t))
            _merge(tn, tid, target)
            absorbed += 1
            report.rank2_absorbed += 1
            changed = True
    return absorbed


def simplify_network(
    tn: TensorNetwork,
    max_passes: int = 20,
    absorb_rank2: bool = True,
) -> SimplificationReport:
    """Run absorption passes in place until a fixed point.

    Parameters
    ----------
    tn:
        Network to simplify (mutated in place).
    max_passes:
        Upper bound on alternating rank-1 / rank-2 passes.
    absorb_rank2:
        Whether to run the rank-2 pass (disable to keep gate granularity).

    Returns
    -------
    SimplificationReport
        Counts of absorbed tensors and the accumulated scalar prefactor.
    """
    report = SimplificationReport(initial_tensors=tn.num_tensors)
    for _ in range(max_passes):
        report.passes += 1
        moved = absorb_rank_one(tn, report)
        if absorb_rank2:
            moved += absorb_rank_two(tn, report)
        if moved == 0:
            break
    report.final_tensors = tn.num_tensors
    return report
