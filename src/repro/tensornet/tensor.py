"""Labelled tensors.

A :class:`Tensor` couples an (optional) numpy array with a tuple of *index
labels*.  Index labels are the "edges" of the tensor-network graph in the
paper's notation: two tensors sharing a label are connected, and contracting
them sums over that label.

Tensors may be *abstract* (``data is None``): the planning layers (path
search, lifetime analysis, slicing) only need the index structure and sizes,
and building the actual numerical data for a 53-qubit Sycamore network would
be wasteful when all we want is to plan.  The execution layer requires
concrete data and will raise if it is missing.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Tensor", "TensorError"]


class TensorError(ValueError):
    """Raised for malformed tensor constructions."""


class Tensor:
    """A tensor with named indices.

    Parameters
    ----------
    indices:
        Ordered index labels, one per axis.
    data:
        Optional numpy array whose shape matches the index sizes.
    sizes:
        Mapping from index label to dimension size.  Required when ``data``
        is ``None``; inferred from ``data.shape`` otherwise.  In quantum
        circuit networks every size is 2.
    tags:
        Free-form tags (e.g. ``"gate:fsim"``, ``"qubit:17"``) used by the
        simplifier and by debugging output.
    """

    __slots__ = ("_indices", "_data", "_sizes", "_tags")

    def __init__(
        self,
        indices: Sequence[str],
        data: Optional[np.ndarray] = None,
        sizes: Optional[Mapping[str, int]] = None,
        tags: Iterable[str] = (),
    ) -> None:
        self._indices: Tuple[str, ...] = tuple(indices)
        if len(set(self._indices)) != len(self._indices):
            raise TensorError(f"repeated index labels in {self._indices}")
        if data is not None:
            data = np.asarray(data)
            if data.ndim != len(self._indices):
                raise TensorError(
                    f"data has {data.ndim} axes but {len(self._indices)} indices given"
                )
            inferred = {ix: int(dim) for ix, dim in zip(self._indices, data.shape)}
            if sizes is not None:
                for ix, size in inferred.items():
                    if ix in sizes and int(sizes[ix]) != size:
                        raise TensorError(
                            f"size mismatch for index {ix!r}: data says {size}, "
                            f"sizes says {sizes[ix]}"
                        )
            self._sizes = inferred
        else:
            if sizes is None:
                raise TensorError("abstract tensors require explicit sizes")
            missing = [ix for ix in self._indices if ix not in sizes]
            if missing:
                raise TensorError(f"missing sizes for indices {missing}")
            self._sizes = {ix: int(sizes[ix]) for ix in self._indices}
        self._data = data
        self._tags: FrozenSet[str] = frozenset(tags)

    # ------------------------------------------------------------------
    @property
    def indices(self) -> Tuple[str, ...]:
        """Ordered index labels."""
        return self._indices

    @property
    def data(self) -> Optional[np.ndarray]:
        """Underlying array, or ``None`` for abstract tensors."""
        return self._data

    @property
    def tags(self) -> FrozenSet[str]:
        """Free-form tags."""
        return self._tags

    @property
    def ndim(self) -> int:
        """Tensor rank."""
        return len(self._indices)

    @property
    def is_abstract(self) -> bool:
        """Whether the tensor carries no numerical data."""
        return self._data is None

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape implied by the index sizes."""
        return tuple(self._sizes[ix] for ix in self._indices)

    @property
    def size(self) -> int:
        """Total number of elements."""
        out = 1
        for ix in self._indices:
            out *= self._sizes[ix]
        return out

    @property
    def log2_size(self) -> float:
        """log2 of the number of elements (the paper's natural unit)."""
        return sum(math.log2(self._sizes[ix]) for ix in self._indices)

    def size_of(self, index: str) -> int:
        """Dimension of a named index."""
        try:
            return self._sizes[index]
        except KeyError as exc:
            raise TensorError(f"index {index!r} not on this tensor") from exc

    def sizes(self) -> Dict[str, int]:
        """Copy of the index→size mapping."""
        return dict(self._sizes)

    # ------------------------------------------------------------------
    def with_data(self, data: np.ndarray) -> "Tensor":
        """Return a copy of this tensor carrying ``data``."""
        return Tensor(self._indices, data=data, sizes=self._sizes, tags=self._tags)

    def with_tags(self, *tags: str) -> "Tensor":
        """Return a copy with additional tags."""
        return Tensor(
            self._indices, data=self._data, sizes=self._sizes, tags=self._tags | set(tags)
        )

    def retagged(self, tags: Iterable[str]) -> "Tensor":
        """Return a copy whose tags are exactly ``tags``."""
        return Tensor(self._indices, data=self._data, sizes=self._sizes, tags=tags)

    def reindexed(self, mapping: Mapping[str, str]) -> "Tensor":
        """Return a copy with indices renamed according to ``mapping``."""
        new_indices = tuple(mapping.get(ix, ix) for ix in self._indices)
        new_sizes = {mapping.get(ix, ix): size for ix, size in self._sizes.items()}
        return Tensor(new_indices, data=self._data, sizes=new_sizes, tags=self._tags)

    def transposed(self, order: Sequence[str]) -> "Tensor":
        """Return a copy with axes permuted into ``order``."""
        order = tuple(order)
        if set(order) != set(self._indices) or len(order) != len(self._indices):
            raise TensorError(f"{order} is not a permutation of {self._indices}")
        if self._data is None:
            return Tensor(order, data=None, sizes=self._sizes, tags=self._tags)
        perm = tuple(self._indices.index(ix) for ix in order)
        return Tensor(
            order, data=np.transpose(self._data, perm), sizes=self._sizes, tags=self._tags
        )

    def slice_index(self, index: str, value: int) -> "Tensor":
        """Fix ``index`` to ``value``, reducing the rank by one.

        This is the elementary *slicing* operation of the paper: the sliced
        dimension is removed from the tensor and the caller enumerates all
        of its values as independent subtasks.
        """
        if index not in self._indices:
            # slicing an index the tensor does not carry is a no-op; this is
            # exactly the case of a tensor outside the index's lifetime.
            return self
        size = self._sizes[index]
        if not 0 <= value < size:
            raise TensorError(f"slice value {value} out of range for index {index!r}")
        axis = self._indices.index(index)
        new_indices = self._indices[:axis] + self._indices[axis + 1 :]
        new_sizes = {ix: s for ix, s in self._sizes.items() if ix != index}
        if self._data is None:
            return Tensor(new_indices, data=None, sizes=new_sizes, tags=self._tags)
        new_data = np.take(self._data, value, axis=axis)
        return Tensor(new_indices, data=new_data, sizes=new_sizes, tags=self._tags)

    def require_data(self) -> np.ndarray:
        """Return the data array, raising for abstract tensors."""
        if self._data is None:
            raise TensorError("operation requires a concrete (non-abstract) tensor")
        return self._data

    # ------------------------------------------------------------------
    def contract_with(self, other: "Tensor") -> "Tensor":
        """Pairwise contraction over all shared indices (numerical)."""
        a = self.require_data()
        b = other.require_data()
        shared = [ix for ix in self._indices if ix in other._indices]
        axes_a = [self._indices.index(ix) for ix in shared]
        axes_b = [other._indices.index(ix) for ix in shared]
        out = np.tensordot(a, b, axes=(axes_a, axes_b))
        out_indices = tuple(ix for ix in self._indices if ix not in shared) + tuple(
            ix for ix in other._indices if ix not in shared
        )
        sizes = {**self._sizes, **other._sizes}
        sizes = {ix: sizes[ix] for ix in out_indices}
        return Tensor(out_indices, data=out, sizes=sizes, tags=self._tags | other._tags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "abstract" if self.is_abstract else "concrete"
        return f"Tensor(rank={self.ndim}, indices={list(self._indices)}, {kind})"
