"""FIG12 — Thread-level optimization by secondary slicing.

Paper artifact: Fig. 12, "Optimization by secondary slicing at the thread
level" — on a single node (390 cores), for tasks of different size on a
contraction path, the per-component time (memory access / permutation /
GEMM) of the step-by-step strategy is compared against the fused design.
The paper's conclusions: memory-access time is largely reduced, permutation
and GEMM stay similar, and in some cases the kernel turns compute-bound.

This benchmark regenerates the breakdown for a sweep of task sizes (the
process-level target rank, which controls the stem-tensor size a node has to
handle) and times the fused simulation itself.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import LifetimeSliceFinder, SecondarySlicer, SimulatedAnnealingSliceRefiner
from repro.execution import ThreadLevelSimulator


def _breakdown_for_target(tree, stem, model, target_rank):
    finder = LifetimeSliceFinder(target_rank)
    slicing = finder.find(tree, stem=stem, cost_model=model)
    slicing = SimulatedAnnealingSliceRefiner(seed=0).refine(
        tree, slicing.sliced, target_rank, cost_model=model
    )
    plan = SecondarySlicer(ldm_rank=13).plan(stem, process_sliced=slicing.sliced)
    simulator = ThreadLevelSimulator()
    step = simulator.simulate_step_by_step(stem, slicing.sliced)
    fused = simulator.simulate_fused(plan, slicing.sliced)
    return slicing, plan, step, fused


def test_fig12_thread_level_breakdown(
    benchmark, sycamore_tree, sycamore_stem, sycamore_cost_model, bench_target_rank, record_result
):
    max_rank = sycamore_tree.max_rank()
    targets = sorted(
        {max(bench_target_rank, 6), max(max_rank - 10, 6), max(max_rank - 5, 6), max_rank - 2}
    )

    def sweep():
        rows = []
        for target in targets:
            slicing, plan, step, fused = _breakdown_for_target(
                sycamore_tree, sycamore_stem, sycamore_cost_model, target
            )
            rows.append(
                {
                    "task_rank": target,
                    "schedule": "step-by-step",
                    "memory_access_s": step.memory_access_seconds,
                    "rma_s": step.rma_seconds,
                    "permutation_s": step.permutation_seconds,
                    "gemm_s": step.gemm_seconds,
                    "total_s": step.total_seconds,
                    "fused_steps_avg": 1.0,
                }
            )
            rows.append(
                {
                    "task_rank": target,
                    "schedule": "fused",
                    "memory_access_s": fused.memory_access_seconds,
                    "rma_s": fused.rma_seconds,
                    "permutation_s": fused.permutation_seconds,
                    "gemm_s": fused.gemm_seconds,
                    "total_s": fused.total_seconds,
                    "fused_steps_avg": plan.average_fused_steps,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        rows,
        title=(
            "FIG12: thread-level time breakdown per subtask, step-by-step vs fused "
            "(paper: memory access largely reduced, permutation and GEMM similar)"
        ),
        precision=4,
    )
    record_result("fig12_fused_breakdown", text)

    # paper-shaped checks, per task size: fusion must not increase memory
    # access time and must leave GEMM/permutation essentially unchanged
    by_target = {}
    for row in rows:
        by_target.setdefault(row["task_rank"], {})[row["schedule"]] = row
    for target, pair in by_target.items():
        step, fused = pair["step-by-step"], pair["fused"]
        assert fused["memory_access_s"] <= step["memory_access_s"] * 1.01
        assert fused["gemm_s"] == pytest.approx(step["gemm_s"], rel=1e-6)
        assert fused["total_s"] <= step["total_s"] * 1.05
