"""CI gate: real distributed execution must beat serial and match the model.

Run after the measured scaling bench::

    PYTHONPATH=src python benchmarks/check_distributed_scaling.py \
        benchmarks/results/BENCH_distributed.json

Validates the **latest** trajectory entry
``test_fig11_measured_strong_scaling`` appended (CI appends its own entry
right before this gate runs, so the latest one always reflects the
current commit on the current runner):

* the sweep covered at least ``REPRO_DIST_MIN_COUNTS`` distinct worker
  counts (default 3 — the acceptance floor for the calibrated-prediction
  comparison) including a serial-baseline-relative 2-worker point;
* the 2-worker point's speedup over the serial reference exceeds
  ``REPRO_DIST_MIN_SPEEDUP`` (default 1.0): farming subtasks to two real
  localhost worker processes must pay for its socket round-trips;
* every point's measured wall time matches the calibrated cost model's
  prediction within ``REPRO_DIST_MAX_RELERR`` (default 0.25).

The gates are meaningful only on multi-core runners against the gated
workload (``REPRO_BENCH_GATED=1``), which is how CI invokes the bench;
quick single-core entries appended from developer machines are never the
latest entry in CI.  Checks raise explicitly (no ``assert``), so the
gate also holds under ``python -O``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

MIN_COUNTS = int(os.environ.get("REPRO_DIST_MIN_COUNTS", "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_DIST_MIN_SPEEDUP", "1.0"))
MAX_RELERR = float(os.environ.get("REPRO_DIST_MAX_RELERR", "0.25"))


class ScalingGateError(RuntimeError):
    """A distributed-scaling regression (or a sweep too thin to gate)."""


def check(path: Path) -> None:
    history = json.loads(path.read_text())
    if not history:
        raise ScalingGateError(f"{path} holds no trajectory entries")
    entry = history[-1]
    points = entry.get("points") or []
    counts = sorted({int(p["workers"]) for p in points})
    print(
        f"latest entry: workers={counts} gated={entry.get('gated')} "
        f"cpus={entry.get('cpu_count')}"
    )
    for point in points:
        print(
            f"  {point['workers']:>2} workers: measured {point['measured_s']:.4f}s "
            f"projected {point['projected_s']:.4f}s speedup {point['speedup']:.2f}x "
            f"rel_err {point['rel_err']:.3f}"
        )

    if len(counts) < MIN_COUNTS:
        raise ScalingGateError(
            f"sweep covered {len(counts)} worker counts {counts}; the "
            f"calibrated-prediction comparison needs >= {MIN_COUNTS}"
        )
    two = [p for p in points if int(p["workers"]) == 2]
    if not two:
        raise ScalingGateError(f"sweep {counts} has no 2-worker point to gate")
    speedup = float(two[0]["speedup"])
    if speedup <= MIN_SPEEDUP:
        raise ScalingGateError(
            f"2-worker speedup over serial is {speedup:.3f}x "
            f"(gate: > {MIN_SPEEDUP}): distributed execution lost to the "
            "serial baseline"
        )
    worst = max(points, key=lambda p: float(p["rel_err"]))
    if float(worst["rel_err"]) > MAX_RELERR:
        raise ScalingGateError(
            f"{worst['workers']}-worker measured time {worst['measured_s']:.4f}s "
            f"diverges from the calibrated prediction "
            f"{worst['projected_s']:.4f}s by {float(worst['rel_err']):.1%} "
            f"(gate: <= {MAX_RELERR:.0%})"
        )
    print(
        f"distributed scaling gate passed: 2-worker speedup {speedup:.2f}x, "
        f"worst prediction error {float(worst['rel_err']):.1%}"
    )


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__)
        return 2
    try:
        check(Path(argv[1]))
    except ScalingGateError as exc:
        print(f"distributed scaling gate FAILED: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
