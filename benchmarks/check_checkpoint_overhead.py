"""CI gate: the durable chunk ledger must stay cheap on the hot path.

Run after the quick exec-plan bench::

    PYTHONPATH=src python benchmarks/check_checkpoint_overhead.py \
        benchmarks/results/BENCH_exec_plan.json

Validates the ``checkpoint_overhead`` section the bench emitted: a run
with a :class:`CheckpointStore` attached (write-ahead slot records,
atomic flushes, ledger retirement) must stay within
``REPRO_CHECKPOINT_OVERHEAD_MAX`` (default 5%) of the same run without a
store, and the armed runs must have recorded zero retries and zero
faults (a clean interleaved pair is the only fair hot-path comparison).
Exits non-zero on any violation.  Checks raise explicitly (no
``assert``), so the gate also holds under ``python -O``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path


class OverheadError(RuntimeError):
    """The armed chunk ledger costs more than the budget allows."""


#: Maximum tolerated checkpoint-armed overhead fraction (0.05 = 5%).
MAX_OVERHEAD = float(os.environ.get("REPRO_CHECKPOINT_OVERHEAD_MAX", "0.05"))


def main(path: str) -> int:
    point = json.loads(Path(path).read_text())
    section = point.get("checkpoint_overhead")
    if not section:
        raise OverheadError(
            "bench JSON has no 'checkpoint_overhead' section; the overhead "
            "measurement did not run"
        )
    baseline = float(section["baseline_seconds"])
    armed = float(section["armed_seconds"])
    overhead = float(section["overhead_fraction"])
    print(
        f"checkpoint hot path: unarmed {baseline * 1000:.2f} ms, "
        f"armed {armed * 1000:.2f} ms -> {overhead * 100:+.2f}% "
        f"({section.get('num_slots', '?')} slots, flush every "
        f"{section.get('checkpoint_every', '?')}; "
        f"budget: < {MAX_OVERHEAD * 100:.0f}%)"
    )

    if int(section.get("retries", -1)) != 0 or int(section.get("faults", -1)) != 0:
        raise OverheadError(
            "the armed checkpoint run recorded retries/faults; the "
            "measurement is not a hot-path comparison"
        )
    if overhead >= MAX_OVERHEAD:
        raise OverheadError(
            f"armed chunk ledger costs {overhead * 100:.2f}% "
            f">= {MAX_OVERHEAD * 100:.0f}% of the unarmed run"
        )
    print("checkpoint overhead gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results/BENCH_exec_plan.json"))
