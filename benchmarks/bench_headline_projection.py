"""TAB-HEADLINE — §6.2 headline numbers.

Paper artifact (text of §6.2): using 1024 nodes, a perfect sample or 1 M
correlated samples is generated in 10098.5 s; projected onto 107 520 nodes
(41 932 800 cores) the time drops to 96.1 s and the sustained
single-precision performance is 308.6 Pflop/s — more than 5× the 60.4
Pflop/s of the 2021 Gordon Bell run.

Two projections are regenerated:

* ``paper-calibrated`` — the paper's own measured time and complexity, run
  through our projection arithmetic (validates the model reproduces the
  published 96.1 s / 308.6 Pflop/s / >5× numbers exactly);
* ``our-workload`` — the full pipeline on the benchmark workload, end to
  end (plan → slice → fuse → schedule), whose absolute numbers differ (our
  substrate is an analytical model and our path optimizer is weaker than
  cotengra+KaHyPar) but whose derivation is identical.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import SecondarySlicer
from repro.execution import (
    GORDON_BELL_2021_PFLOPS,
    HeadlineProjection,
    ProcessScheduler,
    ThreadLevelSimulator,
)

MEASURED_NODES = 1024
PROJECTED_NODES = 107_520
NUM_CORRELATED_SAMPLES = 1_000_000


def _paper_calibrated_projection():
    """The paper's measured run fed through the projection arithmetic."""
    return HeadlineProjection(
        measured_nodes=MEASURED_NODES,
        measured_seconds=10_098.5,
        projected_nodes=PROJECTED_NODES,
        # total useful flops implied by the paper's sustained rate and time
        total_flops=308.6e15 * 96.1,
    )


def _our_workload_projection(stem, slicing, tree):
    plan = SecondarySlicer(ldm_rank=13).plan(stem, process_sliced=slicing.sliced)
    timing = ThreadLevelSimulator().simulate_fused(plan, slicing.sliced)
    stem_fraction = max(stem.cost_fraction(), 1e-9)
    subtask_seconds = timing.total_seconds / stem_fraction
    total_flops = 8.0 * tree.total_cost(slicing.sliced)
    subtask_flops = total_flops / max(slicing.num_subtasks, 1.0)
    scheduler = ProcessScheduler(subtask_seconds=subtask_seconds, subtask_flops=subtask_flops)
    measured_seconds = scheduler.elapsed_seconds(
        int(round(slicing.num_subtasks)), MEASURED_NODES
    )
    return HeadlineProjection(
        measured_nodes=MEASURED_NODES,
        measured_seconds=measured_seconds,
        projected_nodes=PROJECTED_NODES,
        total_flops=total_flops,
    )


def test_headline_projection(
    benchmark, sycamore_stem, sycamore_slicing, sycamore_tree, record_result
):
    paper = _paper_calibrated_projection()
    ours = benchmark.pedantic(
        _our_workload_projection,
        args=(sycamore_stem, sycamore_slicing, sycamore_tree),
        rounds=1,
        iterations=1,
    )

    rows = []
    for label, projection in (("paper-calibrated", paper), ("our-workload", ours)):
        summary = projection.summary()
        summary = {"case": label, **summary}
        rows.append(summary)
    text = format_table(
        rows,
        columns=[
            "case",
            "measured_nodes",
            "measured_seconds",
            "projected_nodes",
            "projected_cores",
            "projected_seconds",
            "sustained_pflops",
            "speedup_over_gb2021",
        ],
        title=(
            "TAB-HEADLINE: projection to the full machine "
            "(paper: 10098.5 s @1024 nodes -> 96.1 s @107520 nodes, 308.6 Pflops, >5x GB2021)"
        ),
        precision=5,
    )
    record_result("headline_projection", text)

    # the projection arithmetic itself must reproduce the published numbers
    assert paper.projected_seconds == pytest.approx(96.1, abs=0.5)
    assert paper.projected_cores == 41_932_800
    assert paper.sustained_pflops == pytest.approx(308.6, rel=0.01)
    assert paper.speedup_over_gordon_bell() > 5.0
    assert GORDON_BELL_2021_PFLOPS == pytest.approx(60.4)
    # our workload's projection must be internally consistent
    assert ours.projected_seconds == pytest.approx(
        ours.measured_seconds * MEASURED_NODES / PROJECTED_NODES
    )
