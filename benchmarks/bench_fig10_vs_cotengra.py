"""FIG10 / OVHD — Slicing-set size and overhead versus the cotengra-style baseline.

Paper artifact: Fig. 10, "Slicing size and overhead compared with cotengra".
The paper draws 400 contraction paths with cotengra, slices each with both
its lifetime pipeline (Alg. 1 + Alg. 2) and cotengra's greedy slicer, and
reports (a) how many *extra* edges the baseline slices relative to the
lifetime method (red points, ≥ 0 in most cases) and (b) the overhead ratio
(green points, ≥ 100 % in most cases); the text claims the lifetime method
wins on more than 98 % of paths and reaches a best overhead below 1.05.

Here the same protocol runs over ``REPRO_BENCH_PATHS`` (default 40)
independently randomised contraction paths of the benchmark workload.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.analysis import format_table, summarize_distribution
from repro.core import (
    GreedySliceBaseline,
    LifetimeSliceFinder,
    SimulatedAnnealingSliceRefiner,
    SlicingCostModel,
    extract_stem,
)
from repro.paths import GreedyOptimizer, PartitionOptimizer, TreeAnnealer

NUM_PATHS = int(os.environ.get("REPRO_BENCH_PATHS", "40"))
TARGET_OFFSET = int(os.environ.get("REPRO_BENCH_FIG10_OFFSET", "7"))


def _compare_one_path(network, seed):
    """Slice one randomised contraction path with both strategies.

    Paths are generated the way the paper generates its 400: independent
    randomised runs of the strongest available path optimizer (recursive
    bisection here, cotengra there), each refined by simulated annealing.
    """
    if seed % 2 == 0:
        tree = PartitionOptimizer(seed=seed).tree(network)
    else:
        tree = GreedyOptimizer(temperature=0.3, seed=seed).tree(network)
    tree = TreeAnnealer(seed=seed, initial_temperature=0.1, cooling=0.8).refine(tree).tree
    target = max(tree.max_rank() - TARGET_OFFSET, 4)
    model = SlicingCostModel(tree)
    stem = extract_stem(tree)

    ours = LifetimeSliceFinder(target).find(tree, stem=stem, cost_model=model)
    refiner = SimulatedAnnealingSliceRefiner(
        seed=seed, moves_per_temperature=24, max_candidates=32, cooling=0.9
    )
    ours = refiner.refine(tree, ours.sliced, target, cost_model=model)
    baseline = GreedySliceBaseline(target).find(tree, cost_model=model)
    return {
        "path": float(seed),
        "target_rank": float(target),
        "ours_sliced": float(ours.num_sliced),
        "baseline_sliced": float(baseline.num_sliced),
        "extra_edges_by_baseline": float(baseline.num_sliced - ours.num_sliced),
        "ours_overhead": ours.overhead,
        "baseline_overhead": baseline.overhead,
        "overhead_ratio_pct": 100.0 * baseline.overhead / ours.overhead,
    }


def test_fig10_slicing_vs_cotengra_baseline(benchmark, sycamore_network, record_result):
    rows = []

    def sweep():
        rows.clear()
        for seed in range(NUM_PATHS):
            rows.append(_compare_one_path(sycamore_network, seed))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # a path counts as a win when our set is no larger and our overhead is no
    # higher than the baseline's to within 1 % (the paper plots exact ties as
    # "performing equally")
    wins = sum(
        1
        for row in rows
        if row["extra_edges_by_baseline"] >= 0 and row["overhead_ratio_pct"] >= 99.0
    )
    not_worse = sum(1 for row in rows if row["overhead_ratio_pct"] >= 99.0)
    best_overhead = min(row["ours_overhead"] for row in rows)

    summary_rows = rows + [
        {
            "path": -1.0,
            "target_rank": 0.0,
            "ours_sliced": float(np.mean([r["ours_sliced"] for r in rows])),
            "baseline_sliced": float(np.mean([r["baseline_sliced"] for r in rows])),
            "extra_edges_by_baseline": float(
                np.mean([r["extra_edges_by_baseline"] for r in rows])
            ),
            "ours_overhead": float(np.mean([r["ours_overhead"] for r in rows])),
            "baseline_overhead": float(np.mean([r["baseline_overhead"] for r in rows])),
            "overhead_ratio_pct": float(np.mean([r["overhead_ratio_pct"] for r in rows])),
        }
    ]
    text = format_table(
        summary_rows,
        columns=[
            "path",
            "target_rank",
            "ours_sliced",
            "baseline_sliced",
            "extra_edges_by_baseline",
            "ours_overhead",
            "baseline_overhead",
            "overhead_ratio_pct",
        ],
        title=(
            f"FIG10: lifetime pipeline vs greedy baseline over {len(rows)} paths "
            f"(last row = mean; win rate {100.0 * wins / len(rows):.1f}%, "
            f"overhead-not-worse rate {100.0 * not_worse / len(rows):.1f}%, "
            f"best overhead {best_overhead:.4g}; paper: >98% wins, best overhead <1.05)"
        ),
        precision=4,
    )
    record_result("fig10_vs_cotengra", text)

    # paper-shaped expectations, relaxed for the scaled-down sweep (40 paths,
    # weaker trees, short SA schedules — see EXPERIMENTS.md): the lifetime
    # pipeline must win in aggregate even if not on every single path.
    mean_extra = float(np.mean([r["extra_edges_by_baseline"] for r in rows]))
    mean_ratio = float(np.mean([r["overhead_ratio_pct"] for r in rows]))
    assert mean_extra >= 0.0, "on average the baseline must not slice fewer edges than us"
    assert mean_ratio >= 99.0, "on average our overhead must not exceed the baseline's"
    assert not_worse / len(rows) >= 0.4
