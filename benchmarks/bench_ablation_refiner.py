"""ABL-REFINER — Ablation of the slicing pipeline's stages.

Not a single figure of the paper, but the decomposition its §4 implies:
Algorithm 1 alone finds a small slicing set, Algorithm 2 lowers its overhead
at fixed size, and the greedy baseline is the reference point.  This
benchmark quantifies each stage's contribution on the benchmark workload so
the design choices called out in DESIGN.md have a measured justification.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import (
    GreedySliceBaseline,
    LifetimeSliceFinder,
    SimulatedAnnealingSliceRefiner,
)


def _ablation_rows(tree, stem, model, target_rank):
    finder_only = LifetimeSliceFinder(target_rank).find(tree, stem=stem, cost_model=model)
    refined = SimulatedAnnealingSliceRefiner(seed=0).refine(
        tree, finder_only.sliced, target_rank, cost_model=model
    )
    baseline = GreedySliceBaseline(target_rank).find(tree, cost_model=model)
    baseline_refined = SimulatedAnnealingSliceRefiner(seed=0).refine(
        tree, baseline.sliced, target_rank, cost_model=model
    )
    rows = []
    for label, result in (
        ("greedy baseline (cotengra-style)", baseline),
        ("greedy baseline + Alg.2 refiner", baseline_refined),
        ("Alg.1 lifetime finder only", finder_only),
        ("Alg.1 + Alg.2 (full pipeline)", refined),
    ):
        rows.append(
            {
                "strategy": label,
                "num_sliced": result.num_sliced,
                "num_subtasks": result.num_subtasks,
                "overhead": result.overhead,
                "log10_total_cost": result.log10_total_cost,
                "max_rank": result.max_rank,
                "meets_target": result.satisfies_target,
            }
        )
    return rows


def test_ablation_refiner(
    benchmark,
    sycamore_tree,
    sycamore_stem,
    sycamore_cost_model,
    bench_target_rank,
    record_result,
):
    rows = benchmark.pedantic(
        _ablation_rows,
        args=(sycamore_tree, sycamore_stem, sycamore_cost_model, bench_target_rank),
        rounds=1,
        iterations=1,
    )
    text = format_table(
        rows,
        title=(
            f"ABL-REFINER: slicing pipeline ablation at target rank {bench_target_rank} "
            "(the refiner is a general post-process: it improves both starting points)"
        ),
        precision=5,
    )
    record_result("ablation_refiner", text)

    by_label = {row["strategy"]: row for row in rows}
    full = by_label["Alg.1 + Alg.2 (full pipeline)"]
    finder = by_label["Alg.1 lifetime finder only"]
    baseline = by_label["greedy baseline (cotengra-style)"]
    baseline_refined = by_label["greedy baseline + Alg.2 refiner"]

    assert all(row["meets_target"] for row in rows)
    # the refiner never regresses either starting point
    assert full["overhead"] <= finder["overhead"] * (1 + 1e-9)
    assert baseline_refined["overhead"] <= baseline["overhead"] * (1 + 1e-9)
    # and the full pipeline is competitive with the baseline
    assert full["num_sliced"] <= baseline["num_sliced"] + 1
