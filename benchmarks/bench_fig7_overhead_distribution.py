"""FIG7 — Overhead distribution over target sizes and storage levels.

Paper artifact: Fig. 7, "Overhead distribution for different storage level"
(Sycamore m = 20, original memory cost dozens of PBs; 96 GB main memory and
256 KB LDM per CPE).  The figure shows the slicing overhead as a function of
the target size, together with the line of equal overhead obtained by
translating data-movement cost through the arithmetic intensity of each
level; the takeaway is that slicing wins at the (slow) disk ↔ main-memory
boundary while stacking wins at the (fast) main-memory ↔ LDM boundary.

The benchmark sweeps the target rank, computes the slicing overhead and the
stacking-equivalent overhead at both boundaries, and reports which strategy
the §3.3 discriminant selects.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import SliceStackAnalyzer


def _distribution(analyzer, targets):
    return analyzer.overhead_distribution(targets)


def test_fig7_overhead_distribution(benchmark, sycamore_tree, record_result):
    analyzer = SliceStackAnalyzer(sycamore_tree, slicer="lifetime")
    max_rank = sycamore_tree.max_rank()
    targets = [t for t in range(max_rank - 2, max_rank - 19, -4) if t >= 6]

    rows = benchmark.pedantic(_distribution, args=(analyzer, targets), rounds=1, iterations=1)

    for row in rows:
        row["strategy_disk"] = (
            "slice" if row["prefer_slice_disk_to_main_memory"] else "stack"
        )
        row["strategy_ldm"] = (
            "slice" if row["prefer_slice_main_memory_to_ldm"] else "stack"
        )
    text = format_table(
        rows,
        columns=[
            "target_rank",
            "slicing_overhead",
            "stacking_overhead_disk_to_main_memory",
            "stacking_overhead_main_memory_to_ldm",
            "strategy_disk",
            "strategy_ldm",
        ],
        title="FIG7: slicing overhead vs stacking-equivalent overhead per storage boundary",
        precision=4,
    )
    record_result("fig7_overhead_distribution", text)

    # paper's qualitative claims:
    #   (1) overhead grows as the target size shrinks,
    overheads = [row["slicing_overhead"] for row in rows]
    assert overheads == sorted(overheads), "overhead must grow as the target shrinks"
    #   (2) the fast DMA boundary is always at least as stacking-friendly as slow IO
    for row in rows:
        assert (
            row["stacking_overhead_main_memory_to_ldm"]
            <= row["stacking_overhead_disk_to_main_memory"] + 1e-9
        )
