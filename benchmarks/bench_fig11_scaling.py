"""FIG11 — Strong and weak scaling of the sliced contraction.

Paper artifact: Fig. 11, "Strong scaling results (65536 subtasks in total)
and weak scaling results (16 subtasks on each node)".  Because slicing makes
the subtasks embarrassingly parallel (one all-reduce at the end), both
curves are nearly ideal on the real machine.

Two legs regenerate the figure:

* **Projected** (``test_fig11_strong_scaling`` / ``test_fig11_weak_scaling``)
  — the per-subtask execution time fed to the process-level scheduler comes
  from the thread-level simulator applied to the benchmark workload's fused
  plan, so the curves follow exactly the same pipeline as the paper's runs
  (plan → slice → fuse → distribute) at the paper's node counts.
* **Measured** (``test_fig11_measured_strong_scaling``) — the same sweep
  against a *real* :class:`~repro.execution.DistributedBackend`: N localhost
  worker processes per point, bit-identity verified against serial inside
  :func:`~repro.execution.measure_strong_scaling`, and every measured wall
  time paired with the calibrated cost model's prediction for that worker
  count.  The measured-vs-projected rows land in
  ``results/fig11_measured_scaling.txt`` and a trajectory point is appended
  to ``results/BENCH_distributed.json`` — which
  ``benchmarks/check_distributed_scaling.py`` gates in CI (2-worker speedup
  > 1.0, prediction within 25%).  No timing assertions run in-process, so
  the bench stays green on single-core boxes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import format_table
from repro.circuits import grid_circuit
from repro.core import LifetimeSliceFinder, SecondarySlicer
from repro.execution import (
    ProcessScheduler,
    ThreadLevelSimulator,
    measure_strong_scaling,
    strong_scaling,
    weak_scaling,
)
from repro.paths import HyperOptimizer
from repro.tensornet import amplitude_network, simplify_network

RESULTS_DIR = Path(__file__).parent / "results"

STRONG_SUBTASKS = 65536
WEAK_SUBTASKS_PER_NODE = 16
NODE_COUNTS = (64, 128, 256, 512, 1024, 2048, 4096)

#: Gated mode (CI's distributed leg): a workload whose per-subtask compute
#: dominates the socket round-trip, sized so real multi-worker speedup is
#: measurable — the checker's gates only make sense against this profile.
GATED = os.environ.get("REPRO_BENCH_GATED", "") not in ("", "0")
DIST_ROWS = int(os.environ.get("REPRO_BENCH_DIST_ROWS", "4"))
DIST_COLS = int(os.environ.get("REPRO_BENCH_DIST_COLS", "5" if GATED else "4"))
DIST_CYCLES = int(os.environ.get("REPRO_BENCH_DIST_CYCLES", "10" if GATED else "8"))
DIST_RANK_DROP = int(os.environ.get("REPRO_BENCH_DIST_RANK_DROP", "6" if GATED else "5"))
DIST_SEED = int(os.environ.get("REPRO_BENCH_DIST_SEED", "3"))
DIST_REPEATS = int(os.environ.get("REPRO_BENCH_DIST_REPEATS", "3" if GATED else "1"))
DIST_WORKER_COUNTS = tuple(
    int(entry)
    for entry in os.environ.get(
        "REPRO_BENCH_DIST_WORKERS", "1,2,4" if GATED else "1,2"
    ).split(",")
)


@pytest.fixture(scope="module")
def scheduler(sycamore_stem, sycamore_slicing, sycamore_tree):
    plan = SecondarySlicer(ldm_rank=13).plan(sycamore_stem, process_sliced=sycamore_slicing.sliced)
    timing = ThreadLevelSimulator().simulate_fused(plan, sycamore_slicing.sliced)
    stem_fraction = max(sycamore_stem.cost_fraction(), 1e-9)
    subtask_seconds = timing.total_seconds / stem_fraction
    subtask_flops = 8.0 * sycamore_tree.total_cost(sycamore_slicing.sliced) / max(
        sycamore_slicing.num_subtasks, 1.0
    )
    return ProcessScheduler(subtask_seconds=subtask_seconds, subtask_flops=subtask_flops)


def _point_row(point):
    return {
        "nodes": point.num_nodes,
        "subtasks": point.num_subtasks,
        "elapsed_s": point.elapsed_seconds,
        "compute_s": point.compute_seconds,
        "reduce_s": point.reduce_seconds,
        "speedup": point.speedup,
        "efficiency": point.efficiency,
        "sustained_Tflops": point.sustained_flops / 1e12,
    }


def test_fig11_strong_scaling(benchmark, scheduler, record_result):
    points = benchmark(
        strong_scaling, scheduler, num_subtasks=STRONG_SUBTASKS, node_counts=NODE_COUNTS
    )
    rows = [_point_row(p) for p in points]
    text = format_table(
        rows,
        title=f"FIG11a: strong scaling, {STRONG_SUBTASKS} subtasks (paper: near-ideal)",
        precision=4,
    )
    record_result("fig11_strong_scaling", text)

    times = [p.elapsed_seconds for p in points]
    assert times == sorted(times, reverse=True), "strong scaling must reduce time"
    assert points[-1].efficiency > 0.7, "strong scaling should stay near-ideal"


def test_fig11_weak_scaling(benchmark, scheduler, record_result):
    points = benchmark(
        weak_scaling,
        scheduler,
        subtasks_per_node=WEAK_SUBTASKS_PER_NODE,
        node_counts=NODE_COUNTS,
    )
    rows = [_point_row(p) for p in points]
    text = format_table(
        rows,
        title=(
            f"FIG11b: weak scaling, {WEAK_SUBTASKS_PER_NODE} subtasks per node "
            "(paper: flat time, near-ideal efficiency)"
        ),
        precision=4,
    )
    record_result("fig11_weak_scaling", text)

    assert all(p.efficiency > 0.7 for p in points), "weak scaling should stay near-ideal"


# ----------------------------------------------------------------------
# measured strong scaling against the real distributed backend
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def measured_workload():
    """Concrete network + tree + sliced set for the real distributed sweep."""
    circuit = grid_circuit(DIST_ROWS, DIST_COLS, cycles=DIST_CYCLES, seed=DIST_SEED)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=1).search(network)
    target = max(tree.max_rank() - DIST_RANK_DROP, 4)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = tuple(ix for ix in slicing.sliced if ix in inner)
    return network, tree, sliced


def _measured_row(point):
    return {
        "workers": point.num_workers,
        "subtasks": point.num_subtasks,
        "measured_s": point.elapsed_seconds,
        "projected_s": point.predicted_seconds,
        "compute_s": point.compute_seconds,
        "comms_s": point.comms_seconds,
        "speedup": point.speedup,
        "efficiency": point.efficiency,
        "rel_err": point.relative_error,
    }


def test_fig11_measured_strong_scaling(measured_workload, record_result):
    network, tree, sliced = measured_workload
    points = measure_strong_scaling(
        network,
        tree,
        sliced,
        worker_counts=DIST_WORKER_COUNTS,
        repeats=DIST_REPEATS,
    )
    rows = [_measured_row(p) for p in points]
    text = format_table(
        rows,
        title=(
            f"FIG11a (measured): strong scaling over {len(DIST_WORKER_COUNTS)} "
            f"localhost worker counts, {points[0].num_subtasks} subtasks "
            "(measured vs calibrated projection; bit-identity to serial "
            "verified per point)"
        ),
        precision=4,
    )
    record_result("fig11_measured_scaling", text)

    # trajectory: one appended entry per run, so worker-count × wall-seconds
    # curves stay comparable across commits; the CI checker gates the
    # latest entry (speedup + prediction error) on multi-core runners
    trajectory_path = RESULTS_DIR / "BENCH_distributed.json"
    history = (
        json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    )
    history.append(
        {
            "timestamp": time.time(),
            "gated": GATED,
            "cpu_count": os.cpu_count(),
            "workload": {
                "rows": DIST_ROWS,
                "cols": DIST_COLS,
                "cycles": DIST_CYCLES,
                "rank_drop": DIST_RANK_DROP,
                "seed": DIST_SEED,
                "repeats": DIST_REPEATS,
            },
            "points": rows,
        }
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    trajectory_path.write_text(json.dumps(history, indent=2) + "\n")

    # structural gates only — the sweep already verified bit-identity per
    # point, and timing gates (speedup > 1.0, <= 25% prediction error)
    # belong to check_distributed_scaling.py where the core count is known
    assert [p.num_workers for p in points] == list(DIST_WORKER_COUNTS)
    assert all(p.elapsed_seconds > 0.0 for p in points)
    assert all(p.predicted_seconds > 0.0 for p in points)
