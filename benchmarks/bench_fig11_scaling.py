"""FIG11 — Strong and weak scaling of the sliced contraction.

Paper artifact: Fig. 11, "Strong scaling results (65536 subtasks in total)
and weak scaling results (16 subtasks on each node)".  Because slicing makes
the subtasks embarrassingly parallel (one all-reduce at the end), both
curves are nearly ideal on the real machine.

The per-subtask execution time fed to the process-level scheduler comes from
the thread-level simulator applied to the benchmark workload's fused plan,
so the scaling curves regenerated here follow exactly the same pipeline as
the paper's runs (plan → slice → fuse → distribute).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import SecondarySlicer
from repro.execution import (
    ProcessScheduler,
    ThreadLevelSimulator,
    strong_scaling,
    weak_scaling,
)

STRONG_SUBTASKS = 65536
WEAK_SUBTASKS_PER_NODE = 16
NODE_COUNTS = (64, 128, 256, 512, 1024, 2048, 4096)


@pytest.fixture(scope="module")
def scheduler(sycamore_stem, sycamore_slicing, sycamore_tree):
    plan = SecondarySlicer(ldm_rank=13).plan(sycamore_stem, process_sliced=sycamore_slicing.sliced)
    timing = ThreadLevelSimulator().simulate_fused(plan, sycamore_slicing.sliced)
    stem_fraction = max(sycamore_stem.cost_fraction(), 1e-9)
    subtask_seconds = timing.total_seconds / stem_fraction
    subtask_flops = 8.0 * sycamore_tree.total_cost(sycamore_slicing.sliced) / max(
        sycamore_slicing.num_subtasks, 1.0
    )
    return ProcessScheduler(subtask_seconds=subtask_seconds, subtask_flops=subtask_flops)


def _point_row(point):
    return {
        "nodes": point.num_nodes,
        "subtasks": point.num_subtasks,
        "elapsed_s": point.elapsed_seconds,
        "compute_s": point.compute_seconds,
        "reduce_s": point.reduce_seconds,
        "speedup": point.speedup,
        "efficiency": point.efficiency,
        "sustained_Tflops": point.sustained_flops / 1e12,
    }


def test_fig11_strong_scaling(benchmark, scheduler, record_result):
    points = benchmark(
        strong_scaling, scheduler, num_subtasks=STRONG_SUBTASKS, node_counts=NODE_COUNTS
    )
    rows = [_point_row(p) for p in points]
    text = format_table(
        rows,
        title=f"FIG11a: strong scaling, {STRONG_SUBTASKS} subtasks (paper: near-ideal)",
        precision=4,
    )
    record_result("fig11_strong_scaling", text)

    times = [p.elapsed_seconds for p in points]
    assert times == sorted(times, reverse=True), "strong scaling must reduce time"
    assert points[-1].efficiency > 0.7, "strong scaling should stay near-ideal"


def test_fig11_weak_scaling(benchmark, scheduler, record_result):
    points = benchmark(
        weak_scaling,
        scheduler,
        subtasks_per_node=WEAK_SUBTASKS_PER_NODE,
        node_counts=NODE_COUNTS,
    )
    rows = [_point_row(p) for p in points]
    text = format_table(
        rows,
        title=(
            f"FIG11b: weak scaling, {WEAK_SUBTASKS_PER_NODE} subtasks per node "
            "(paper: flat time, near-ideal efficiency)"
        ),
        precision=4,
    )
    record_result("fig11_weak_scaling", text)

    assert all(p.efficiency > 0.7 for p in points), "weak scaling should stay near-ideal"
