"""FIG6 — Per-step time complexity and slicing multiple along the stem.

Paper artifact: Fig. 6, "Time complexity and multiple by slicing on stem
(Sycamore m = 20)".  The figure plots, for every contraction step of the
stem, the step's time complexity and the redundancy multiple caused by the
chosen slicing set; the paper's point is that the computation-intensive
middle of the stem keeps its complexity (multiple ≈ 1) while only the cheap
ends are recomputed.

This benchmark regenerates both series for our workload and times the
underlying analysis (stem extraction + lifetime/overhead profile).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_series
from repro.core import extract_stem, stem_profile


def _profile_rows(stem, sliced):
    return stem_profile(stem, frozenset(sliced))


def test_fig6_stem_complexity_profile(
    benchmark, sycamore_tree, sycamore_stem, sycamore_slicing, record_result
):
    rows = benchmark(_profile_rows, sycamore_stem, sycamore_slicing.sliced)

    positions = [row["position"] for row in rows]
    series = {
        "log2_step_cost": [row["log2_cost"] for row in rows],
        "log2_cost_after_slicing": [row["log2_cost_sliced"] for row in rows],
        "log2_redundancy_multiple": [row["log2_multiple"] for row in rows],
        "stem_tensor_rank": [row["rank"] for row in rows],
    }
    text = format_series(
        positions,
        series,
        x_label="stem_step",
        title=(
            "FIG6: stem complexity profile "
            f"(|S| = {sycamore_slicing.num_sliced}, overhead = {sycamore_slicing.overhead:.3g})"
        ),
        precision=3,
    )
    record_result("fig6_stem_profile", text)

    # sanity: the most expensive stem steps must keep a low redundancy multiple
    peak_cost = max(row["log2_cost"] for row in rows)
    peak_rows = [row for row in rows if row["log2_cost"] >= peak_cost - 1.0]
    cheapest_multiple = min(row["log2_multiple"] for row in peak_rows)
    overall_max_multiple = max(row["log2_multiple"] for row in rows)
    assert cheapest_multiple <= overall_max_multiple


def test_fig6_stem_extraction_speed(benchmark, sycamore_tree):
    stem = benchmark(extract_stem, sycamore_tree)
    assert stem.length > 0
    assert stem.cost_fraction() > 0.5
