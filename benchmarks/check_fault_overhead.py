"""CI gate: the resilience layer must cost (almost) nothing when idle.

Run after the quick exec-plan bench::

    PYTHONPATH=src python benchmarks/check_fault_overhead.py \
        benchmarks/results/BENCH_exec_plan.json

Validates the ``fault_overhead`` section the bench emitted: the
zero-fault hot path with an *armed* retrying :class:`FaultPolicy`
(generous timeout, nothing injected) must stay within
``REPRO_FAULT_OVERHEAD_MAX`` (default 2%) of the policy-free fail-fast
path, and the armed run must have recorded zero retries and zero faults
(an armed-but-idle policy that silently recovers something is a bug, not
overhead).  Exits non-zero on any violation.  Checks raise explicitly
(no ``assert``), so the gate also holds under ``python -O``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path


class OverheadError(RuntimeError):
    """The idle resilience layer costs more than the budget allows."""


#: Maximum tolerated zero-fault overhead fraction (0.02 = 2%).
MAX_OVERHEAD = float(os.environ.get("REPRO_FAULT_OVERHEAD_MAX", "0.02"))


def main(path: str) -> int:
    point = json.loads(Path(path).read_text())
    section = point.get("fault_overhead")
    if not section:
        raise OverheadError(
            "bench JSON has no 'fault_overhead' section; the overhead "
            "measurement did not run"
        )
    baseline = float(section["baseline_seconds"])
    armed = float(section["armed_seconds"])
    overhead = float(section["overhead_fraction"])
    print(
        f"zero-fault hot path: baseline {baseline * 1000:.2f} ms, "
        f"armed {armed * 1000:.2f} ms -> {overhead * 100:+.2f}% "
        f"(budget: < {MAX_OVERHEAD * 100:.0f}%)"
    )

    if int(section.get("retries", -1)) != 0 or int(section.get("faults", -1)) != 0:
        raise OverheadError(
            "the armed zero-fault run recorded retries/faults; the "
            "measurement is not a hot-path comparison"
        )
    if overhead >= MAX_OVERHEAD:
        raise OverheadError(
            f"idle resilience layer costs {overhead * 100:.2f}% "
            f">= {MAX_OVERHEAD * 100:.0f}% of the fail-fast hot path"
        )
    print("fault overhead gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results/BENCH_exec_plan.json"))
