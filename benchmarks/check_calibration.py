"""CI gate: the bench JSON feeds the calibrated model end to end.

Run after the quick exec-plan bench::

    PYTHONPATH=src python benchmarks/check_calibration.py \
        benchmarks/results/BENCH_exec_plan.json

Loads the emitted ``calibration`` section through
``CalibratedCostModel.from_bench_json``, rebuilds a scheduler and the
§6.2 projection surface from the fitted per-backend subtask seconds, and
asserts the projection API round-trips (scheduler time == model
prediction, headline summary arithmetic self-consistent, scaling sweep
monotone).  Exits non-zero on any violation, so a regression in the
measured-timing plumbing fails the CI job rather than silently emitting
an unusable calibration file.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

from repro.circuits import grid_circuit
from repro.core import LifetimeSliceFinder
from repro.costs import CalibratedCostModel
from repro.execution import HeadlineProjection, ProcessScheduler, strong_scaling
from repro.paths import HyperOptimizer
from repro.tensornet import amplitude_network, simplify_network


def main(path: str) -> int:
    model = CalibratedCostModel.from_bench_json(path)
    print(f"fitted backends: {sorted(model.backends)}")
    assert model.backends, "bench JSON carried no calibration backends"

    # a small planning-only workload to project with
    circuit = grid_circuit(4, 4, cycles=8, seed=3)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=False)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=4, seed=1).search(network)
    sliced = LifetimeSliceFinder(max(tree.max_rank() - 4, 4)).find(tree).sliced

    for backend in model.backends:
        predicted = model.subtask_seconds(tree, sliced, backend=backend)
        assert predicted > 0, backend
        scheduler = ProcessScheduler.from_cost_model(
            model, tree, sliced, backend=backend
        )
        assert math.isclose(scheduler.subtask_seconds, predicted, rel_tol=1e-12)

        points = strong_scaling(
            cost_model=model,
            tree=tree,
            sliced=sliced,
            backend=backend,
            num_subtasks=4096,
            node_counts=[16, 32, 64],
        )
        elapsed = [p.elapsed_seconds for p in points]
        assert elapsed == sorted(elapsed, reverse=True), (backend, elapsed)

        projection = HeadlineProjection.from_cost_model(
            model, tree, sliced, measured_nodes=64, projected_nodes=1024,
            backend=backend,
        )
        summary = projection.summary()
        assert math.isclose(
            summary["projected_seconds"],
            summary["measured_seconds"] * 64 / 1024,
            rel_tol=1e-12,
        )
        assert summary["sustained_pflops"] > 0
        print(
            f"  {backend}: subtask={predicted:.3e}s "
            f"projected={summary['projected_seconds']:.3e}s "
            f"sustained={summary['sustained_pflops']:.3e} Pflop/s"
        )

    print("calibration round-trip OK")
    return 0


if __name__ == "__main__":
    default = Path(__file__).parent / "results" / "BENCH_exec_plan.json"
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else str(default)))
