"""Shared fixtures for the benchmark harness.

The benchmark workload is a Sycamore-style RQC on the 53-qubit Sycamore
coupling map.  The paper evaluates on the m = 20 instance planned with
cotengra + KaHyPar trees (log10 flops ≈ 18.8); our pure-Python path
optimizer reaches that complexity class for m ≈ 12, so the default
benchmark workload is ``m = 12`` — the resulting contraction trees have the
same structure (a dominant stem of tens of steps, peak rank ≈ 45, slicing
targets around rank 30).  Set ``REPRO_BENCH_CYCLES=20`` to plan the full
m = 20 instance (slower and with a weaker tree, but it runs).

Every benchmark writes the table/series it regenerates to
``benchmarks/results/<name>.txt`` (and prints it, visible with ``pytest -s``).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.circuits import sycamore_circuit
from repro.core import (
    LifetimeSliceFinder,
    SimulatedAnnealingSliceRefiner,
    SlicingCostModel,
    extract_stem,
)
from repro.paths import PartitionOptimizer, TreeAnnealer
from repro.tensornet import amplitude_network, simplify_network

RESULTS_DIR = Path(__file__).parent / "results"

#: Default workload parameters (overridable through the environment).
BENCH_CYCLES = int(os.environ.get("REPRO_BENCH_CYCLES", "12"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
#: "auto" (default) slices 7 ranks below the tree's peak — the same relative
#: reduction the paper applies when squeezing its cotengra trees into one
#: node's main memory; set an integer to force an absolute target.
BENCH_TARGET_RANK = os.environ.get("REPRO_BENCH_TARGET_RANK", "auto")
BENCH_NUM_PATHS = int(os.environ.get("REPRO_BENCH_PATHS", "40"))


@pytest.fixture(scope="session")
def record_result():
    """Write a benchmark's regenerated table to results/<name>.txt and stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture(scope="session")
def sycamore_network():
    """Simplified abstract tensor network of one Sycamore-style amplitude."""
    circuit = sycamore_circuit(cycles=BENCH_CYCLES, seed=BENCH_SEED)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=False)
    simplify_network(network)
    return network


@pytest.fixture(scope="session")
def sycamore_tree(sycamore_network):
    """A good contraction tree: recursive bisection + simulated-annealing refinement."""
    tree = PartitionOptimizer(seed=BENCH_SEED).tree(sycamore_network)
    annealer = TreeAnnealer(seed=BENCH_SEED + 1, initial_temperature=0.1, cooling=0.9)
    return annealer.refine(tree).tree


@pytest.fixture(scope="session")
def sycamore_stem(sycamore_tree):
    return extract_stem(sycamore_tree)


@pytest.fixture(scope="session")
def sycamore_cost_model(sycamore_tree):
    return SlicingCostModel(sycamore_tree)


@pytest.fixture(scope="session")
def bench_target_rank(sycamore_tree):
    """The process-level slicing target used by the benchmarks."""
    if BENCH_TARGET_RANK == "auto":
        return max(sycamore_tree.max_rank() - 7, 10)
    return min(int(BENCH_TARGET_RANK), sycamore_tree.max_rank() - 1)


@pytest.fixture(scope="session")
def sycamore_slicing(sycamore_tree, sycamore_stem, sycamore_cost_model, bench_target_rank):
    """The paper pipeline's slicing decision (Alg. 1 + Alg. 2) on the workload."""
    finder = LifetimeSliceFinder(bench_target_rank)
    initial = finder.find(sycamore_tree, stem=sycamore_stem, cost_model=sycamore_cost_model)
    refiner = SimulatedAnnealingSliceRefiner(seed=BENCH_SEED)
    return refiner.refine(
        sycamore_tree, initial.sliced, bench_target_rank, cost_model=sycamore_cost_model
    )
