"""ABL-FUSION — Ablation of the fused design's ingredients.

§5.3 of the paper adds two optimizations on top of the basic fused design:
the recursion-formula permutation maps (§5.3.1) and the cooperative
DMA + RMA access scheme (§5.3.2, which the paper says is essential because
naive strided DMA reaches "less than 0.1 % of the peak performance" and
"makes negative optimization").  This benchmark switches each ingredient
off to measure its contribution, and also sweeps the fusion cap ``n`` to
show how DMA traffic falls as the fused window grows.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import SecondarySlicer
from repro.execution import ThreadLevelSimulator


def _variant_rows(stem, sliced):
    plan = SecondarySlicer(ldm_rank=13).plan(stem, process_sliced=sliced)
    variants = {
        "step-by-step": (ThreadLevelSimulator(), None),
        "fused (full design)": (ThreadLevelSimulator(), plan),
        "fused, naive strided DMA": (ThreadLevelSimulator(cooperative_dma=False), plan),
        "fused, in-situ permutation maps": (
            ThreadLevelSimulator(reduced_permutation_maps=False),
            plan,
        ),
    }
    rows = []
    for label, (simulator, maybe_plan) in variants.items():
        if maybe_plan is None:
            timing = simulator.simulate_step_by_step(stem, sliced)
        else:
            timing = simulator.simulate_fused(maybe_plan, sliced)
        rows.append(
            {
                "variant": label,
                "memory_access_s": timing.memory_access_seconds,
                "rma_s": timing.rma_seconds,
                "permutation_s": timing.permutation_seconds,
                "gemm_s": timing.gemm_seconds,
                "total_s": timing.total_seconds,
            }
        )
    return rows


def _fusion_sweep_rows(stem, sliced, caps):
    rows = []
    for cap in caps:
        plan = SecondarySlicer(ldm_rank=13, max_fused_steps=cap).plan(
            stem, process_sliced=sliced
        )
        rows.append(
            {
                "max_fused_steps": cap if cap is not None else 0,
                "avg_fused_steps": plan.average_fused_steps,
                "groups": plan.num_groups,
                "dma_transfers": plan.dma_transfers_fused(),
                "dma_gbytes": plan.bytes_moved_fused() / 1e9,
                "arithmetic_intensity": plan.arithmetic_intensity_fused(),
            }
        )
    return rows


def test_ablation_fused_ingredients(benchmark, sycamore_stem, sycamore_slicing, record_result):
    rows = benchmark.pedantic(
        _variant_rows, args=(sycamore_stem, sycamore_slicing.sliced), rounds=1, iterations=1
    )
    text = format_table(
        rows,
        title=(
            "ABL-FUSION(a): per-subtask time of fused-design variants "
            "(paper: naive strided DMA is a negative optimization)"
        ),
        precision=4,
    )
    record_result("ablation_fusion_ingredients", text)

    by_label = {row["variant"]: row for row in rows}
    full = by_label["fused (full design)"]
    naive_dma = by_label["fused, naive strided DMA"]
    in_situ = by_label["fused, in-situ permutation maps"]
    step = by_label["step-by-step"]
    assert full["total_s"] <= step["total_s"] * 1.05
    assert naive_dma["memory_access_s"] > full["memory_access_s"] * 5
    assert naive_dma["total_s"] > step["total_s"], "naive DMA must be a negative optimization"
    assert in_situ["permutation_s"] > full["permutation_s"] * 5


def test_ablation_fusion_length_sweep(benchmark, sycamore_stem, sycamore_slicing, record_result):
    caps = (1, 2, 4, 8, None)
    rows = benchmark.pedantic(
        _fusion_sweep_rows, args=(sycamore_stem, sycamore_slicing.sliced, caps), rounds=1, iterations=1
    )
    text = format_table(
        rows,
        title="ABL-FUSION(b): DMA traffic and arithmetic intensity vs fused-window cap n",
        precision=4,
    )
    record_result("ablation_fusion_sweep", text)

    transfers = [row["dma_transfers"] for row in rows]
    assert transfers == sorted(transfers, reverse=True), "longer fusion → fewer DMA transfers"
    intensities = [row["arithmetic_intensity"] for row in rows]
    assert intensities[-1] >= intensities[0]
