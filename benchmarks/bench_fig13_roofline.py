"""FIG13 — Roofline model of the thread-level kernels.

Paper artifact: Fig. 13, "Roofline Model of our work".  The unfused kernels
sit at an arithmetic intensity of 1.22 (single precision) to 2.6 (mixed
precision); secondary slicing improves the intensity by 10×–40×, and in some
cases pushes kernels past the 42.3 flop/byte ridge point into the
compute-bound region.

This benchmark places the step-by-step and fused schedules of the workload
on the core-group roofline and sweeps the LDM budget (the fusion parameter
``n`` follows from it) to show how the intensity gain grows with fusion.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import SecondarySlicer
from repro.execution import ThreadLevelSimulator
from repro.hardware import RooflineModel


def _roofline_rows(stem, sliced, ldm_ranks):
    simulator = ThreadLevelSimulator()
    roofline = RooflineModel()
    step = simulator.simulate_step_by_step(stem, sliced)
    rows = [
        {
            "kernel": "step-by-step",
            "ldm_rank": 13,
            "arithmetic_intensity": step.arithmetic_intensity,
            "achieved_Gflops": step.achieved_flops / 1e9,
            "attainable_Gflops": roofline.attainable_flops(step.arithmetic_intensity) / 1e9,
            "compute_bound": roofline.is_compute_bound(step.arithmetic_intensity),
            "intensity_gain": 1.0,
        }
    ]
    for ldm_rank in ldm_ranks:
        plan = SecondarySlicer(ldm_rank=ldm_rank).plan(stem, process_sliced=sliced)
        fused = simulator.simulate_fused(plan, sliced)
        rows.append(
            {
                "kernel": f"fused (ldm_rank={ldm_rank}, avg n={plan.average_fused_steps:.2f})",
                "ldm_rank": ldm_rank,
                "arithmetic_intensity": fused.arithmetic_intensity,
                "achieved_Gflops": fused.achieved_flops / 1e9,
                "attainable_Gflops": roofline.attainable_flops(fused.arithmetic_intensity) / 1e9,
                "compute_bound": roofline.is_compute_bound(fused.arithmetic_intensity),
                "intensity_gain": fused.arithmetic_intensity / step.arithmetic_intensity,
            }
        )
    return rows


def test_fig13_roofline(benchmark, sycamore_stem, sycamore_slicing, record_result):
    ldm_ranks = (11, 13, 16, 20)
    rows = benchmark.pedantic(
        _roofline_rows,
        args=(sycamore_stem, sycamore_slicing.sliced, ldm_ranks),
        rounds=1,
        iterations=1,
    )
    ridge = RooflineModel().ridge_point
    text = format_table(
        rows,
        title=(
            f"FIG13: roofline placement of thread-level kernels (ridge point {ridge:.1f} "
            "flop/byte; paper: unfused AI 1.2-2.6, fused gains 10x-40x)"
        ),
        precision=4,
    )
    record_result("fig13_roofline", text)

    step_ai = rows[0]["arithmetic_intensity"]
    fused_ais = [row["arithmetic_intensity"] for row in rows[1:]]
    # fusion must improve the intensity at every LDM budget, and markedly so
    # for the largest budget (the precise per-budget ordering depends on how
    # the grouping falls, so only the end points are asserted)
    assert all(ai >= step_ai for ai in fused_ais)
    assert max(fused_ais) >= 1.5 * step_ai
