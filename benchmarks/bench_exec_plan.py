"""EXEC_PLAN — compiled contraction plans and execution backends.

Measures the wall-clock effect of the plan compiler and of the backend
choice on a numerically contractable Sycamore-style grid RQC (the 53-qubit
benchmark workload of ``conftest.py`` is planning-only; this one is sized
so every variant runs in seconds).  Six executors contract the *same*
sliced workload:

* ``reference`` — the seed path: einsum walker, re-planned per subtask;
* ``compiled``  — compiled tensordot plan, no intermediate reuse;
* ``cached``    — compiled plan + slice-invariant intermediate caching
                  (serial backend: the baseline scheduling substrate);
* ``batched``   — cached plan sweeping one sliced index as a batch axis;
* ``threads``   — cached plan over a thread-pool backend;
* ``pooled``    — cached plan over the shared-memory process-pool backend
                  (the serial-vs-process-pool comparison row: expected to
                  win for many-small-subtask workloads, where per-subtask
                  interpreter overhead dominates GEMM time).

Asserts the acceptance criteria of the plan-compiler PR: the cached
compiled executor is at least 5x faster than the reference path on a
workload with >= 16 subtasks (2x under ``REPRO_BENCH_QUICK``), every
slice-invariant contraction runs exactly once (checked through the
instrumented step counters — including on the process-pool path, whose
cache is warmed in the parent), and all backends produce bit-identical
values.  Emits a ``BENCH_exec_plan.json`` trajectory point next to the
text table in ``benchmarks/results/``.

A second test times session reuse on the process-pool backend: the same
``run_subtasks`` workload cold (session spawn: pool start-up + segment
publication) and warm (pool and segments resident), asserting the warm
call is strictly faster and that the pool/segments were built exactly
once.  The cold/warm rows are appended to the table file and merged into
the JSON point.

The serial/threads/process-pool runs double as the calibration source:
their per-subtask and per-stage wall times (recorded by ``PlanStats``
during the timed runs) are emitted under the JSON point's
``"calibration"`` key and round-tripped through
``CalibratedCostModel.from_bench_json`` before the file is written, so
every CI run produces (and validates) a real input for the calibrated
cost model.

``test_tape_engine_matrix`` compares the three compiled engines —
stepwise, fused with the Python tape walker, fused with the numba-JIT
native tape kernel — on one workload, pins their bit-identity, audits
the batched plan's fusion coverage structurally (fraction of
slot-carrying GEMM steps inside fused runs, batched-GEMM ops present)
and, where numba is installed, gates the native kernel's steady-state
speedups.  Results land in ``BENCH_exec_plan.json["fused_engines"]``
plus an appended trajectory point in ``BENCH_fused_tape.json``.

Set ``REPRO_BENCH_QUICK=1`` (the CI default) for a smaller workload and a
single repeat; set ``REPRO_BENCH_GATED=1`` (the CI numba leg) to size the
tape-engine matrix up to the gated workload.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import format_table
from repro.circuits import grid_circuit
from repro.core import LifetimeSliceFinder
from repro.costs import CalibratedCostModel, calibration_payload
from repro.execution import (
    SharedMemoryProcessPoolBackend,
    SlicedExecutor,
    ThreadPoolBackend,
)
from repro.paths import HyperOptimizer
from repro.tensornet import amplitude_network, simplify_network

RESULTS_DIR = Path(__file__).parent / "results"

#: Quick mode (CI): smaller grid, one repeat, relaxed speedup threshold.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

EXEC_ROWS = int(os.environ.get("REPRO_BENCH_EXEC_ROWS", "4" if QUICK else "5"))
EXEC_COLS = int(os.environ.get("REPRO_BENCH_EXEC_COLS", "4" if QUICK else "5"))
EXEC_CYCLES = int(os.environ.get("REPRO_BENCH_EXEC_CYCLES", "8" if QUICK else "10"))
EXEC_SEED = int(os.environ.get("REPRO_BENCH_EXEC_SEED", "3"))
#: How many ranks below the tree's peak the slicing target sits.
EXEC_RANK_DROP = int(os.environ.get("REPRO_BENCH_EXEC_RANK_DROP", "5" if QUICK else "6"))
EXEC_REPEATS = int(os.environ.get("REPRO_BENCH_EXEC_REPEATS", "1" if QUICK else "3"))
EXEC_WORKERS = int(os.environ.get("REPRO_BENCH_EXEC_WORKERS", str(min(4, os.cpu_count() or 1))))
EXEC_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_EXEC_MIN_SPEEDUP", "2.0" if QUICK else "5.0"))
#: Interleaved best-of-N repeats of the steady-state fused-vs-stepwise pair.
FUSED_REPEATS = int(os.environ.get("REPRO_BENCH_FUSED_REPEATS", "9"))
#: The fused regression guard: steady-state fused must beat stepwise by this.
FUSED_MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_FUSED_MIN_SPEEDUP", "1.0"))

#: Gated mode: a larger-than-quick workload for the tape-engine matrix,
#: sized so the native-vs-python kernel gap is measurable above dispatch
#: noise.  Off by default (the quick workload still runs the matrix and
#: its structural gates); CI's numba leg sets ``REPRO_BENCH_GATED=1``.
GATED = os.environ.get("REPRO_BENCH_GATED", "") not in ("", "0")
TAPE_ROWS = int(os.environ.get("REPRO_BENCH_TAPE_ROWS", "4"))
TAPE_COLS = int(os.environ.get("REPRO_BENCH_TAPE_COLS", "5" if GATED else str(EXEC_COLS)))
TAPE_CYCLES = int(os.environ.get("REPRO_BENCH_TAPE_CYCLES", "10" if GATED else str(EXEC_CYCLES)))
TAPE_RANK_DROP = int(
    os.environ.get("REPRO_BENCH_TAPE_RANK_DROP", "6" if GATED else str(EXEC_RANK_DROP))
)
#: Interleaved best-of-N repeats of the three-engine steady-state sweep.
TAPE_REPEATS = int(os.environ.get("REPRO_BENCH_TAPE_REPEATS", "7"))
#: Native-engine speed gates (enforced only where numba is installed).
NATIVE_MIN_VS_PYTHON = float(os.environ.get("REPRO_BENCH_NATIVE_MIN_VS_PYTHON", "1.3"))
NATIVE_MIN_VS_STEPWISE = float(os.environ.get("REPRO_BENCH_NATIVE_MIN_VS_STEPWISE", "1.5"))
#: Structural gate: fraction of slot-carrying GEMM steps the fusion pass
#: must place inside fused runs on the batched plan.
BATCHED_FUSED_MIN_FRACTION = float(
    os.environ.get("REPRO_BENCH_BATCHED_FUSED_MIN_FRACTION", "0.8")
)


@pytest.fixture(scope="module")
def exec_workload():
    """Concrete network + tree + slicing set for the executor comparison."""
    circuit = grid_circuit(EXEC_ROWS, EXEC_COLS, cycles=EXEC_CYCLES, seed=EXEC_SEED)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=1).search(network)
    target = max(tree.max_rank() - EXEC_RANK_DROP, 4)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = tuple(ix for ix in slicing.sliced if ix in inner)
    return network, tree, sliced


def _time_run(make_executor, repeats):
    """Best-of-N wall time of a full sliced run, executor build included.

    Building the executor inside the timed region charges the compiled
    variants for plan compilation (and the pooled variants for pool
    start-up) — the amortization across subtasks is exactly the effect
    under test.
    """
    best_seconds = float("inf")
    executor = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        executor = make_executor()
        value = executor.amplitude()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return best_seconds, value, executor


def test_exec_plan_speedup(exec_workload, record_result):
    network, tree, sliced = exec_workload

    variants = {
        "reference": lambda: SlicedExecutor(network, tree, sliced, mode="reference"),
        "compiled": lambda: SlicedExecutor(network, tree, sliced, cache_invariant=False),
        "cached": lambda: SlicedExecutor(network, tree, sliced),
        "fused": lambda: SlicedExecutor(network, tree, sliced, fused=True),
        "batched": lambda: SlicedExecutor(network, tree, sliced, batch_index="auto"),
        "threads": lambda: SlicedExecutor(
            network, tree, sliced, backend=ThreadPoolBackend(max_workers=EXEC_WORKERS)
        ),
        "pooled": lambda: SlicedExecutor(
            network,
            tree,
            sliced,
            backend=SharedMemoryProcessPoolBackend(max_workers=EXEC_WORKERS),
        ),
    }

    seconds = {}
    values = {}
    executors = {}
    for name, make in variants.items():
        repeats = 1 if name == "reference" else EXEC_REPEATS
        seconds[name], values[name], executors[name] = _time_run(make, repeats)

    reference_value = values["reference"]
    for name, value in values.items():
        assert value == pytest.approx(reference_value, abs=1e-8), name
    # every backend follows the ordered-accumulation contract
    assert values["threads"] == values["cached"]
    assert values["pooled"] == values["cached"]
    # fused execution is bit-identical to the step-by-step path
    assert values["fused"] == values["cached"]
    assert executors["fused"].stats.fused_steps > 0, "fusion must engage"

    num_subtasks = executors["reference"].num_subtasks
    assert num_subtasks >= 16, "workload must have at least 16 subtasks"

    # the cached path must contract each slice-invariant intermediate once
    # — on the serial backend and on the process pool (parent-warmed cache)
    for name in ("cached", "pooled"):
        counts = executors[name].stats.node_counts
        for node in executors[name].plan.invariant_nodes:
            assert counts.get(node, 0) == 1, (
                f"{name}: invariant node {node} contracted {counts.get(node, 0)} times"
            )
    cached = executors["cached"]
    invariant = cached.plan.invariant_nodes
    dependent_steps = sum(
        1 for node in cached.plan.dependent_nodes if node >= tree.num_leaves
    )
    assert cached.stats.slot_writes > 0, "stem slot reuse must be active"

    speedups = {name: seconds["reference"] / seconds[name] for name in variants}
    assert speedups["cached"] >= EXEC_MIN_SPEEDUP, (
        f"compiled+cached executor is only {speedups['cached']:.1f}x faster "
        f"than the reference path (need >= {EXEC_MIN_SPEEDUP}x)"
    )

    rows = [
        {
            "executor": name,
            "seconds": seconds[name],
            "speedup": speedups[name],
            "subtasks": num_subtasks,
        }
        for name in variants
    ]
    text = format_table(
        rows,
        title=(
            f"EXEC_PLAN: {EXEC_ROWS}x{EXEC_COLS} m={EXEC_CYCLES} grid RQC, "
            f"{len(sliced)} sliced indices, {num_subtasks} subtasks, "
            f"{EXEC_WORKERS} workers "
            "(paper: plan once, amortize across all slices)"
        ),
        precision=4,
    )
    record_result("exec_plan", text)

    point = {
        "bench": "exec_plan",
        "timestamp": time.time(),
        "quick": QUICK,
        "workload": {
            "rows": EXEC_ROWS,
            "cols": EXEC_COLS,
            "cycles": EXEC_CYCLES,
            "seed": EXEC_SEED,
            "num_leaves": tree.num_leaves,
            "max_rank": tree.max_rank(),
            "num_sliced": len(sliced),
            "num_subtasks": num_subtasks,
        },
        "seconds": seconds,
        "speedups": speedups,
        "backends": {
            "workers": EXEC_WORKERS,
            "serial_seconds": seconds["cached"],
            "thread_pool_seconds": seconds["threads"],
            "process_pool_seconds": seconds["pooled"],
            "process_pool_vs_serial": seconds["cached"] / seconds["pooled"],
            "bit_identical": True,
        },
        "invariant_steps": len(invariant),
        "dependent_steps": dependent_steps,
        "slot_writes": cached.stats.slot_writes,
        "invariant_contracted_exactly_once": True,
    }

    # steady-state fused-vs-stepwise: the amortized regime of the paper —
    # one compiled plan serves every subtask sweep, so compile cost is out
    # of the picture and the fused kernels' per-step savings are what is
    # measured.  Interleaved best-of-N so machine drift hits both sides
    # equally; this ratio is what the CI regression guard gates.
    stepwise_executor = executors["cached"]
    fused_executor = executors["fused"]

    def measure_steady(repeats):
        best = {"stepwise": float("inf"), "fused": float("inf")}
        for _ in range(repeats):
            for name, executor in (
                ("stepwise", stepwise_executor),
                ("fused", fused_executor),
            ):
                start = time.perf_counter()
                executor.run()
                best[name] = min(best[name], time.perf_counter() - start)
        return best

    steady = measure_steady(FUSED_REPEATS)
    if steady["stepwise"] / steady["fused"] <= FUSED_MIN_SPEEDUP:
        # a noise spike can dent one interleaved best-of-N pass; give the
        # guard one deeper re-measurement before declaring a regression
        steady = measure_steady(2 * FUSED_REPEATS)
    fused_vs_stepwise = steady["stepwise"] / steady["fused"]
    fused_plan = fused_executor.plan
    fused_runs = fused_plan.fused_runs_cached or fused_plan.fused_runs
    point["fused"] = {
        "build_included_seconds": seconds["fused"],
        "steady_state_stepwise_seconds": steady["stepwise"],
        "steady_state_fused_seconds": steady["fused"],
        "fused_vs_stepwise": fused_vs_stepwise,
        "min_speedup": FUSED_MIN_SPEEDUP,
        "runs": [
            {
                "steps": run.num_steps,
                "kept_rank": run.kept_rank,
                "gathers_skipped": run.gathers_skipped,
            }
            for run in fused_runs
        ],
        "fused_kernel_seconds": fused_executor.stats.stage_seconds.get(
            "fused_kernel", 0.0
        ),
        "bit_identical": True,
    }
    fused_rows = [
        {"schedule": "stepwise (steady state)", "seconds": steady["stepwise"]},
        {"schedule": "fused (steady state)", "seconds": steady["fused"]},
        {"schedule": "fused-vs-stepwise speedup", "seconds": fused_vs_stepwise},
    ]
    record_result(
        "exec_plan_fused",
        format_table(
            fused_rows,
            title=(
                f"EXEC_FUSED: §5 fused sub-paths vs step-by-step, "
                f"{sum(r.num_steps for r in fused_runs)} fused GEMMs/subtask "
                "(paper: no per-step main-memory round-trip)"
            ),
            precision=4,
        ),
    )
    # per-backend measured timings → the calibrated cost model's input.
    # The stats of each executor cover its best-timed full run plus the
    # steady-state sweeps above — all cache-warm per-subtask samples of
    # the same workload, plus per-stage wall times.
    point["calibration"] = calibration_payload(
        {
            "serial": executors["cached"].stats,
            "threads": executors["threads"].stats,
            "process-pool": executors["pooled"].stats,
        },
        tree,
        frozenset(sliced),
    )
    model = CalibratedCostModel.from_bench_json(point)
    assert set(model.backends) == {"serial", "threads", "process-pool"}
    for backend in model.backends:
        predicted = model.subtask_seconds(tree, frozenset(sliced), backend=backend)
        assert predicted > 0, backend

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_exec_plan.json").write_text(json.dumps(point, indent=2) + "\n")

    # gate last, *after* the JSON landed: a noise flake then fails with
    # the real message and the measured data intact for the CI guards
    assert fused_vs_stepwise > FUSED_MIN_SPEEDUP, (
        f"fused execution is {fused_vs_stepwise:.3f}x the step-by-step path "
        f"(regression guard requires > {FUSED_MIN_SPEEDUP})"
    )


def test_exec_session_reuse(exec_workload, record_result):
    """Cold vs warm ``run_subtasks`` through a persistent pool session."""
    network, tree, sliced = exec_workload
    serial_value = SlicedExecutor(network, tree, sliced).amplitude()

    # at least two workers so the pool path (not the single-worker serial
    # shortcut) is what cold/warm timing measures, even on a 1-CPU box
    session_workers = max(2, EXEC_WORKERS)
    backend = SharedMemoryProcessPoolBackend(max_workers=session_workers)
    executor = SlicedExecutor(network, tree, sliced, backend=backend)
    with executor.session() as session:
        start = time.perf_counter()
        cold_value = executor.amplitude()
        cold_seconds = time.perf_counter() - start

        warm_seconds = float("inf")
        warm_values = []
        for _ in range(max(EXEC_REPEATS, 2)):
            start = time.perf_counter()
            warm_values.append(executor.amplitude())
            warm_seconds = min(warm_seconds, time.perf_counter() - start)

        # one pool, one publication, across >= 3 runs — and every run
        # bit-identical to the serial backend
        assert session.pool_launches == 1
        assert session.publications == 1
        assert cold_value == serial_value
        assert all(value == serial_value for value in warm_values)
    assert session.closed

    assert warm_seconds < cold_seconds, (
        f"warm run ({warm_seconds:.4f}s) should beat the cold run "
        f"({cold_seconds:.4f}s) that pays pool spawn + segment publication"
    )

    rows = [
        {"run_subtasks": "cold (spawn+publish)", "seconds": cold_seconds},
        {"run_subtasks": "warm (session reuse)", "seconds": warm_seconds},
        {"run_subtasks": "cold/warm ratio", "seconds": cold_seconds / warm_seconds},
    ]
    text = format_table(
        rows,
        title=(
            f"EXEC_SESSION: persistent pool session, {session_workers} workers "
            "(paper: one resident pool serves every sliced batch)"
        ),
        precision=4,
    )
    record_result("exec_plan_session", text)

    results_path = RESULTS_DIR / "BENCH_exec_plan.json"
    point = json.loads(results_path.read_text()) if results_path.exists() else {}
    point["session"] = {
        "workers": session_workers,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_over_warm": cold_seconds / warm_seconds,
        "pool_launches": 1,
        "publications": 1,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(json.dumps(point, indent=2) + "\n")

#: Interleaved best-of-N repeats of the fault-overhead pair.  The pair
#: differs by microseconds per chunk, so the sample count must push
#: best-of noise well under the 2% gate on a ~10 ms workload.
FAULT_REPEATS = int(os.environ.get("REPRO_BENCH_FAULT_REPEATS", "25"))

#: Interleaved best-of-N repeats of the checkpoint-overhead pair.  The
#: checkpointed workload runs ~0.25 s per repeat, so far fewer samples
#: suffice than for the microsecond-scale fault pair.
CHECKPOINT_REPEATS = int(os.environ.get("REPRO_BENCH_CHECKPOINT_REPEATS", "7"))
#: Ledger flush batching for the armed side (and part of its job
#: fingerprint): one durable flush per this many completed slots.
CHECKPOINT_EVERY = int(os.environ.get("REPRO_BENCH_CHECKPOINT_EVERY", "16"))


def test_fault_overhead(exec_workload, record_result):
    """Zero-fault hot-path cost of the resilience layer.

    The same warm-session workload runs with no fault policy (the
    fail-fast hot path) and with an armed retrying policy whose timeout
    is generous enough to never fire; interleaved best-of-N so machine
    drift hits both sides equally.  The resulting overhead ratio lands in
    ``BENCH_exec_plan.json["fault_overhead"]`` and is gated (< 2%) by
    ``benchmarks/check_fault_overhead.py`` in CI.
    """
    from repro.execution import FaultPolicy

    network, tree, sliced = exec_workload
    serial_value = SlicedExecutor(network, tree, sliced).amplitude()

    session_workers = max(2, EXEC_WORKERS)
    backend = SharedMemoryProcessPoolBackend(max_workers=session_workers)
    executor = SlicedExecutor(network, tree, sliced, backend=backend)
    armed = FaultPolicy.retrying(max_retries=2, chunk_timeout_seconds=120.0)

    with executor.session():
        executor.amplitude()  # warm: pool spawned, segments published

        def measure(repeats):
            best = {"baseline": float("inf"), "armed": float("inf")}
            for _ in range(repeats):
                for name, policy in (("baseline", None), ("armed", armed)):
                    backend.fault_policy = policy
                    start = time.perf_counter()
                    value = executor.amplitude()
                    best[name] = min(best[name], time.perf_counter() - start)
                    assert value == serial_value, name
            backend.fault_policy = None
            return best

        best = measure(FAULT_REPEATS)
        if best["armed"] / best["baseline"] - 1.0 > 0.02:
            # one noise spike shouldn't condemn the hot path: re-measure
            # deeper before recording the ratio the CI gate will judge
            best = measure(2 * FAULT_REPEATS)

    overhead = best["armed"] / best["baseline"] - 1.0
    assert executor.stats.retries == 0 and executor.stats.faults == 0

    rows = [
        {"policy": "none (fail-fast hot path)", "seconds": best["baseline"]},
        {"policy": "armed (retrying, generous timeout)", "seconds": best["armed"]},
        {"policy": "overhead fraction", "seconds": overhead},
    ]
    record_result(
        "exec_plan_fault_overhead",
        format_table(
            rows,
            title=(
                f"EXEC_FAULT_OVERHEAD: armed-vs-off resilience layer, "
                f"{session_workers} workers (zero faults injected)"
            ),
            precision=4,
        ),
    )

    results_path = RESULTS_DIR / "BENCH_exec_plan.json"
    point = json.loads(results_path.read_text()) if results_path.exists() else {}
    point["fault_overhead"] = {
        "workers": session_workers,
        "baseline_seconds": best["baseline"],
        "armed_seconds": best["armed"],
        "overhead_fraction": overhead,
        "retries": 0,
        "faults": 0,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(json.dumps(point, indent=2) + "\n")


def test_checkpoint_overhead(record_result):
    """Hot-path cost of arming the durable chunk ledger.

    The same warm-session workload runs with the retrying policy alone
    (unarmed) and with a ``CheckpointStore`` attached through
    ``resume=`` (armed: fingerprint hashing, write-ahead slot records,
    atomic flushes, ledger retirement on completion); interleaved
    best-of-N so machine drift hits both sides equally.  The overhead
    ratio lands in ``BENCH_exec_plan.json["checkpoint_overhead"]`` and
    is gated (< 5%) by ``benchmarks/check_checkpoint_overhead.py`` in
    CI.

    Two deliberate choices keep the ratio meaningful:

    * the workload is the *full-size* grid (not QUICK-scaled) with a
      reduced slice set, so each of the 32 slots carries ~10 ms of real
      contraction work — the regime checkpointing is built for.  On the
      QUICK 4x4 workload a whole subtask is ~0.5 ms and the fixed
      per-run ledger bookkeeping (~1-2 ms) would dwarf the 5% budget
      regardless of implementation quality;
    * the store lives on tmpfs (``/dev/shm``) where available, so the
      gate judges the checkpoint layer's bookkeeping — hashing, CRCs,
      pickling, atomic renames — rather than the device's fsync
      latency, which varies per medium and is amortised operationally
      via ``FaultPolicy.checkpoint_every``.
    """
    from repro.execution import CheckpointStore, FaultPolicy

    circuit = grid_circuit(5, 5, cycles=10, seed=EXEC_SEED)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=1).search(network)
    target = max(tree.max_rank() - 6, 4)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = tuple(ix for ix in slicing.sliced if ix in inner)[:5]

    serial_value = SlicedExecutor(network, tree, sliced).amplitude()

    session_workers = max(2, EXEC_WORKERS)
    backend = SharedMemoryProcessPoolBackend(max_workers=session_workers)
    policy = FaultPolicy.retrying(
        max_retries=2,
        chunk_timeout_seconds=120.0,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    executor = SlicedExecutor(
        network, tree, sliced, backend=backend, fault_policy=policy
    )

    store_root = tempfile.mkdtemp(
        prefix="repro-ckpt-bench-",
        dir="/dev/shm" if os.path.isdir("/dev/shm") else None,
    )
    store = CheckpointStore(store_root)
    try:
        with executor.session():
            executor.amplitude()  # warm: pool spawned, segments published

            def measure(repeats):
                best = {"baseline": float("inf"), "armed": float("inf")}
                for _ in range(repeats):
                    for name, resume in (("baseline", None), ("armed", store)):
                        start = time.perf_counter()
                        value = executor.amplitude(resume=resume)
                        best[name] = min(best[name], time.perf_counter() - start)
                        assert value == serial_value, name
                return best

            best = measure(CHECKPOINT_REPEATS)
            if best["armed"] / best["baseline"] - 1.0 > 0.05:
                # one noise spike shouldn't condemn the ledger: re-measure
                # deeper before recording the ratio the CI gate will judge
                best = measure(2 * CHECKPOINT_REPEATS)

        overhead = best["armed"] / best["baseline"] - 1.0
        assert executor.stats.retries == 0 and executor.stats.faults == 0
        # every armed run wrote the full slot set, never resumed one, and
        # retired its ledger on completion
        assert executor.stats.checkpointed_slots > 0
        assert executor.stats.checkpointed_slots % executor.num_subtasks == 0
        assert executor.stats.resumed_slots == 0
        assert store.jobs() == []
    finally:
        shutil.rmtree(store_root, ignore_errors=True)

    rows = [
        {"run": "unarmed (retrying policy, no store)", "seconds": best["baseline"]},
        {"run": "armed (write-ahead chunk ledger)", "seconds": best["armed"]},
        {"run": "overhead fraction", "seconds": overhead},
    ]
    record_result(
        "exec_plan_checkpoint_overhead",
        format_table(
            rows,
            title=(
                f"EXEC_CHECKPOINT_OVERHEAD: ledger-armed vs unarmed, "
                f"{session_workers} workers, {executor.num_subtasks} slots, "
                f"flush every {CHECKPOINT_EVERY}"
            ),
            precision=4,
        ),
    )

    results_path = RESULTS_DIR / "BENCH_exec_plan.json"
    point = json.loads(results_path.read_text()) if results_path.exists() else {}
    point["checkpoint_overhead"] = {
        "workers": session_workers,
        "num_slots": executor.num_subtasks,
        "checkpoint_every": CHECKPOINT_EVERY,
        "baseline_seconds": best["baseline"],
        "armed_seconds": best["armed"],
        "overhead_fraction": overhead,
        "retries": 0,
        "faults": 0,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(json.dumps(point, indent=2) + "\n")


#: Multi-workload calibration sweep sizes: (rows, cols, cycles, rank drop).
#: Distinct sizes give distinct (flops, steps) regressor rows, which is
#: what makes the two-term fit's per-step overhead coefficient
#: identifiable (a single workload degenerates to a pure throughput fit).
SWEEP_WORKLOADS = (
    [(3, 3, 6, 4), (3, 4, 6, 4), (4, 4, 8, 5)]
    if QUICK
    else [(3, 4, 8, 4), (4, 4, 10, 5), (4, 5, 10, 5)]
)


def test_calibration_sweep(record_result):
    """Fit the calibrated model across several workload sizes.

    One workload makes the ``seconds ≈ a·flops + b·steps`` regressors
    collinear, so the per-step overhead term degenerates; this sweep
    times every size in ``SWEEP_WORKLOADS`` on the serial backend, checks
    the fit sees distinct regressor rows, and lands the fitted
    coefficients in ``BENCH_exec_plan.json["calibration_sweep"]``.
    """
    from repro.costs import CalibratedCostModel

    records = []
    workload_rows = []
    for rows, cols, cycles, rank_drop in SWEEP_WORKLOADS:
        circuit = grid_circuit(rows, cols, cycles=cycles, seed=EXEC_SEED)
        network = amplitude_network(
            circuit, [0] * circuit.num_qubits, concrete=True
        )
        simplify_network(network)
        tree = HyperOptimizer(max_trials=4, seed=1).search(network)
        target = max(tree.max_rank() - rank_drop, 4)
        slicing = LifetimeSliceFinder(target).find(tree)
        inner = network.inner_indices()
        sliced = tuple(ix for ix in slicing.sliced if ix in inner)
        executor = SlicedExecutor(network, tree, sliced)
        start = time.perf_counter()
        executor.run()
        elapsed = time.perf_counter() - start
        record = executor.calibration_record()
        records.append(record)
        workload_rows.append(
            {
                "workload": f"{rows}x{cols} m={cycles}",
                "subtasks": executor.num_subtasks,
                "log2_flops": float(np.log2(record.subtask_flops)),
                "steps": record.num_steps,
                "seconds": elapsed,
            }
        )

    # distinct regressor rows -> the least-squares branch (not the
    # degenerate through-origin throughput fallback) fits the sweep
    regressors = {(record.subtask_flops, record.num_steps) for record in records}
    assert len(regressors) >= 2, "sweep workloads must differ in flops/steps"

    model = CalibratedCostModel.fit(records)
    fitted = model.coefficients["serial"]
    assert fitted.seconds_per_flop >= 0
    assert fitted.seconds_per_step >= 0
    assert fitted.seconds_per_flop > 0 or fitted.seconds_per_step > 0
    for record in records:
        predicted = fitted.predict(record.subtask_flops, record.num_steps)
        assert predicted > 0

    record_result(
        "exec_plan_calibration_sweep",
        format_table(
            workload_rows,
            title=(
                "EXEC_CALIBRATION_SWEEP: serial backend across "
                f"{len(SWEEP_WORKLOADS)} workload sizes "
                "(two-term fit: both coefficients identifiable)"
            ),
            precision=4,
        ),
    )

    results_path = RESULTS_DIR / "BENCH_exec_plan.json"
    point = json.loads(results_path.read_text()) if results_path.exists() else {}
    point["calibration_sweep"] = {
        "workloads": workload_rows,
        "distinct_regressors": len(regressors),
        "serial": {
            "seconds_per_flop": fitted.seconds_per_flop,
            "seconds_per_step": fitted.seconds_per_step,
            "samples": fitted.samples,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(json.dumps(point, indent=2) + "\n")


@pytest.fixture(scope="module")
def tape_workload(exec_workload):
    """Workload for the tape-engine matrix: gated size or the quick one."""
    if not GATED:
        return exec_workload
    circuit = grid_circuit(TAPE_ROWS, TAPE_COLS, cycles=TAPE_CYCLES, seed=EXEC_SEED)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=1).search(network)
    target = max(tree.max_rank() - TAPE_RANK_DROP, 4)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = tuple(ix for ix in slicing.sliced if ix in inner)
    return network, tree, sliced


def test_tape_engine_matrix(tape_workload, record_result):
    """Stepwise vs fused-python vs fused-native on the same sliced workload.

    The three engines must be bit-identical; where numba is installed the
    native tape kernel must additionally clear the speed gates
    (``NATIVE_MIN_VS_PYTHON`` over the fused Python walker,
    ``NATIVE_MIN_VS_STEPWISE`` over the step-by-step path) — enforced
    both here and by ``benchmarks/check_fused_regression.py`` in CI.
    Without numba the native row silently resolves to the Python walker
    and only the structural gates apply.  A batched fused plan is
    additionally audited structurally: at least
    ``BATCHED_FUSED_MIN_FRACTION`` of its slot-carrying GEMM steps must
    sit inside fused runs, with at least one batched-GEMM (``bmm``) op
    among them.  Results land in
    ``BENCH_exec_plan.json["fused_engines"]`` plus a trajectory point in
    ``BENCH_fused_tape.json``.
    """
    from repro.execution import native_available

    network, tree, sliced = tape_workload
    native = native_available()

    engines = {
        "stepwise": SlicedExecutor(network, tree, sliced),
        "fused-python": SlicedExecutor(
            network, tree, sliced, fused=True, tape_engine="python"
        ),
        "fused-native": SlicedExecutor(
            network, tree, sliced, fused=True, tape_engine="auto"
        ),
    }
    # warm every engine (plan compile + JIT where applicable) and pin the
    # bit-identity contract before any timing
    values = {name: executor.amplitude() for name, executor in engines.items()}
    assert values["fused-python"] == values["stepwise"]
    assert values["fused-native"] == values["stepwise"]
    resolved = engines["fused-native"].tape_engine
    assert resolved == ("native" if native else "python")
    assert engines["fused-python"].tape_engine == "python"
    if native:
        assert engines["fused-native"].stats.tape_engine == "native"

    def measure_steady(repeats):
        best = {name: float("inf") for name in engines}
        for _ in range(repeats):
            for name, executor in engines.items():
                start = time.perf_counter()
                executor.run()
                best[name] = min(best[name], time.perf_counter() - start)
        return best

    steady = measure_steady(TAPE_REPEATS)
    if native and (
        steady["fused-python"] / steady["fused-native"] <= NATIVE_MIN_VS_PYTHON
        or steady["stepwise"] / steady["fused-native"] <= NATIVE_MIN_VS_STEPWISE
    ):
        # one deeper pass before the gates judge a possible noise spike
        steady = measure_steady(2 * TAPE_REPEATS)
    native_vs_python = steady["fused-python"] / steady["fused-native"]
    native_vs_stepwise = steady["stepwise"] / steady["fused-native"]

    # the batched plan, audited structurally (no numba needed): every
    # slot-carrying step with a GEMM layout is a fusion candidate; the
    # bmm extension is what lets the batch sweep's steps join the runs
    batched = SlicedExecutor(
        network, tree, sliced, fused=True, batch_indices="auto", tape_engine="python"
    )
    batched_value = batched.amplitude()
    # batched sweeps accumulate in a different order: approx, not bitwise
    assert batched_value == pytest.approx(values["stepwise"], abs=1e-8)
    bplan = batched.batched_plan
    candidates = [
        step
        for step in bplan.contract_steps
        if step.slot is not None
        and (step.td_mkn is not None or step.bmm_lhs_shape is not None)
    ]
    fused_steps = sum(run.num_steps for run in bplan.fused_runs)
    fused_fraction = fused_steps / max(len(candidates), 1)
    bmm_fused_ops = sum(
        1 for run in bplan.fused_runs for entry in run.tape if entry[9]
    )

    rows = [
        {"engine": name, "seconds": steady[name]} for name in engines
    ] + [
        {"engine": "native-vs-python speedup", "seconds": native_vs_python},
        {"engine": "native-vs-stepwise speedup", "seconds": native_vs_stepwise},
    ]
    record_result(
        "exec_plan_tape_engines",
        format_table(
            rows,
            title=(
                f"EXEC_TAPE: {TAPE_ROWS}x{TAPE_COLS} m={TAPE_CYCLES} grid RQC, "
                f"tape_engine={resolved} (numba "
                f"{'present' if native else 'absent: native row = python walker'}), "
                f"batched fused coverage {fused_fraction:.0%}"
            ),
            precision=4,
        ),
    )

    section = {
        "gated": GATED,
        "native_available": native,
        "tape_engine": resolved,
        "steady_state_seconds": dict(steady),
        "native_vs_python": native_vs_python,
        "native_vs_stepwise": native_vs_stepwise,
        "min_native_vs_python": NATIVE_MIN_VS_PYTHON,
        "min_native_vs_stepwise": NATIVE_MIN_VS_STEPWISE,
        "bit_identical": True,
        "batched": {
            "batch_indices": list(batched.batch_indices),
            "slot_gemm_steps": len(candidates),
            "fused_steps": fused_steps,
            "fused_fraction": fused_fraction,
            "bmm_fused_ops": bmm_fused_ops,
            "min_fraction": BATCHED_FUSED_MIN_FRACTION,
        },
    }

    results_path = RESULTS_DIR / "BENCH_exec_plan.json"
    point = json.loads(results_path.read_text()) if results_path.exists() else {}
    point["fused_engines"] = section
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(json.dumps(point, indent=2) + "\n")

    # perf trajectory: one appended point per run, so the native kernel's
    # speedups are comparable across commits
    trajectory_path = RESULTS_DIR / "BENCH_fused_tape.json"
    history = (
        json.loads(trajectory_path.read_text()) if trajectory_path.exists() else []
    )
    history.append(
        {
            "timestamp": time.time(),
            "workload": {
                "rows": TAPE_ROWS,
                "cols": TAPE_COLS,
                "cycles": TAPE_CYCLES,
                "rank_drop": TAPE_RANK_DROP,
                "seed": EXEC_SEED,
            },
            **section,
        }
    )
    trajectory_path.write_text(json.dumps(history, indent=2) + "\n")

    # gate last, after both JSON files landed (same policy as the fused
    # guard above): a flake fails with the data intact for CI triage
    assert fused_fraction >= BATCHED_FUSED_MIN_FRACTION, (
        f"fusion covers only {fused_fraction:.0%} of the batched plan's "
        f"slot GEMM steps (need >= {BATCHED_FUSED_MIN_FRACTION:.0%})"
    )
    assert bmm_fused_ops > 0, "no batched-GEMM step landed inside a fused run"
    if native:
        assert native_vs_python > NATIVE_MIN_VS_PYTHON, (
            f"native tape kernel is {native_vs_python:.3f}x the fused Python "
            f"walker (gate: > {NATIVE_MIN_VS_PYTHON})"
        )
        assert native_vs_stepwise > NATIVE_MIN_VS_STEPWISE, (
            f"native tape kernel is {native_vs_stepwise:.3f}x the step-by-step "
            f"path (gate: > {NATIVE_MIN_VS_STEPWISE})"
        )


#: Interleaved best-of-N repeats of the per-module steady-state sweep.
MODULE_REPEATS = int(os.environ.get("REPRO_BENCH_MODULE_REPEATS", "5"))


def test_module_matrix(exec_workload, record_result):
    """The same sliced workload through every importable array module.

    The numpy row is the seam's bit-identity anchor (its value must equal
    the plain default executor exactly); torch/cupy rows run where the
    module imports (the CI ``tests-torch`` leg installs CPU torch) and
    are allclose-gated.  Steady-state per-module seconds, values and
    per-module calibration samples land in
    ``BENCH_exec_plan.json["modules"]`` so the calibrated cost model can
    fit ``"<backend>+<engine>+<module>"`` coefficients from a CI run.
    """
    from repro.execution import resolve_array_module

    network, tree, sliced = exec_workload
    baseline = SlicedExecutor(network, tree, sliced, fused=True)
    baseline_value = baseline.amplitude()

    executors = {}
    skipped = []
    for name in ("numpy", "torch", "cupy"):
        try:
            module = resolve_array_module(name)
        except ImportError:
            skipped.append(name)
            continue
        executors[name] = SlicedExecutor(
            network, tree, sliced, fused=True, array_module=module
        )

    values = {name: executor.amplitude() for name, executor in executors.items()}
    # the numpy module IS the default path — bitwise, not approx
    assert values["numpy"] == baseline_value
    for name, value in values.items():
        assert value == pytest.approx(baseline_value, abs=1e-8), name

    def measure_steady(repeats):
        best = {name: float("inf") for name in executors}
        for _ in range(repeats):
            for name, executor in executors.items():
                start = time.perf_counter()
                executor.run()
                best[name] = min(best[name], time.perf_counter() - start)
        return best

    steady = measure_steady(MODULE_REPEATS)

    rows = [{"module": name, "seconds": steady[name]} for name in executors]
    record_result(
        "exec_plan_modules",
        format_table(
            rows,
            title=(
                f"EXEC_MODULES: array-module seam, fused plan, serial backend "
                f"(available: {', '.join(executors)}"
                + (f"; absent: {', '.join(skipped)}" if skipped else "")
                + ")"
            ),
            precision=4,
        ),
    )

    section = {
        "available": sorted(executors),
        "skipped": sorted(skipped),
        "steady_state_seconds": dict(steady),
        "numpy_bit_identical": True,
        "calibration": calibration_payload(
            {
                f"serial+{executor.tape_engine}+{name}": executor.stats
                for name, executor in executors.items()
            },
            tree,
            frozenset(sliced),
        ),
    }
    # the per-module samples must round-trip through the fit: non-numpy
    # rows land module-qualified keys, the numpy row keeps the plain one
    model = CalibratedCostModel.from_bench_json(
        {"calibration": section["calibration"]}
    )
    for name in executors:
        expected = (
            "serial"
            if name == "numpy" and executors[name].tape_engine == "python"
            else (
                f"serial+{executors[name].tape_engine}"
                if name == "numpy"
                else f"serial+{executors[name].tape_engine}+{name}"
            )
        )
        assert expected in model.backends, (expected, model.backends)

    results_path = RESULTS_DIR / "BENCH_exec_plan.json"
    point = json.loads(results_path.read_text()) if results_path.exists() else {}
    point["modules"] = section
    RESULTS_DIR.mkdir(exist_ok=True)
    results_path.write_text(json.dumps(point, indent=2) + "\n")
