"""EXEC_PLAN — compiled contraction plans vs the reference einsum walker.

Measures the wall-clock effect of the plan compiler on a numerically
contractable Sycamore-style grid RQC (the 53-qubit benchmark workload of
``conftest.py`` is planning-only; this one is sized so every variant runs
in seconds).  Four executors contract the *same* sliced workload:

* ``reference`` — the seed path: einsum walker, re-planned per subtask;
* ``compiled``  — compiled tensordot plan, no intermediate reuse;
* ``cached``    — compiled plan + slice-invariant intermediate caching;
* ``batched``   — cached plan sweeping one sliced index as a batch axis.

Asserts the acceptance criteria of the plan-compiler PR: the cached
compiled executor is at least 5x faster than the reference path on a
workload with >= 16 subtasks, and every slice-invariant contraction runs
exactly once (checked through the instrumented step counters).  Emits a
``BENCH_exec_plan.json`` trajectory point next to the text table in
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis import format_table
from repro.circuits import grid_circuit
from repro.core import LifetimeSliceFinder
from repro.execution import SlicedExecutor
from repro.paths import HyperOptimizer
from repro.tensornet import amplitude_network, simplify_network

RESULTS_DIR = Path(__file__).parent / "results"

EXEC_ROWS = int(os.environ.get("REPRO_BENCH_EXEC_ROWS", "5"))
EXEC_COLS = int(os.environ.get("REPRO_BENCH_EXEC_COLS", "5"))
EXEC_CYCLES = int(os.environ.get("REPRO_BENCH_EXEC_CYCLES", "10"))
EXEC_SEED = int(os.environ.get("REPRO_BENCH_EXEC_SEED", "3"))
#: How many ranks below the tree's peak the slicing target sits.
EXEC_RANK_DROP = int(os.environ.get("REPRO_BENCH_EXEC_RANK_DROP", "6"))
EXEC_REPEATS = int(os.environ.get("REPRO_BENCH_EXEC_REPEATS", "3"))


@pytest.fixture(scope="module")
def exec_workload():
    """Concrete network + tree + slicing set for the executor comparison."""
    circuit = grid_circuit(EXEC_ROWS, EXEC_COLS, cycles=EXEC_CYCLES, seed=EXEC_SEED)
    network = amplitude_network(circuit, [0] * circuit.num_qubits, concrete=True)
    simplify_network(network)
    tree = HyperOptimizer(max_trials=8, seed=1).search(network)
    target = max(tree.max_rank() - EXEC_RANK_DROP, 4)
    slicing = LifetimeSliceFinder(target).find(tree)
    inner = network.inner_indices()
    sliced = tuple(ix for ix in slicing.sliced if ix in inner)
    return network, tree, sliced


def _time_run(make_executor, repeats):
    """Best-of-N wall time of a full sliced run, executor build included.

    Building the executor inside the timed region charges the compiled
    variants for plan compilation — the amortization across subtasks is
    exactly the effect under test.
    """
    best_seconds = float("inf")
    executor = None
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        executor = make_executor()
        value = executor.amplitude()
        best_seconds = min(best_seconds, time.perf_counter() - start)
    return best_seconds, value, executor


def test_exec_plan_speedup(exec_workload, record_result):
    network, tree, sliced = exec_workload

    variants = {
        "reference": lambda: SlicedExecutor(network, tree, sliced, mode="reference"),
        "compiled": lambda: SlicedExecutor(network, tree, sliced, cache_invariant=False),
        "cached": lambda: SlicedExecutor(network, tree, sliced),
        "batched": lambda: SlicedExecutor(network, tree, sliced, batch_index="auto"),
    }

    seconds = {}
    values = {}
    executors = {}
    for name, make in variants.items():
        repeats = 1 if name == "reference" else EXEC_REPEATS
        seconds[name], values[name], executors[name] = _time_run(make, repeats)

    reference_value = values["reference"]
    for name, value in values.items():
        assert value == pytest.approx(reference_value, abs=1e-8), name

    num_subtasks = executors["reference"].num_subtasks
    assert num_subtasks >= 16, "workload must have at least 16 subtasks"

    # the cached path must contract each slice-invariant intermediate once
    cached = executors["cached"]
    counts = cached.stats.node_counts
    invariant = cached.plan.invariant_nodes
    for node in invariant:
        assert counts.get(node, 0) == 1, (
            f"invariant node {node} contracted {counts.get(node, 0)} times"
        )
    dependent_steps = sum(
        1 for node in cached.plan.dependent_nodes if node >= tree.num_leaves
    )

    speedups = {name: seconds["reference"] / seconds[name] for name in variants}
    assert speedups["cached"] >= 5.0, (
        f"compiled+cached executor is only {speedups['cached']:.1f}x faster "
        "than the reference path (need >= 5x)"
    )

    rows = [
        {
            "executor": name,
            "seconds": seconds[name],
            "speedup": speedups[name],
            "subtasks": num_subtasks,
        }
        for name in variants
    ]
    text = format_table(
        rows,
        title=(
            f"EXEC_PLAN: {EXEC_ROWS}x{EXEC_COLS} m={EXEC_CYCLES} grid RQC, "
            f"{len(sliced)} sliced indices, {num_subtasks} subtasks "
            "(paper: plan once, amortize across all slices)"
        ),
        precision=4,
    )
    record_result("exec_plan", text)

    point = {
        "bench": "exec_plan",
        "timestamp": time.time(),
        "workload": {
            "rows": EXEC_ROWS,
            "cols": EXEC_COLS,
            "cycles": EXEC_CYCLES,
            "seed": EXEC_SEED,
            "num_leaves": tree.num_leaves,
            "max_rank": tree.max_rank(),
            "num_sliced": len(sliced),
            "num_subtasks": num_subtasks,
        },
        "seconds": seconds,
        "speedups": speedups,
        "invariant_steps": len(invariant),
        "dependent_steps": dependent_steps,
        "invariant_contracted_exactly_once": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_exec_plan.json").write_text(json.dumps(point, indent=2) + "\n")
