"""CI gate: fused execution must not lose to the step-by-step path.

Run after the quick exec-plan bench::

    PYTHONPATH=src python benchmarks/check_fused_regression.py \
        benchmarks/results/BENCH_exec_plan.json

Validates the ``fused`` section the bench emitted: the steady-state
fused-vs-stepwise speedup (interleaved best-of-N on the branch-heavy
quick workload) must exceed the guard threshold, the run must have been
bit-identical to the step-by-step path, and fusion must actually have
engaged (at least one multi-step fused run).  Exits non-zero on any
violation, so a regression that makes the fused executor slower — or
silently disables it — fails the CI job instead of shipping.  Checks
raise explicitly (no ``assert``), so the gate also holds under
``python -O``.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

class RegressionError(RuntimeError):
    """A fused-execution regression (or a silently disabled fused path)."""


def _threshold(fused: dict) -> float:
    """The guard threshold: the one the bench recorded, env-overridable.

    The bench stamps its ``REPRO_BENCH_FUSED_MIN_SPEEDUP`` into
    ``fused["min_speedup"]``, so a standalone checker run enforces the
    same contract the bench measured against; setting the env var here
    explicitly overrides it.
    """
    override = os.environ.get("REPRO_BENCH_FUSED_MIN_SPEEDUP")
    if override is not None:
        return float(override)
    return float(fused.get("min_speedup", 1.0))


def main(path: str) -> int:
    point = json.loads(Path(path).read_text())
    fused = point.get("fused")
    if not fused:
        raise RegressionError(
            "bench JSON has no 'fused' section; the fused row did not run"
        )
    min_speedup = _threshold(fused)
    speedup = float(fused["fused_vs_stepwise"])
    stepwise = float(fused["steady_state_stepwise_seconds"])
    fused_seconds = float(fused["steady_state_fused_seconds"])
    print(
        f"steady state: stepwise {stepwise * 1000:.2f} ms, "
        f"fused {fused_seconds * 1000:.2f} ms -> {speedup:.3f}x "
        f"(guard: > {min_speedup})"
    )

    if fused.get("bit_identical") is not True:
        raise RegressionError("fused run was not bit-identical")
    runs = fused.get("runs", [])
    if not runs:
        raise RegressionError("fusion pass produced no runs on the quick workload")
    if any(run["steps"] < 2 for run in runs):
        raise RegressionError("a fused run shorter than 2 steps was emitted")
    if speedup <= min_speedup:
        raise RegressionError(
            f"fused execution regressed: {speedup:.3f}x <= {min_speedup} "
            "vs the step-by-step path on the branch-heavy quick workload"
        )
    print("fused regression guard OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "benchmarks/results/BENCH_exec_plan.json"))
